// Golden fixture: unbounded-decode-allocation.
//
// In the untrusted-input surfaces (the codec crate and the live frame
// paths), a length decoded off the wire must be clamped — against the
// remaining input or a protocol MAX — before it sizes an allocation or
// drives a slice. A `len()` comparison that merely waits for more bytes
// is NOT a guard: that is exactly the hostile-header bug where a 4-byte
// claim commits the receiver to buffering gigabytes.

//@file: crates/codec/src/decode_fixture.rs
pub fn bad_capacity(input: &[u8]) -> Vec<u8> {
    let n = u32::from_be_bytes([input[0], input[1], input[2], input[3]]) as usize;
    let v = Vec::with_capacity(n);
    v
}

pub fn bad_vec_and_slice(input: &[u8]) {
    let len = u16::from_le_bytes([input[0], input[1]]) as usize;
    let _z = vec![0u8; len];
    let _s = &input[..len];
}

pub fn bad_inline_decode(input: &mut &[u8]) {
    let _v: Vec<u8> = Vec::with_capacity(u32::decode(input).unwrap() as usize);
}

pub fn bad_wait_for_more(buf: &[u8]) -> Option<Vec<u8>> {
    let claim = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if buf.len() < 4 + claim {
        return None;
    }
    Some(buf[4..4 + claim].to_vec())
}

pub fn good_min_clamp(input: &[u8]) -> Vec<u8> {
    let n = u32::from_be_bytes([input[0], input[1], input[2], input[3]]) as usize;
    let m = n.min(input.len());
    Vec::with_capacity(m)
}

pub fn good_max_reject(input: &[u8]) -> Result<Vec<u8>, ()> {
    let n = u32::from_be_bytes([input[0], input[1], input[2], input[3]]) as usize;
    if n > MAX_ITEMS {
        return Err(());
    }
    Ok(Vec::with_capacity(n))
}

pub fn good_len_reject(input: &[u8]) -> Result<Vec<u8>, ()> {
    let n = u32::from_be_bytes([input[0], input[1], input[2], input[3]]) as usize;
    if n > input.len() {
        return Err(());
    }
    Ok(Vec::with_capacity(n))
}

//@file: crates/harness/src/load_fixture.rs
pub fn outside_the_untrusted_surface(input: &[u8]) {
    // NOT flagged: the harness feeds itself, not wire bytes; the rule is
    // scoped to the codec crate and the live frame paths.
    let n = u32::from_be_bytes([input[0], input[1], input[2], input[3]]) as usize;
    let _v = Vec::with_capacity(n);
}
