// Golden fixture: the five original rule families.
//
// nondeterministic-iteration, panic-in-dispatch, raw-thread-spawn,
// relaxed-ordering, and wire-exhaustiveness predate the syntax-aware
// analyzer; this corpus pins their behavior (and their scoping
// exemptions) under the new pipeline.

//@file: crates/core/src/protocol.rs
pub enum Request {
    GetProfile,
    Shout,
}

pub enum Response {
    Ok,
}

pub fn codec_arms() {
    // Two non-test refs stand in for the encode + decode arms.
    let _a = Request::GetProfile;
    let _b = Request::GetProfile;
    // `Shout` has only one: missing a codec arm, a dispatch arm, and a
    // round-trip fixture.
    let _c = Request::Shout;
    let _d = Response::Ok;
    let _e = Response::Ok;
}

#[cfg(test)]
mod tests {
    pub fn round_trip() {
        let _a = Request::GetProfile;
        let _b = Response::Ok;
    }
}

//@file: crates/core/src/server.rs
pub fn dispatch(req: u32, table: &HashMap<u32, u32>) -> u32 {
    let _get = Request::GetProfile;
    let _ok = Response::Ok;
    let v = table.get(&req).unwrap();
    if *v == 0 {
        panic!("boom");
    }
    table[&req]
}

//@file: crates/netsim/src/world_fixture.rs
pub struct World {
    buckets: HashMap<u32, u32>,
}

impl World {
    fn bad_iteration(&mut self) {
        for b in &self.buckets {
            let _ = b;
        }
        self.buckets.retain(|_, v| *v > 0);
    }

    fn good_keyed_access(&self) {
        // NOT flagged: keyed lookups and size probes don't observe
        // iteration order.
        let _v = self.buckets.get(&1);
        let _n = self.buckets.len();
    }
}

//@file: crates/harness/src/report_fixture.rs
pub fn tally(m: &HashMap<u32, u32>) {
    // NOT flagged: the harness is not a digest-affecting crate.
    for v in m.values() {
        let _ = v;
    }
}

//@file: crates/netsim/src/helpers_fixture.rs
pub fn bad_spawn() {
    std::thread::spawn(|| {});
}

//@file: crates/netsim/src/par.rs
pub fn allowed_here() {
    // NOT flagged: netsim::par owns the deterministic fork/join helpers.
    std::thread::spawn(|| {});
}

//@file: crates/netsim/src/counter_fixture.rs
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::SeqCst);
}
