// Golden fixture: digest-taint.
//
// Each `//@file:` marker opens a virtual source file at the given
// workspace-relative path; the golden runner preserves *this* file's line
// numbers, so the `.expected` lines point straight back here.
//
// The rule walks the call graph from the declared digest roots
// (`Cluster::run_until` / `run_until_condition` in peerhood::sim) and
// flags wall-clock, core-count, thread-id, and pointer-to-int reads in
// reachable fns of the digest crates. Mere *presence* of a forbidden
// call is not enough — it must be reachable — and the harness, the live
// serving path, and bench code are out of scope even when reachable
// (name-based call resolution over-approximates; all three `clock`
// modules below resolve from `step_epoch`).

//@file: crates/peerhood/src/sim.rs
pub struct Cluster;

impl Cluster {
    pub fn run_until(&mut self) {
        self.step_epoch();
    }

    pub fn run_until_condition(&mut self) {
        self.step_epoch();
    }

    fn step_epoch(&mut self) {
        clock::advance_clock();
    }

    fn unreached_profiler(&self) {
        // NOT flagged: nothing on the path from the digest roots calls
        // this, so its wall-clock read cannot taint the digest.
        let _t = std::time::Instant::now();
    }
}

//@file: crates/netsim/src/clock.rs
pub fn advance_clock() {
    let _t0 = Instant::now();
    let _cores = available_parallelism();
    let _who = thread::current();
    let block = [0u8; 4];
    let _addr = block.as_ptr() as usize;
}

//@file: crates/harness/src/clock.rs
pub fn advance_clock() {
    // NOT flagged: the harness cannot feed the trace digest, and the
    // name-based call resolution must not leak across that boundary.
    let _t0 = Instant::now();
}

//@file: crates/peerhood/src/live/clock.rs
pub fn advance_clock() {
    // NOT flagged: the live serving path is wall-clock by nature.
    let _t0 = Instant::now();
}
