// Golden fixture: outbox-commutativity.
//
// Lane workers accumulate per-epoch stat deltas into an `EpochOutbox`;
// the commit loop folds those deltas together. Serial runs fold into ONE
// outbox while parallel runs fold one per lane, so the fold must be
// add-only: plain assignment, shrink operators, and `.max(…)`-style
// combining all make the serial and parallel totals diverge.

//@file: crates/peerhood/src/outbox_fixture.rs
pub struct TraceStats {
    pub delivered: u64,
    pub peak_queue: u64,
}

impl TraceStats {
    pub fn add(&mut self, o: &TraceStats) {
        self.delivered += o.delivered;
        self.peak_queue = self.peak_queue.max(o.peak_queue);
    }

    pub fn reset(&mut self) {
        // NOT flagged: `reset` is not a merge fn; zeroing between
        // epochs is the commit loop's business.
        self.delivered = 0;
    }
}

pub struct EpochOutbox {
    pub stats: TraceStats,
}

impl EpochOutbox {
    pub fn commit(&mut self, agg: &mut TraceStats) {
        agg.add(&self.stats);
        self.stats.delivered += 1;
        self.stats.peak_queue = 9;
        self.stats.delivered -= 1;
        self.stats = TraceStats {
            delivered: 0,
            peak_queue: 0,
        };
    }
}

fn local_stats_are_not_the_outbox() {
    // NOT flagged: fresh local bindings named `stats` are not writes
    // into the outbox.
    let stats = 5;
    let mut stats = stats + 1;
    stats += 1;
    let _ = stats;
}
