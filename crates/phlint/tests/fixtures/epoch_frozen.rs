// Golden fixture: epoch-frozen-mutation.
//
// A struct holding an `EpochView` field is an epoch worker; the view and
// every shared-reference field are frozen for the whole epoch. Worker
// methods may read them freely, but every write must go through the
// worker's own outbox — mutable borrows, mutator-method calls, and
// assignments against frozen fields are all flagged.

//@file: crates/peerhood/src/epoch_fixture.rs
pub struct EpochView;

pub struct Outbox {
    pub queued: Vec<u32>,
}

pub struct Worker {
    view: EpochView,
    infos: &'static [u32],
    nodes: &'static mut [u32; 8],
    out: Outbox,
}

impl Worker {
    fn bad_borrow(&mut self) {
        let _v = &mut self.view;
    }

    fn bad_mutator_call(&mut self) {
        self.view.insert(1);
    }

    fn bad_assign_to_shared_ref(&mut self) {
        self.infos = &[];
    }

    fn good_reads_and_outbox_writes(&mut self) {
        // Reads of frozen state are fine; `len` is not a mutator.
        let _n = self.view.len();
        let _first = self.infos.first();
        // `nodes` is `&mut` — explicitly writable, not frozen.
        self.nodes[0] = 1;
        // The outbox is exactly where buffered effects belong.
        self.out.queued.push(2);
    }
}

//@file: crates/peerhood/src/not_a_worker.rs
pub struct Courier {
    seen: &'static [u32],
}

impl Courier {
    fn rebind(&mut self) {
        // NOT flagged: no `EpochView` field, so `Courier` is not an
        // epoch worker and its shared refs are not epoch-frozen.
        self.seen = &[];
    }
}
