//! Call-graph integration tests: reachability over the golden fixture
//! corpus must match hand-computed sets, and the resolution forms the
//! graph promises (use-alias, method, UFCS, module-qualified free fns)
//! must hold over multi-file inputs. Complements the unit tests inside
//! `src/graph.rs`, which work on single constructs.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use phlint::graph::CallGraph;
use phlint::rules::SourceFile;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Same `//@file:` splitter as the golden runner (line padding included,
/// though only paths matter here).
fn load_virtual(path: &Path) -> Vec<SourceFile> {
    let text = fs::read_to_string(path).expect("read fixture");
    let mut out: Vec<(String, String)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if let Some(p) = line.trim().strip_prefix("//@file:") {
            out.push((p.trim().to_owned(), "\n".repeat(idx + 1)));
        } else if let Some((_, content)) = out.last_mut() {
            content.push_str(line);
            content.push('\n');
        }
    }
    out.into_iter()
        .map(|(p, src)| SourceFile::parse(p, &src).expect("fixture lexes"))
        .collect()
}

fn reached_qnames(g: &CallGraph, roots: &[usize]) -> BTreeSet<String> {
    g.reachable_from(roots)
        .iter()
        .enumerate()
        .filter(|(_, via)| via.is_some())
        .map(|(id, _)| format!("{}::{}", g.fns[id].path, g.fns[id].qname))
        .collect()
}

#[test]
fn digest_fixture_reachability_matches_hand_computed_set() {
    let files = load_virtual(&fixture("digest_taint.rs"));
    let g = CallGraph::build(&files);

    let mut roots = g.find("crates/peerhood/src/sim.rs", "Cluster::run_until");
    roots.extend(g.find("crates/peerhood/src/sim.rs", "Cluster::run_until_condition"));
    assert_eq!(roots.len(), 2, "both digest roots must be found");

    // Hand-computed: the two roots, the shared `step_epoch` step, and the
    // three name-resolved `clock::advance_clock` twins. `unreached_profiler`
    // must stay out — that is the precision the digest-taint rule buys.
    let expected: BTreeSet<String> = [
        "crates/peerhood/src/sim.rs::Cluster::run_until",
        "crates/peerhood/src/sim.rs::Cluster::run_until_condition",
        "crates/peerhood/src/sim.rs::Cluster::step_epoch",
        "crates/netsim/src/clock.rs::advance_clock",
        "crates/harness/src/clock.rs::advance_clock",
        "crates/peerhood/src/live/clock.rs::advance_clock",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect();
    assert_eq!(reached_qnames(&g, &roots), expected);

    // Every reached fn reports which root claimed it first.
    let reach = g.reachable_from(&roots);
    for via in reach.iter().flatten() {
        assert!(roots.contains(via), "via must be one of the roots");
    }
}

#[test]
fn epoch_fixture_impl_methods_are_collected_per_type() {
    let files = load_virtual(&fixture("epoch_frozen.rs"));
    let g = CallGraph::build(&files);
    let path = "crates/peerhood/src/epoch_fixture.rs";
    for m in [
        "Worker::bad_borrow",
        "Worker::bad_mutator_call",
        "Worker::bad_assign_to_shared_ref",
        "Worker::good_reads_and_outbox_writes",
    ] {
        assert_eq!(g.find(path, m).len(), 1, "{m} collected exactly once");
    }
    assert_eq!(
        g.find("crates/peerhood/src/not_a_worker.rs", "Courier::rebind")
            .len(),
        1
    );
}

#[test]
fn alias_method_and_ufcs_calls_resolve_across_files() {
    let hub = SourceFile::parse(
        "crates/x/src/hub.rs",
        "use crate::real::Engine as Motor;\n\
         pub struct Hub { e: u32 }\n\
         impl Hub {\n\
             pub fn drive(&self) {\n\
                 Motor::start();\n\
                 self.relay();\n\
                 Engine::stop();\n\
             }\n\
             fn relay(&self) { Self::spin_up(); spin(); }\n\
             fn spin_up(&self) {}\n\
         }\n\
         fn spin() {}\n",
    )
    .unwrap();
    let real = SourceFile::parse(
        "crates/x/src/real.rs",
        "pub struct Engine;\n\
         impl Engine {\n\
             pub fn start() {}\n\
             pub fn stop() {}\n\
         }\n\
         pub fn unrelated() {}\n",
    )
    .unwrap();
    let g = CallGraph::build(&[hub, real]);

    let roots = g.find("crates/x/src/hub.rs", "Hub::drive");
    assert_eq!(roots.len(), 1);
    let expected: BTreeSet<String> = [
        // the root itself
        "crates/x/src/hub.rs::Hub::drive",
        // method call on self
        "crates/x/src/hub.rs::Hub::relay",
        // `Self::…` UFCS from relay
        "crates/x/src/hub.rs::Hub::spin_up",
        // plain same-file free call from relay
        "crates/x/src/hub.rs::spin",
        // use-alias path call and direct type-qualified call, across files
        "crates/x/src/real.rs::Engine::start",
        "crates/x/src/real.rs::Engine::stop",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect();
    assert_eq!(reached_qnames(&g, &roots), expected);
}
