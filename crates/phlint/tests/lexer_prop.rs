//! Property tests for the ph-lint lexer (and the parser above it).
//!
//! Uses the workspace's own deterministic shrinking harness
//! (`ph_codec::prop`) — the one dependency carve-out in this crate, and
//! dev-only. Failures print a `PH_PROP_SEED`; shrunk seeds worth keeping
//! go into `tests/lexer_prop.regressions` as `cc <hex>` lines, which are
//! replayed before the random cases on every run.
//!
//! The properties: on *arbitrary* input the lexer never panics and is
//! deterministic (same bytes, same tokens, same error); on input it
//! accepts, every reported line number is in range, no token is empty,
//! and the downstream item parser and test-mask builder hold up too.

use codec::prop::{check, Config, Gen};
use phlint::lexer::{lex, test_mask};
use phlint::parse::parse_items;

fn config() -> Config {
    Config::default().with_regressions_file(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/lexer_prop.regressions"
    ))
}

/// Arbitrary (mostly hostile) input: raw bytes forced into UTF-8.
fn arbitrary_text(g: &mut Gen) -> String {
    String::from_utf8_lossy(&g.bytes(256)).into_owned()
}

/// Rust-shaped input: fragments that exercise the tricky lexer states —
/// raw strings, nested comments, lifetimes, char literals vs lifetimes,
/// `r#`-prefixed identifiers — glued in random order.
fn rust_shaped_text(g: &mut Gen) -> String {
    const FRAGMENTS: &[&str] = &[
        "fn f() {}",
        "let s = \"str with \\\" escape\";",
        "let r = r#\"raw \" string\"#;",
        "let c = 'x';",
        "let l: &'a str = s;",
        "/* nested /* comment */ still */",
        "// line comment\n",
        "let n = 0xFF_u32;",
        "let r#match = 1;",
        "b\"bytes\"",
        "'\\n'",
        "#[cfg(test)] mod t { }",
        "::",
        "..=",
        "{",
        "}",
        "\"",
        "r#\"",
        "/*",
        "'",
    ];
    let n = g.usize(12);
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(FRAGMENTS[g.usize(FRAGMENTS.len())]);
        out.push(' ');
    }
    out
}

fn never_panics_and_deterministic(src: &str) {
    let first = lex(src);
    let second = lex(src);
    assert_eq!(first, second, "lexing is not deterministic");
    if let Ok(toks) = first {
        let lines = src.lines().count().max(1) as u32;
        for t in &toks {
            assert!(
                t.line >= 1 && t.line <= lines,
                "line {} out of range",
                t.line
            );
        }
        let mask = test_mask(&toks);
        assert_eq!(mask.len(), toks.len());
        // The item parser must also survive whatever the lexer accepts.
        let _items = parse_items(&toks);
    }
}

#[test]
fn lexer_survives_arbitrary_bytes() {
    check(
        &config(),
        "lexer survives arbitrary bytes",
        arbitrary_text,
        |s: &String| never_panics_and_deterministic(s),
    );
}

#[test]
fn lexer_survives_rust_shaped_fragments() {
    check(
        &config(),
        "lexer survives rust-shaped fragments",
        rust_shaped_text,
        |s: &String| never_panics_and_deterministic(s),
    );
}

#[test]
fn lexer_token_text_is_never_empty_on_valid_rust() {
    check(
        &config(),
        "tokens are non-empty on valid rust",
        |g: &mut Gen| {
            let name: String = (0..g.usize_in(1, 8))
                .map(|_| char::from(b'a' + g.u64(26) as u8))
                .collect();
            let body = g.usize(3);
            format!("pub fn {name}() -> u32 {{ {body} }}\n")
        },
        |src| {
            let toks = lex(src).expect("valid rust must lex");
            assert!(toks.iter().all(|t| !t.text.is_empty()));
        },
    );
}
