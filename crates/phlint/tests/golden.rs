//! Clippy-UI-style golden tests over the fixture corpus.
//!
//! Each `tests/fixtures/<name>.rs` holds one or more *virtual* source
//! files introduced by `//@file: <workspace-relative-path>` marker lines;
//! the expected findings live next to it in `tests/fixtures/<name>.expected`
//! as `path:line: rule` lines (sorted, one per finding). Virtual file
//! contents are padded so finding line numbers match the fixture file
//! itself — an `.expected` line points straight at the offending fixture
//! line.
//!
//! To regenerate after a deliberate rule change:
//!
//! ```sh
//! PHLINT_BLESS=1 cargo test -p ph-lint --test golden
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use phlint::rules::{run_all, SourceFile};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Splits a fixture into `(virtual_path, padded_source)` pairs. Padding
/// with blank lines keeps every token's line number identical to its line
/// in the fixture file.
fn virtual_files(text: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if let Some(path) = line.trim().strip_prefix("//@file:") {
            out.push((path.trim().to_owned(), "\n".repeat(idx + 1)));
        } else if let Some((_, content)) = out.last_mut() {
            content.push_str(line);
            content.push('\n');
        }
    }
    assert!(!out.is_empty(), "fixture has no //@file: markers");
    out
}

fn findings_for(fixture: &Path) -> String {
    let text = fs::read_to_string(fixture).expect("read fixture");
    let sources: Vec<SourceFile> = virtual_files(&text)
        .into_iter()
        .map(|(path, src)| {
            SourceFile::parse(path.clone(), &src)
                .unwrap_or_else(|e| panic!("{path}: lex error: {e}"))
        })
        .collect();
    run_all(&sources)
        .iter()
        .map(|f| format!("{}:{}: {}\n", f.path, f.line, f.rule))
        .collect()
}

#[test]
fn fixtures_match_expected() {
    let dir = fixture_dir();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "no fixtures in {}", dir.display());

    let bless = std::env::var_os("PHLINT_BLESS").is_some();
    let mut failures = Vec::new();
    for fixture in &fixtures {
        let got = findings_for(fixture);
        let expected_path = fixture.with_extension("expected");
        if bless {
            fs::write(&expected_path, &got).expect("write .expected");
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing {} — run with PHLINT_BLESS=1 to create it",
                expected_path.display()
            )
        });
        if got != expected {
            failures.push(format!(
                "{}:\n--- expected ---\n{expected}--- got ---\n{got}",
                fixture.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatch (rerun with PHLINT_BLESS=1 after a deliberate rule change):\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_new_family_has_positive_and_negative_coverage() {
    // The corpus must keep exercising each rule family in both
    // directions: at least one finding (positive) and at least one
    // fixture virtual file that stays clean (the `NOT flagged` comments).
    let families = [
        ("digest_taint.rs", "digest-taint"),
        ("epoch_frozen.rs", "epoch-frozen-mutation"),
        ("outbox_commutativity.rs", "outbox-commutativity"),
        ("unbounded_decode.rs", "unbounded-decode-allocation"),
        ("legacy_rules.rs", "nondeterministic-iteration"),
        ("legacy_rules.rs", "panic-in-dispatch"),
        ("legacy_rules.rs", "raw-thread-spawn"),
        ("legacy_rules.rs", "relaxed-ordering"),
        ("legacy_rules.rs", "wire-exhaustiveness"),
    ];
    for (fixture, rule) in families {
        let path = fixture_dir().join(fixture);
        let got = findings_for(&path);
        assert!(
            got.lines().any(|l| l.ends_with(rule)),
            "{fixture}: no positive {rule} finding:\n{got}"
        );
        let text = fs::read_to_string(&path).expect("read fixture");
        assert!(
            text.contains("NOT flagged"),
            "{fixture}: no documented negative case"
        );
    }
}
