//! Rendering: human text and machine JSON.
//!
//! The JSON writer is ~40 lines of hand-rolled escaping rather than a
//! dependency, per the workspace zero-dependency policy — and the linter
//! deliberately does not depend on `ph-codec`, one of the crates it lints.

use crate::allow::Allowlist;
use crate::rules::Finding;

/// The outcome of one lint run, ready to render.
pub struct Report {
    /// Every finding, allowlisted or not, sorted deterministically.
    pub findings: Vec<Finding>,
    /// `allowed[i]` — index into the allowlist entry covering finding `i`.
    pub allowed: Vec<Option<usize>>,
    /// Allowlist the run was checked against.
    pub allowlist: Allowlist,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by the baseline (what fails CI).
    pub fn new_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .zip(&self.allowed)
            .filter(|(_, a)| a.is_none())
            .map(|(f, _)| f)
    }

    /// Count of non-allowlisted findings.
    pub fn new_count(&self) -> usize {
        self.allowed.iter().filter(|a| a.is_none()).count()
    }

    /// Count of allowlisted findings.
    pub fn allowlisted_count(&self) -> usize {
        self.allowed.iter().filter(|a| a.is_some()).count()
    }

    /// Baseline entries that covered no finding. Stale entries are hard
    /// errors: a baseline line that matches nothing either outlived its
    /// code (delete it) or silently mismatches the violation it was meant
    /// to cover (fix the needle) — both rot the audit trail.
    pub fn stale_entries(&self) -> Vec<usize> {
        (0..self.allowlist.entries.len())
            .filter(|i| !self.allowed.contains(&Some(*i)))
            .collect()
    }

    /// Whether the run should fail CI: new findings or stale baseline
    /// entries.
    pub fn is_failure(&self) -> bool {
        self.new_count() > 0 || !self.stale_entries().is_empty()
    }

    /// The self-explaining CI summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} findings, {} allowlisted, {} stale allow entries, {} files scanned",
            self.new_count(),
            self.allowlisted_count(),
            self.stale_entries().len(),
            self.files_scanned
        )
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (f, allowed) in self.findings.iter().zip(&self.allowed) {
            if allowed.is_some() {
                continue;
            }
            out.push_str(&format!(
                "{}:{}: {}: {}\n    {}\n",
                f.path, f.line, f.rule, f.message, f.snippet
            ));
        }
        for &i in &self.stale_entries() {
            let e = &self.allowlist.entries[i];
            out.push_str(&format!(
                "error: stale lint.allow entry at line {} ({} | {} | {}) matched nothing — delete it or fix its needle\n",
                e.line, e.rule, e.path, e.needle
            ));
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// Machine-readable rendering (one JSON object).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"new_findings\": {},\n", self.new_count()));
        out.push_str(&format!(
            "  \"allowlisted\": {},\n",
            self.allowlisted_count()
        ));
        out.push_str("  \"findings\": [");
        let mut first = true;
        for (f, allowed) in self.findings.iter().zip(&self.allowed) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"snippet\": {}, ", json_str(&f.snippet)));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            match allowed {
                Some(i) => out.push_str(&format!(
                    "\"allowlisted\": true, \"reason\": {}",
                    json_str(&self.allowlist.entries[*i].reason)
                )),
                None => out.push_str("\"allowlisted\": false"),
            }
            out.push('}');
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"stale_allow_entries\": [");
        let mut first = true;
        for &i in &self.stale_entries() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("{}", self.allowlist.entries[i].line));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"summary\": {}\n", json_str(&self.summary())));
        out.push_str("}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, DIGEST_TAINT};

    fn report() -> Report {
        let allowlist = Allowlist::parse(
            "digest-taint | a.rs | Instant::now | timing the bench itself\n\
             digest-taint | gone.rs | whatever | stale entry\n",
        )
        .unwrap();
        let findings = vec![
            Finding {
                rule: DIGEST_TAINT,
                path: "a.rs".into(),
                line: 3,
                snippet: "let t = Instant::now();".into(),
                message: "wall clock".into(),
            },
            Finding {
                rule: DIGEST_TAINT,
                path: "b.rs".into(),
                line: 9,
                snippet: "SystemTime::now()".into(),
                message: "wall \"clock\"".into(),
            },
        ];
        let allowed = allowlist.assign(&findings).unwrap();
        Report {
            findings,
            allowed,
            allowlist,
            files_scanned: 2,
        }
    }

    #[test]
    fn summary_counts_split_new_vs_allowlisted() {
        let r = report();
        assert_eq!(
            r.summary(),
            "1 findings, 1 allowlisted, 1 stale allow entries, 2 files scanned"
        );
        assert_eq!(r.stale_entries().len(), 1);
    }

    #[test]
    fn text_report_shows_new_findings_and_stale_entries() {
        let text = report().render_text();
        assert!(text.contains("b.rs:9: digest-taint"));
        assert!(!text.contains("a.rs:3")); // allowlisted — not shown
        assert!(text.contains("error: stale lint.allow entry"));
        assert!(
            text.ends_with("1 findings, 1 allowlisted, 1 stale allow entries, 2 files scanned\n")
        );
    }

    #[test]
    fn stale_entries_alone_fail_the_run() {
        let allowlist =
            Allowlist::parse("digest-taint | gone.rs | whatever | outlived its code\n").unwrap();
        let r = Report {
            findings: Vec::new(),
            allowed: Vec::new(),
            allowlist,
            files_scanned: 1,
        };
        assert_eq!(r.new_count(), 0);
        assert!(
            r.is_failure(),
            "a stale baseline entry must be a hard error"
        );
        assert!(r.render_text().contains("error: stale lint.allow entry"));
    }

    #[test]
    fn clean_run_with_fully_used_baseline_passes() {
        let mut r = report();
        // Drop the stale entry and the un-allowlisted finding: fully clean.
        r.allowlist.entries.pop();
        r.findings.pop();
        r.allowed.pop();
        assert!(!r.is_failure());
    }

    #[test]
    fn json_report_escapes_and_marks_allowlisted() {
        let json = report().render_json();
        assert!(json.contains("\"allowlisted\": true"));
        assert!(json.contains("\"allowlisted\": false"));
        assert!(json.contains("wall \\\"clock\\\""));
        assert!(json.contains("\"stale_allow_entries\": [2]"));
    }
}
