//! `ph-lint`: determinism & robustness static analysis for this workspace.
//!
//! The repo's headline claims — bit-identical trace digests for any
//! `--threads N`, a `PS_*` dispatch that never panics on hostile input —
//! are *invariants of the source*, so this crate checks them at the
//! source level, before the code ever runs. See DESIGN.md §9 for the rule
//! catalogue and the `lint.allow` baseline policy.
//!
//! Pipeline: [`lexer`] turns each `.rs` file into tokens (raw strings,
//! nested comments, lifetimes all handled), [`parse`] builds a
//! brace-matched item tree per file, [`graph`] links the trees into an
//! intra-workspace call graph, [`rules`] walks tokens/items/reachability,
//! [`allow`] subtracts the committed baseline, [`report`] renders text or
//! JSON. The binary in `main.rs` maps the outcome to exit codes:
//! `0` clean, `1` new findings, `2` I/O or parse error.

pub mod allow;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use allow::Allowlist;
use report::Report;
use rules::SourceFile;

/// A fatal error: bad CLI usage, unreadable file, lexer failure, malformed
/// allowlist. Maps to exit code 2.
#[derive(Debug)]
pub struct FatalError(pub String);

impl std::fmt::Display for FatalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ph-lint: {}", self.0)
    }
}

/// Directories under the workspace root that contain lintable Rust.
const SCAN_ROOTS: [&str; 4] = ["src", "crates", "examples", "tests"];

/// Collects every `.rs` file under the workspace root, sorted so the run
/// (like everything else in this repo) is deterministic.
///
/// # Errors
///
/// Returns [`FatalError`] when a directory cannot be read.
pub fn collect_workspace_files(root: &Path) -> Result<Vec<PathBuf>, FatalError> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let d = root.join(dir);
        if d.is_dir() {
            walk(&d, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), FatalError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| FatalError(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| FatalError(format!("reading {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` directories hold the golden-test corpus: files
            // full of *intentional* violations, exercised by the golden
            // tests themselves, never by a workspace run.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the given files against the allowlist.
///
/// `root` anchors the workspace-relative paths used for rule scoping and
/// allowlist matching.
///
/// # Errors
///
/// Returns [`FatalError`] on unreadable files or lexer errors.
pub fn lint_files(
    root: &Path,
    files: &[PathBuf],
    allowlist: Allowlist,
) -> Result<Report, FatalError> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = relative_path(root, path);
        let text = std::fs::read_to_string(path)
            .map_err(|e| FatalError(format!("reading {}: {e}", path.display())))?;
        let sf = SourceFile::parse(rel.clone(), &text)
            .map_err(|e| FatalError(format!("{rel}: lex error: {e}")))?;
        sources.push(sf);
    }
    let findings = rules::run_all(&sources);
    let allowed = allowlist.assign(&findings).map_err(FatalError)?;
    Ok(Report {
        findings,
        allowed,
        allowlist,
        files_scanned: sources.len(),
    })
}

/// Runs the rules and rewrites `lint.allow` in place: matched entries are
/// re-anchored to their finding's current line (needle and reason
/// preserved), stale entries dropped. Findings not covered by any entry
/// are untouched — `--update-baseline` refreshes the baseline, it never
/// grows it. Returns a human-readable summary of what changed.
///
/// # Errors
///
/// Returns [`FatalError`] on I/O failures, lexer errors, or an ambiguous
/// baseline (see [`allow::Allowlist::assign`]).
pub fn update_baseline(
    root: &Path,
    files: &[PathBuf],
    allow_path: &Path,
) -> Result<String, FatalError> {
    let allowlist = load_allowlist(allow_path)?;
    let previous = if allow_path.exists() {
        std::fs::read_to_string(allow_path)
            .map_err(|e| FatalError(format!("reading {}: {e}", allow_path.display())))?
    } else {
        String::new()
    };
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = relative_path(root, path);
        let text = std::fs::read_to_string(path)
            .map_err(|e| FatalError(format!("reading {}: {e}", path.display())))?;
        let sf = SourceFile::parse(rel.clone(), &text)
            .map_err(|e| FatalError(format!("{rel}: lex error: {e}")))?;
        sources.push(sf);
    }
    let findings = rules::run_all(&sources);
    let (text, stale) = allowlist
        .render_updated(&previous, &findings)
        .map_err(FatalError)?;
    std::fs::write(allow_path, &text)
        .map_err(|e| FatalError(format!("writing {}: {e}", allow_path.display())))?;
    let kept = allowlist.entries.len() - stale.len();
    let mut summary = format!(
        "updated {}: {kept} entries re-anchored, {} stale entries dropped\n",
        allow_path.display(),
        stale.len()
    );
    for e in stale {
        summary.push_str(&format!(
            "  dropped lint.allow:{} ({} | {} | {})\n",
            e.line, e.rule, e.path, e.needle
        ));
    }
    Ok(summary)
}

/// Loads `lint.allow` from `path`; a missing file is an empty baseline.
///
/// # Errors
///
/// Returns [`FatalError`] on unreadable files or parse errors (including
/// the missing-reason policy violation).
pub fn load_allowlist(path: &Path) -> Result<Allowlist, FatalError> {
    if !path.exists() {
        return Ok(Allowlist::default());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| FatalError(format!("reading {}: {e}", path.display())))?;
    Allowlist::parse(&text).map_err(FatalError)
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize to forward slashes so lint.allow is platform-stable.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
