//! A hand-written Rust lexer, just deep enough for linting.
//!
//! The rule engine works on a token stream, never on raw text, so a
//! `HashMap` mentioned inside a string literal, a doc comment, or a
//! `#[doc = "..."]` attribute can never produce a finding. That requires
//! getting the genuinely tricky parts of Rust's lexical grammar right:
//!
//! * raw strings `r"…"` / `r#"…"#` / `r##"…"##` (any hash depth), and their
//!   byte cousins `br#"…"#`;
//! * raw identifiers `r#match` (which share a prefix with raw strings);
//! * *nested* block comments `/* /* */ */`;
//! * byte strings `b"…"`, byte literals `b'x'`;
//! * the `'a` lifetime vs `'a'` char-literal ambiguity (including
//!   `'static`, `'_`, and escaped chars like `'\u{1F600}'`).
//!
//! Everything the rules do not need (numeric-literal grammar subtleties,
//! multi-char operators) is lexed loosely: numbers are one blob token,
//! operators come out one [`TokKind::Punct`] per character and rules match
//! sequences (`:` `:` for `::`).

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (also raw identifiers, with the `r#` stripped).
    Ident,
    /// A lifetime such as `'a` (text holds the name without the quote).
    Lifetime,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char (`'x'`) or byte (`b'x'`) literal.
    Char,
    /// A numeric literal blob.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`] this is the *contents only* (no
    /// quotes, no hashes), so rules can opt in to inspecting literals; for
    /// `Punct` it is the single character.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

/// A lexical error: unterminated string/comment or a stray byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn err(&self, line: u32, msg: impl Into<String>) -> LexError {
        LexError {
            line,
            msg: msg.into(),
        }
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    /// Consumes an identifier starting at the current position.
    fn lex_ident(&mut self) -> String {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes a `"…"` body (opening quote already consumed); returns the
    /// contents with escapes left as written.
    fn lex_quoted(&mut self, what: &str) -> Result<String, LexError> {
        let line = self.line;
        let start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.err(line, format!("unterminated {what}"))),
                Some(b'\\') => {
                    // Skip the escaped character so an escaped quote does
                    // not close the literal.
                    self.bump();
                }
                Some(b'"') => {
                    return Ok(String::from_utf8_lossy(&self.src[start..self.pos - 1]).into_owned())
                }
                Some(_) => {}
            }
        }
    }

    /// Consumes a raw-string body. `hashes` were already counted and the
    /// opening quote consumed; ends at `"` followed by the same number of
    /// hashes (raw strings have no escapes — that is their point).
    fn lex_raw(&mut self, hashes: usize) -> Result<String, LexError> {
        let line = self.line;
        let start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.err(line, "unterminated raw string")),
                Some(b'"') => {
                    if (0..hashes).all(|i| self.peek(i) == Some(b'#')) {
                        let text =
                            String::from_utf8_lossy(&self.src[start..self.pos - 1]).into_owned();
                        self.pos += hashes;
                        return Ok(text);
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Consumes a char/byte-literal body (opening `'` already consumed).
    fn lex_char_body(&mut self) -> Result<String, LexError> {
        let line = self.line;
        let start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.err(line, "unterminated char literal")),
                Some(b'\\') => {
                    self.bump();
                }
                Some(b'\'') => {
                    return Ok(String::from_utf8_lossy(&self.src[start..self.pos - 1]).into_owned())
                }
                Some(_) => {}
            }
        }
    }

    /// `'` was seen: decide lifetime vs char literal.
    fn lex_quote(&mut self) -> Result<(), LexError> {
        let line = self.line;
        self.pos += 1; // consume '
        match self.peek(0) {
            Some(b'\\') => {
                let body = self.lex_char_body()?;
                self.push(TokKind::Char, body, line);
            }
            Some(b) if is_ident_start(b) || b.is_ascii_digit() => {
                // Read the identifier run, then look for a closing quote:
                // `'a'` is a char, `'a` / `'static` are lifetimes.
                let name = self.lex_ident();
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                    self.push(TokKind::Char, name, line);
                } else {
                    self.push(TokKind::Lifetime, name, line);
                }
            }
            Some(b'\'') => return Err(self.err(line, "empty char literal")),
            Some(_) => {
                let body = self.lex_char_body()?;
                self.push(TokKind::Char, body, line);
            }
            None => return Err(self.err(line, "dangling quote at end of input")),
        }
        Ok(())
    }

    /// A block comment opener `/*` was seen (both chars still pending).
    fn lex_block_comment(&mut self) -> Result<(), LexError> {
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek(0) {
                None => return Err(self.err(line, "unterminated block comment")),
                Some(b'/') if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                Some(b'*') if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        Ok(())
    }

    fn run(mut self) -> Result<Vec<Tok>, LexError> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == Some(b'*') => self.lex_block_comment()?,
                b'\'' => self.lex_quote()?,
                b'"' => {
                    self.pos += 1;
                    let body = self.lex_quoted("string literal")?;
                    self.push(TokKind::Str, body, line);
                }
                b'r' | b'b' if self.looks_like_prefixed_literal() => {
                    self.lex_prefixed_literal()?;
                }
                _ if is_ident_start(b) => {
                    let name = self.lex_ident();
                    self.push(TokKind::Ident, name, line);
                }
                _ if b.is_ascii_digit() => {
                    let start = self.pos;
                    self.pos += 1;
                    loop {
                        match self.peek(0) {
                            Some(c) if is_ident_continue(c) => self.pos += 1,
                            // `1.5` continues the number; `1..2` does not.
                            Some(b'.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                                self.pos += 2
                            }
                            _ => break,
                        }
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.push(TokKind::Num, text, line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (b as char).to_string(), line);
                }
            }
        }
        Ok(self.out)
    }

    /// At an `r` or `b`: is this a string/char literal prefix rather than a
    /// plain identifier? (`r#"…"#`, `r"…"`, `b"…"`, `br#"…"#`, `b'x'` —
    /// but *not* the raw identifier `r#match` or the ident `radius`.)
    fn looks_like_prefixed_literal(&self) -> bool {
        let b0 = self.peek(0);
        let b1 = self.peek(1);
        match (b0, b1) {
            (Some(b'r'), Some(b'"')) => true,
            (Some(b'r'), Some(b'#')) => {
                // Count hashes; a quote after them means raw string, an
                // identifier char means raw identifier.
                let mut i = 1;
                while self.peek(i) == Some(b'#') {
                    i += 1;
                }
                self.peek(i) == Some(b'"')
            }
            (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
            (Some(b'b'), Some(b'r')) => matches!(self.peek(2), Some(b'"') | Some(b'#')),
            _ => false,
        }
    }

    fn lex_prefixed_literal(&mut self) -> Result<(), LexError> {
        let line = self.line;
        // Skip the `r`, `b`, or `br` prefix.
        if self.peek(0) == Some(b'b') {
            self.pos += 1;
            if self.peek(0) == Some(b'\'') {
                self.pos += 1;
                let body = self.lex_char_body()?;
                self.push(TokKind::Char, body, line);
                return Ok(());
            }
        }
        let raw = self.peek(0) == Some(b'r');
        if raw {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        match self.peek(0) {
            Some(b'"') => {
                self.pos += 1;
                let body = if raw {
                    self.lex_raw(hashes)?
                } else {
                    self.lex_quoted("byte string")?
                };
                self.push(TokKind::Str, body, line);
                Ok(())
            }
            _ => Err(self.err(line, "malformed literal prefix")),
        }
    }
}

/// Lexes Rust source into a token stream (comments and whitespace dropped).
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings/comments or malformed
/// literal prefixes; the driver maps this to exit code 2.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    // Raw identifiers: handled here rather than in `run` so `r#match`
    // becomes Ident("match") — close enough for rule purposes.
    let lexer = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    };
    let mut toks = lexer.run()?;
    for t in &mut toks {
        if t.kind == TokKind::Ident {
            if let Some(stripped) = t.text.strip_prefix("r#") {
                t.text = stripped.to_owned();
            }
        }
    }
    Ok(toks)
}

/// Marks, for every token, whether it sits inside test-only code: an item
/// (fn/mod/impl/…) annotated `#[test]` or `#[cfg(test)]` (including
/// `cfg(all(test, …))`, but *not* `cfg(not(test))`).
///
/// Rules that exempt test code consult this mask; the whole-file cases
/// (`tests/`, `benches/` directories) are handled by the engine from the
/// path instead.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // Outer attribute `#[ … ]` (inner `#![…]` attributes never mark
        // test items, and the `!` breaks the pattern naturally).
        if toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
        {
            let Some(close) = matching(toks, i + 1, "[", "]") else {
                break;
            };
            if is_test_attr(&toks[i + 2..close]) {
                // Mark from the attribute through the end of the item it
                // annotates: the block of the first `{` at nesting level 0
                // (or through the `;` for block-less items).
                let mut j = close + 1;
                let mut depth_paren = 0i32;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" => depth_paren += 1,
                            ")" | "]" => depth_paren -= 1,
                            ";" if depth_paren == 0 => break,
                            "{" if depth_paren == 0 => {
                                if let Some(end) = matching(toks, j, "{", "}") {
                                    j = end;
                                }
                                break;
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take((j + 1).min(toks.len())).skip(i) {
                    *m = true;
                }
                i = close + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the token closing the bracket opened at `open` (which must hold
/// `open_text`), or `None` if unbalanced.
fn matching(toks: &[Tok], open: usize, open_text: &str, close_text: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_text {
                depth += 1;
            } else if t.text == close_text {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

fn is_test_attr(attr: &[Tok]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.as_slice() {
        ["test"] => true,
        _ => idents.first() == Some(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "a".into())));
        let toks = kinds("let s: &'static str = \"x\"; let c = '\\n';");
        assert!(toks.contains(&(TokKind::Lifetime, "static".into())));
        assert!(toks.contains(&(TokKind::Char, "\\n".into())));
    }

    #[test]
    fn raw_strings_hide_their_contents_from_rules() {
        let toks = kinds(r####"let x = r#"HashMap::new().iter()"#;"####);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Ident).count(),
            2, // let, x — nothing from inside the raw string
        );
        let toks = kinds("let y = r\"no hashes\";");
        assert!(toks.contains(&(TokKind::Str, "no hashes".into())));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.contains(&(TokKind::Ident, "match".into())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
        assert!(lex("/* /* */").is_err()); // still open at depth 1
    }

    #[test]
    fn byte_strings_and_byte_literals() {
        let toks = kinds(r##"let b = b"bytes"; let c = b'x'; let d = br#"raw"#;"##);
        assert!(toks.contains(&(TokKind::Str, "bytes".into())));
        assert!(toks.contains(&(TokKind::Char, "x".into())));
        assert!(toks.contains(&(TokKind::Str, "raw".into())));
    }

    #[test]
    fn escaped_quotes_do_not_close_strings() {
        let toks = kinds(r#"let s = "a\"b";"#);
        assert!(toks.contains(&(TokKind::Str, r#"a\"b"#.into())));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = lex("/* a\nb */\nfn f() {}\n").unwrap();
        assert_eq!(toks[0].text, "fn");
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn numbers_lex_as_blobs() {
        let toks = kinds("0xFF 1_000 1.5 0..n");
        assert!(toks.contains(&(TokKind::Num, "0xFF".into())));
        assert!(toks.contains(&(TokKind::Num, "1_000".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5".into())));
        // `0..n` splits into number, two dots, ident.
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Ident, "n".into())));
    }

    #[test]
    fn test_mask_covers_cfg_test_modules_and_test_fns() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn helper() { y.unwrap(); } }\n\
                   #[test]\nfn t() { z.unwrap(); }\n\
                   fn prod2() {}";
        let toks = lex(src).unwrap();
        let mask = test_mask(&toks);
        let masked: Vec<&str> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, m)| **m && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"helper"));
        assert!(masked.contains(&"t"));
        assert!(!masked.contains(&"prod"));
        assert!(!masked.contains(&"prod2"));
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let toks = lex(src).unwrap();
        let mask = test_mask(&toks);
        assert!(mask.iter().all(|m| !m));
    }
}
