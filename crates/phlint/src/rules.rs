//! The rule engine: six invariants clippy cannot express.
//!
//! Each rule walks the token stream of one file (rule 6 walks several) and
//! emits [`Finding`]s. Scoping conventions shared by the per-file rules:
//!
//! * whole-file test code (`tests/`, `benches/` directories) is exempt;
//! * token-level test code (`#[cfg(test)]` modules, `#[test]` fns — see
//!   [`crate::lexer::test_mask`]) is exempt;
//! * everything else is production code and is linted.
//!
//! The rules are heuristic by design: they re-derive just enough typing
//! from declaration syntax (`name: HashMap<…>`, `let name = HashMap::new()`)
//! to anchor method-call checks, trading full type inference for a
//! zero-dependency pass that runs in milliseconds. Every heuristic is
//! documented at its rule, and misses fail *safe* for the repo's claims:
//! a rule that cannot prove a site is hash iteration stays silent, while
//! the runtime digest checks in `ci.sh` remain the backstop.

use crate::lexer::{Tok, TokKind};

/// Rule 1: iteration over `HashMap`/`HashSet` in digest-affecting crates.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// Rule 2: `Instant::now`/`SystemTime` in simulation code.
pub const WALL_CLOCK_IN_SIM: &str = "wall-clock-in-sim";
/// Rule 3: `unwrap`/`expect`/`panic!`/indexing in dispatch paths.
pub const PANIC_IN_DISPATCH: &str = "panic-in-dispatch";
/// Rule 4: `thread::spawn` outside `netsim::par`.
pub const RAW_THREAD_SPAWN: &str = "raw-thread-spawn";
/// Rule 5: `Ordering::Relaxed` outside allowlisted counter sites.
pub const RELAXED_ORDERING: &str = "relaxed-ordering";
/// Rule 6: every protocol variant has Wire, dispatch and round-trip arms.
pub const WIRE_EXHAUSTIVENESS: &str = "wire-exhaustiveness";

/// All rule names, for `--help` and the JSON report.
pub const ALL_RULES: [&str; 6] = [
    NONDETERMINISTIC_ITERATION,
    WALL_CLOCK_IN_SIM,
    PANIC_IN_DISPATCH,
    RAW_THREAD_SPAWN,
    RELAXED_ORDERING,
    WIRE_EXHAUSTIVENESS,
];

/// One lexed file ready for linting.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Token stream from [`crate::lexer::lex`].
    pub toks: Vec<Tok>,
    /// Per-token test-code mask from [`crate::lexer::test_mask`].
    pub test_mask: Vec<bool>,
    /// Source lines (for snippets).
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Builds a `SourceFile` from source text.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::lexer::LexError`] from the lexer.
    pub fn parse(path: impl Into<String>, src: &str) -> Result<Self, crate::lexer::LexError> {
        let toks = crate::lexer::lex(src)?;
        let test_mask = crate::lexer::test_mask(&toks);
        Ok(SourceFile {
            path: path.into(),
            toks,
            test_mask,
            lines: src.lines().map(str::to_owned).collect(),
        })
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }

    /// The crate directory name (`netsim` for `crates/netsim/src/…`), or a
    /// pseudo-crate for root `src/`, `examples/`, workspace `tests/`.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or(""),
            Some("examples") => "examples",
            Some("tests") => "workspace-tests",
            _ => "root",
        }
    }

    /// Whole-file test or bench code (integration tests, benches).
    pub fn is_test_file(&self) -> bool {
        self.path
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches")
    }
}

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed source line.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Runs every rule over the file set and returns findings sorted by
/// `(path, line, rule)` — the lint's own output must be deterministic.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !f.is_test_file() {
            nondeterministic_iteration(f, &mut findings);
            wall_clock_in_sim(f, &mut findings);
            panic_in_dispatch(f, &mut findings);
            raw_thread_spawn(f, &mut findings);
            relaxed_ordering(f, &mut findings);
        }
    }
    wire_exhaustiveness(files, &mut findings);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

// ---------------------------------------------------------------------
// Rule 1: nondeterministic-iteration
// ---------------------------------------------------------------------

/// Crates whose state feeds the crowd/scenario trace digests.
const DIGEST_CRATES: [&str; 3] = ["netsim", "peerhood", "core"];

/// Methods whose call on a hash container observes its iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Collects identifiers declared in this file with a `HashMap`/`HashSet`
/// type: struct fields and `let`/param declarations (`name: HashMap<…>`,
/// possibly through `&`, `&mut`, lifetimes), plus `let name = HashMap::…`
/// initializations. Purely syntactic — no cross-file type inference — but
/// that is exactly where hash containers enter a file: its own fields and
/// locals.
fn hash_container_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if !(is_ident(t, "HashMap") || is_ident(t, "HashSet")) {
            continue;
        }
        let mut j = k;
        // Step back over a `std :: collections ::` path prefix.
        while j >= 3
            && is_punct(&toks[j - 1], ":")
            && is_punct(&toks[j - 2], ":")
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        // Step back over type-reference noise: `&`, `mut`, lifetimes.
        while j >= 1
            && (is_punct(&toks[j - 1], "&")
                || is_ident(&toks[j - 1], "mut")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && toks[j - 2].kind == TokKind::Ident {
            // `name : HashMap<…>` — but not `path :: HashMap`.
            let decl_colon = is_punct(&toks[j - 1], ":")
                && !(j >= 3 && is_punct(&toks[j - 3], ":"))
                && !(j + 1 < toks.len() && is_punct(&toks[j], ":") && is_punct(&toks[j + 1], ":"));
            // `let name = HashMap::new()` / `let mut name = …`.
            let init_eq = is_punct(&toks[j - 1], "=");
            if decl_colon || init_eq {
                let name = toks[j - 2].text.clone();
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

fn nondeterministic_iteration(f: &SourceFile, out: &mut Vec<Finding>) {
    if !DIGEST_CRATES.contains(&f.crate_name()) {
        return;
    }
    let names = hash_container_names(&f.toks);
    if names.is_empty() {
        return;
    }
    let toks = &f.toks;
    // Method-call form: `container.keys()`, `container.drain()`, …
    for i in 1..toks.len().saturating_sub(2) {
        if f.test_mask[i] {
            continue;
        }
        if is_punct(&toks[i], ".")
            && toks[i + 1].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 1].text.as_str())
            && is_punct(&toks[i + 2], "(")
            && toks[i - 1].kind == TokKind::Ident
            && names.contains(&toks[i - 1].text)
        {
            out.push(Finding {
                rule: NONDETERMINISTIC_ITERATION,
                path: f.path.clone(),
                line: toks[i + 1].line,
                snippet: f.snippet(toks[i + 1].line),
                message: format!(
                    "iteration order of `{}.{}()` is nondeterministic ({} is a hash container in a digest-affecting crate)",
                    toks[i - 1].text, toks[i + 1].text, toks[i - 1].text
                ),
            });
        }
    }
    // For-loop form: `for x in &container { … }`.
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i], "for") || f.test_mask[i] {
            i += 1;
            continue;
        }
        // Find `in` at bracket depth 0 before the body `{`.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_pos = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
            } else if is_ident(t, "in") && depth == 0 {
                in_pos = Some(j);
                break;
            }
            j += 1;
        }
        let Some(in_pos) = in_pos else {
            i += 1; // `impl Trait for Type`, `for<'a>` — no loop here
            continue;
        };
        // Expression tokens between `in` and the body `{`.
        let mut k = in_pos + 1;
        depth = 0;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident
                && names.contains(&t.text)
                // A following `.` means a method call decides the story
                // (and the method-call form above already judged it).
                && !(k + 1 < toks.len() && is_punct(&toks[k + 1], "."))
            {
                out.push(Finding {
                    rule: NONDETERMINISTIC_ITERATION,
                    path: f.path.clone(),
                    line: t.line,
                    snippet: f.snippet(t.line),
                    message: format!(
                        "`for … in {}` iterates a hash container in nondeterministic order",
                        t.text
                    ),
                });
            }
            k += 1;
        }
        i = k.max(i + 1);
    }
}

// ---------------------------------------------------------------------
// Rule 2: wall-clock-in-sim
// ---------------------------------------------------------------------

fn wall_clock_in_sim(f: &SourceFile, out: &mut Vec<Finding>) {
    // The live TCP driver and the bench timer are wall-clock by nature.
    if f.crate_name() == "bench" || f.path.contains("live/") || f.path.ends_with("/live.rs") {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.test_mask[i] {
            continue;
        }
        if is_ident(&toks[i], "Instant")
            && i + 3 < toks.len()
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && is_ident(&toks[i + 3], "now")
        {
            out.push(Finding {
                rule: WALL_CLOCK_IN_SIM,
                path: f.path.clone(),
                line: toks[i].line,
                snippet: f.snippet(toks[i].line),
                message: "`Instant::now` reads the wall clock; simulation code must use SimTime"
                    .to_owned(),
            });
        }
        if is_ident(&toks[i], "SystemTime") {
            out.push(Finding {
                rule: WALL_CLOCK_IN_SIM,
                path: f.path.clone(),
                line: toks[i].line,
                snippet: f.snippet(toks[i].line),
                message: "`SystemTime` reads the wall clock; simulation code must use SimTime"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: panic-in-dispatch
// ---------------------------------------------------------------------

/// Files whose non-test code must never panic: the Table-6 server dispatch
/// and the PeerHood daemon state machine (`lint.allow` documents why each
/// remaining site, if any, is safe).
const DISPATCH_FILES: [&str; 4] = [
    "crates/core/src/server.rs",
    "crates/peerhood/src/daemon.rs",
    "crates/peerhood/src/service.rs",
    "crates/peerhood/src/neighbor.rs",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn panic_in_dispatch(f: &SourceFile, out: &mut Vec<Finding>) {
    if !DISPATCH_FILES.contains(&f.path.as_str()) {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if is_punct(t, ".")
            && toks
                .get(i + 1)
                .is_some_and(|n| is_ident(n, "unwrap") || is_ident(n, "expect"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, "("))
        {
            let method = &toks[i + 1];
            out.push(Finding {
                rule: PANIC_IN_DISPATCH,
                path: f.path.clone(),
                line: method.line,
                snippet: f.snippet(method.line),
                message: format!(
                    "`.{}()` can panic; dispatch paths must return CommunityError",
                    method.text
                ),
            });
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "!"))
        {
            out.push(Finding {
                rule: PANIC_IN_DISPATCH,
                path: f.path.clone(),
                line: t.line,
                snippet: f.snippet(t.line),
                message: format!(
                    "`{}!` panics; dispatch paths must return CommunityError",
                    t.text
                ),
            });
        }
        // Slice/array indexing `expr[…]`: an out-of-range index panics.
        // The previous token being an identifier or a closing bracket marks
        // expression position (types `[u8; 4]`, attributes `#[…]` and
        // macros `vec![…]` all have a non-expression token before `[`).
        if is_punct(t, "[")
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || is_punct(&toks[i - 1], ")")
                || is_punct(&toks[i - 1], "]"))
        {
            out.push(Finding {
                rule: PANIC_IN_DISPATCH,
                path: f.path.clone(),
                line: t.line,
                snippet: f.snippet(t.line),
                message:
                    "indexing can panic; dispatch paths must bounds-check and return CommunityError"
                        .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: raw-thread-spawn
// ---------------------------------------------------------------------

/// The one simulation module allowed to create threads: the fork/join
/// helpers whose spawn-order joins keep the parallel engine deterministic.
const PAR_MODULE: &str = "crates/netsim/src/par.rs";

fn raw_thread_spawn(f: &SourceFile, out: &mut Vec<Finding>) {
    // The live serving path (reactor shards, load-harness workers) runs real
    // OS threads by design — it never feeds the simulation digest, mirroring
    // the wall-clock-in-sim exemption.
    if f.path == PAR_MODULE || f.path.contains("live/") || f.path.ends_with("/live.rs") {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.test_mask[i] {
            continue;
        }
        // `thread::spawn` and `thread::scope` both count: a scope is a
        // thread factory even when the `.spawn` calls hide inside a helper
        // that borrows the scope, so epoch/outbox workers must go through
        // the `netsim::par` fork/join helpers instead.
        let path_spawn = is_ident(&toks[i], "thread")
            && i + 3 < toks.len()
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && (is_ident(&toks[i + 3], "spawn") || is_ident(&toks[i + 3], "scope"));
        let method_spawn = is_punct(&toks[i], ".")
            && toks.get(i + 1).is_some_and(|n| is_ident(n, "spawn"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, "("));
        if path_spawn || method_spawn {
            out.push(Finding {
                rule: RAW_THREAD_SPAWN,
                path: f.path.clone(),
                line: toks[i].line,
                snippet: f.snippet(toks[i].line),
                message: "thread creation outside netsim::par breaks the deterministic fork/join discipline"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: relaxed-ordering
// ---------------------------------------------------------------------

fn relaxed_ordering(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.test_mask[i] {
            continue;
        }
        if is_ident(&toks[i], "Ordering")
            && i + 3 < toks.len()
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && is_ident(&toks[i + 3], "Relaxed")
        {
            out.push(Finding {
                rule: RELAXED_ORDERING,
                path: f.path.clone(),
                line: toks[i + 3].line,
                snippet: f.snippet(toks[i + 3].line),
                message: "`Ordering::Relaxed` provides no synchronization; allowlist pure counters, use stronger orderings elsewhere"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 6: wire-exhaustiveness
// ---------------------------------------------------------------------

const PROTOCOL_FILE: &str = "crates/core/src/protocol.rs";
const SERVER_FILE: &str = "crates/core/src/server.rs";

/// Extracts the variant names of `enum <name>` from a token stream.
fn enum_variants(toks: &[Tok], name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if is_ident(&toks[i], "enum") && is_ident(&toks[i + 1], name) && is_punct(&toks[i + 2], "{")
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut expect_variant = true;
            while j < toks.len() {
                let t = &toks[j];
                // Variant attributes `#[…]` are transparent: skip them
                // without disturbing the expect-a-variant state.
                if depth == 1
                    && is_punct(t, "#")
                    && toks.get(j + 1).is_some_and(|n| is_punct(n, "["))
                {
                    let mut attr_depth = 0i32;
                    while j < toks.len() {
                        if is_punct(&toks[j], "[") {
                            attr_depth += 1;
                        } else if is_punct(&toks[j], "]") {
                            attr_depth -= 1;
                            if attr_depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    j += 1;
                    continue;
                }
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" | "(" | "[" => {
                            depth += 1;
                            // Entering a payload: the next variant comes
                            // after the matching close and a comma.
                            if depth > 1 {
                                expect_variant = false;
                            }
                        }
                        "}" | ")" | "]" => {
                            depth -= 1;
                            if depth == 0 {
                                return variants;
                            }
                        }
                        "," if depth == 1 => expect_variant = true,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident && depth == 1 && expect_variant {
                    variants.push((t.text.clone(), t.line));
                    expect_variant = false;
                }
                j += 1;
            }
            return variants;
        }
        i += 1;
    }
    variants
}

/// Counts `Enum::Variant` path references, restricted to test or non-test
/// tokens.
fn count_refs(f: &SourceFile, enum_name: &str, variant: &str, in_tests: bool) -> usize {
    let toks = &f.toks;
    let mut n = 0;
    for i in 0..toks.len().saturating_sub(3) {
        if f.test_mask[i] != in_tests {
            continue;
        }
        if is_ident(&toks[i], enum_name)
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && is_ident(&toks[i + 3], variant)
        {
            n += 1;
        }
    }
    n
}

fn wire_exhaustiveness(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(protocol) = files.iter().find(|f| f.path == PROTOCOL_FILE) else {
        return; // partial lint (explicit file list) — nothing to check
    };
    let Some(server) = files.iter().find(|f| f.path == SERVER_FILE) else {
        return;
    };
    for enum_name in ["Request", "Response"] {
        let variants = enum_variants(&protocol.toks, enum_name);
        if variants.is_empty() {
            out.push(Finding {
                rule: WIRE_EXHAUSTIVENESS,
                path: protocol.path.clone(),
                line: 1,
                snippet: String::new(),
                message: format!("could not locate `enum {enum_name}` in the protocol module"),
            });
            continue;
        }
        for (variant, line) in variants {
            let mut missing = Vec::new();
            // Encode + decode arms both spell `Enum::Variant` in the Wire
            // impls, so full codec coverage means at least two non-test
            // references in protocol.rs.
            if count_refs(protocol, enum_name, &variant, false) < 2 {
                missing.push("a Wire encode/decode arm");
            }
            if count_refs(server, enum_name, &variant, false) < 1 {
                missing.push("a server dispatch arm");
            }
            if count_refs(protocol, enum_name, &variant, true) < 1 {
                missing.push("a round-trip test fixture");
            }
            if !missing.is_empty() {
                out.push(Finding {
                    rule: WIRE_EXHAUSTIVENESS,
                    path: protocol.path.clone(),
                    line,
                    snippet: protocol.snippet(line),
                    message: format!(
                        "`{}::{}` is missing {}",
                        enum_name,
                        variant,
                        missing.join(" and ")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src).unwrap()
    }

    fn run_one(path: &str, src: &str) -> Vec<Finding> {
        run_all(&[file(path, src)])
    }

    // ---- rule 1 ----------------------------------------------------

    #[test]
    fn hashmap_iteration_in_digest_crate_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) { for v in self.m.values() { drop(v); } } }";
        let f = run_one("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NONDETERMINISTIC_ITERATION);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn for_in_ref_to_map_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m { drop(x); } }";
        let f = run_one("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, NONDETERMINISTIC_ITERATION);
    }

    #[test]
    fn let_init_without_type_annotation_is_tracked() {
        let src = "use std::collections::HashSet;\n\
                   fn f() { let mut s = HashSet::new(); s.insert(1); s.retain(|_| true); }";
        let f = run_one("crates/peerhood/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("retain"));
    }

    #[test]
    fn btreemap_iteration_and_lookup_are_clean() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   struct S { m: BTreeMap<u32, u32>, h: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) -> Option<&u32> { for v in self.m.values() {} self.h.get(&1) } }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_outside_digest_crates_is_clean() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) { for v in m.values() { drop(v); } }";
        assert!(run_one("crates/harness/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_in_tests_is_exempt() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)] mod tests { use super::*;\n\
                   fn f(m: &HashMap<u32, u32>) { for v in m.values() { drop(v); } } }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_string_literal_is_not_a_finding() {
        let src = "fn f() -> &'static str { \"for v in map.values() HashMap\" }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    // ---- rule 2 ----------------------------------------------------

    #[test]
    fn instant_now_flagged_outside_exempt_paths() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); drop(t); }";
        let f = run_one("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, WALL_CLOCK_IN_SIM);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn system_time_flagged_even_as_import() {
        let src = "use std::time::SystemTime;";
        let f = run_one("crates/harness/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, WALL_CLOCK_IN_SIM);
    }

    #[test]
    fn wall_clock_fine_in_live_and_bench() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }";
        assert!(run_one("crates/peerhood/src/live/net.rs", src).is_empty());
        assert!(run_one("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn instant_in_test_code_is_exempt() {
        let src = "#[test]\nfn t() { let _ = std::time::Instant::now(); }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    // ---- rule 3 ----------------------------------------------------

    #[test]
    fn unwrap_in_dispatch_file_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = run_one("crates/core/src/server.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, PANIC_IN_DISPATCH);
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn expect_panic_macro_and_indexing_are_flagged() {
        let src = "fn f(v: &[u32], x: Option<u32>) -> u32 {\n\
                   let a = x.expect(\"boom\");\n\
                   if a > 9 { panic!(\"no\"); }\n\
                   v[0]\n}";
        let f = run_one("crates/peerhood/src/daemon.rs", src);
        let rules: Vec<_> = f.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(
            rules,
            vec![
                (PANIC_IN_DISPATCH, 2),
                (PANIC_IN_DISPATCH, 3),
                (PANIC_IN_DISPATCH, 4)
            ]
        );
    }

    #[test]
    fn unwrap_in_dispatch_tests_is_exempt() {
        let src = "fn ok() -> u32 { 1 }\n\
                   #[cfg(test)] mod tests { #[test] fn t() { Some(1).unwrap(); } }";
        assert!(run_one("crates/core/src/server.rs", src).is_empty());
    }

    #[test]
    fn unwrap_outside_dispatch_files_is_not_this_rules_business() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run_one("crates/core/src/store.rs", src).is_empty());
    }

    #[test]
    fn attributes_array_types_and_macros_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\n\
                   fn f() -> Vec<u8> { vec![1, 2] }";
        assert!(run_one("crates/core/src/server.rs", src).is_empty());
    }

    // ---- rule 4 ----------------------------------------------------

    #[test]
    fn thread_spawn_flagged_outside_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let f = run_one("crates/harness/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RAW_THREAD_SPAWN);
        // …and scope spawns too (the scope itself plus the `.spawn`):
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert_eq!(run_one("crates/core/src/x.rs", src).len(), 2);
    }

    #[test]
    fn thread_scope_flagged_even_when_spawns_hide_in_a_helper() {
        // A scope handed to a helper spawns threads without any visible
        // `.spawn` at the call site — the scope alone must trip the rule.
        let src = "fn f() { std::thread::scope(|s| fan_out(s)); }";
        let f = run_one("crates/peerhood/src/sim.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RAW_THREAD_SPAWN);
    }

    #[test]
    fn par_module_may_spawn() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert!(run_one("crates/netsim/src/par.rs", src).is_empty());
    }

    #[test]
    fn live_path_may_spawn() {
        let src = "fn f() { std::thread::Builder::new().spawn(|| {}); }";
        assert!(run_one("crates/peerhood/src/live/reactor.rs", src).is_empty());
        assert!(run_one("crates/harness/src/live.rs", src).is_empty());
        // Other peerhood modules stay covered.
        assert_eq!(run_one("crates/peerhood/src/daemon.rs", src).len(), 1);
    }

    // ---- rule 5 ----------------------------------------------------

    #[test]
    fn relaxed_ordering_flagged_in_production_code() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }";
        let f = run_one("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RELAXED_ORDERING);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn seqcst_and_test_relaxed_are_clean() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::SeqCst); }\n\
                   #[cfg(test)] mod tests { use super::*;\n\
                   fn g(a: &AtomicU64) { a.load(Ordering::Relaxed); } }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    // ---- rule 6 ----------------------------------------------------

    fn proto_src(extra_variant: bool) -> String {
        let mut enum_body = String::from("A,\nB { x: u32 },\n");
        if extra_variant {
            enum_body.push_str("C,\n");
        }
        format!(
            "pub enum Request {{ {enum_body} }}\n\
             pub enum Response {{ Ok, Err {{ msg: String }}, }}\n\
             impl Request {{\n\
               fn encode(&self) {{ match self {{ Request::A => {{}}, Request::B {{ .. }} => {{}}, {} }} }}\n\
               fn decode() -> Request {{ if true {{ Request::A }} else {{ Request::B {{ x: 1 }} }} }}\n\
             }}\n\
             impl Response {{\n\
               fn encode(&self) {{ match self {{ Response::Ok => {{}}, Response::Err {{ .. }} => {{}}, }} }}\n\
               fn decode() -> Response {{ if true {{ Response::Ok }} else {{ Response::Err {{ msg: String::new() }} }} }}\n\
             }}\n\
             #[cfg(test)] mod tests {{\n\
               fn fixtures() {{ let _ = (Request::A, Request::B {{ x: 1 }}, Response::Ok, Response::Err {{ msg: String::new() }}); }}\n\
             }}\n",
            if extra_variant { "Request::C => {}," } else { "" }
        )
    }

    fn server_src() -> &'static str {
        "fn dispatch(r: &Request) -> Response {\n\
           match r { Request::A => Response::Ok,\n\
                     Request::B { .. } => Response::Err { msg: String::new() } }\n\
         }"
    }

    #[test]
    fn covered_variants_pass() {
        let files = [
            file("crates/core/src/protocol.rs", &proto_src(false)),
            file("crates/core/src/server.rs", server_src()),
        ];
        let f: Vec<_> = run_all(&files)
            .into_iter()
            .filter(|f| f.rule == WIRE_EXHAUSTIVENESS)
            .collect();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn uncovered_variant_reports_each_missing_leg() {
        // `Request::C` has an encode arm only: missing half the Wire
        // coverage, the dispatch arm, and the round-trip fixture.
        let files = [
            file("crates/core/src/protocol.rs", &proto_src(true)),
            file("crates/core/src/server.rs", server_src()),
        ];
        let f: Vec<_> = run_all(&files)
            .into_iter()
            .filter(|f| f.rule == WIRE_EXHAUSTIVENESS)
            .collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Request::C"));
        assert!(f[0].message.contains("Wire encode/decode"));
        assert!(f[0].message.contains("dispatch"));
        assert!(f[0].message.contains("round-trip"));
    }
}
