//! The rule engine: nine invariants clippy cannot express.
//!
//! Rules come in three shapes: per-file token walks (rules 1–5), one
//! cross-file consistency check (rule 6), and call-graph rules (rules 7–9)
//! that consume the [`crate::parse`] item tree and [`crate::graph`]
//! reachability. Scoping conventions shared by all of them:
//!
//! * whole-file test code (`tests/`, `benches/` directories) is exempt;
//! * token-level test code (`#[cfg(test)]` modules, `#[test]` fns — see
//!   [`crate::lexer::test_mask`]) is exempt;
//! * everything else is production code and is linted.
//!
//! The rules are heuristic by design: they re-derive just enough typing
//! from declaration syntax (`name: HashMap<…>`, a struct field typed
//! `EpochView`) to anchor their checks, trading full type inference for a
//! zero-dependency pass that runs in milliseconds. Every heuristic is
//! documented at its rule, and misses fail *safe* for the repo's claims:
//! a rule that cannot prove a site is hash iteration stays silent, while
//! the runtime digest checks in `ci.sh` remain the backstop. The
//! call-graph rules lean the other way — name resolution over-approximates
//! (see `graph.rs`), so they may flag a hair too much, and `lint.allow`
//! records why each intentional site is fine.

use crate::graph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::parse::{parse_items, struct_fields, walk_items, Item, ItemKind};

/// Rule 1: iteration over `HashMap`/`HashSet` in digest-affecting crates.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// Rule 2: `unwrap`/`expect`/`panic!`/indexing in dispatch paths.
pub const PANIC_IN_DISPATCH: &str = "panic-in-dispatch";
/// Rule 3: `thread::spawn` outside `netsim::par`.
pub const RAW_THREAD_SPAWN: &str = "raw-thread-spawn";
/// Rule 4: `Ordering::Relaxed` outside allowlisted counter sites.
pub const RELAXED_ORDERING: &str = "relaxed-ordering";
/// Rule 5: every protocol variant has Wire, dispatch and round-trip arms.
pub const WIRE_EXHAUSTIVENESS: &str = "wire-exhaustiveness";
/// Rule 6: nondeterministic inputs reachable from the trace-digest roots.
pub const DIGEST_TAINT: &str = "digest-taint";
/// Rule 7: epoch workers may only write through their outbox.
pub const EPOCH_FROZEN_MUTATION: &str = "epoch-frozen-mutation";
/// Rule 8: outbox stat deltas commit with add/merge ops only.
pub const OUTBOX_COMMUTATIVITY: &str = "outbox-commutativity";
/// Rule 9: wire-decoded lengths must be clamped before driving allocation.
pub const UNBOUNDED_DECODE_ALLOCATION: &str = "unbounded-decode-allocation";

/// All rule names, for `--help` and the JSON report.
pub const ALL_RULES: [&str; 9] = [
    NONDETERMINISTIC_ITERATION,
    PANIC_IN_DISPATCH,
    RAW_THREAD_SPAWN,
    RELAXED_ORDERING,
    WIRE_EXHAUSTIVENESS,
    DIGEST_TAINT,
    EPOCH_FROZEN_MUTATION,
    OUTBOX_COMMUTATIVITY,
    UNBOUNDED_DECODE_ALLOCATION,
];

/// One entry of the `--explain` rule catalog.
pub struct RuleDoc {
    /// Rule name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the invariant matters for this repo's claims.
    pub why: &'static str,
    /// A minimal violating exemplar.
    pub bad: &'static str,
    /// The sanctioned fix.
    pub good: &'static str,
}

/// The `--explain` catalog, one entry per rule in [`ALL_RULES`] order.
pub const RULE_DOCS: [RuleDoc; 9] = [
    RuleDoc {
        name: NONDETERMINISTIC_ITERATION,
        summary: "iteration over HashMap/HashSet in digest-affecting crates",
        why: "The crowd/scenario digests must be bit-identical across runs and thread counts; hash iteration order varies per process, so any order-observing loop in netsim/peerhood/core can leak into the digest.",
        bad: "for (id, node) in self.nodes_by_id.iter() { step(node); }",
        good: "Use BTreeMap/Vec, or sort the drained keys before iterating (and document order-insensitivity in lint.allow if provably unobservable).",
    },
    RuleDoc {
        name: PANIC_IN_DISPATCH,
        summary: "unwrap/expect/panic!/indexing in the dispatch files",
        why: "The server dispatch and daemon state machine process hostile live-TCP input; a reachable panic is a remote crash. Dispatch paths return CommunityError instead.",
        bad: "let user = req.user.unwrap();",
        good: "let Some(user) = req.user else { return Err(CommunityError::BadRequest) };",
    },
    RuleDoc {
        name: RAW_THREAD_SPAWN,
        summary: "thread::spawn / thread::scope outside netsim::par",
        why: "Determinism under --threads N holds because all parallelism goes through the fork/join helpers in netsim::par with spawn-order joins; ad-hoc threads reintroduce scheduling nondeterminism.",
        bad: "std::thread::spawn(move || worker(rx));",
        good: "netsim::par::map_chunks_mut_with(…) — or the live/ reactor paths, which are exempt by design.",
    },
    RuleDoc {
        name: RELAXED_ORDERING,
        summary: "Ordering::Relaxed outside allowlisted counter sites",
        why: "Relaxed provides no synchronization; it is only sound for pure statistics counters that publish no other memory. Every such counter is individually allowlisted with a reason.",
        bad: "READY.store(true, Ordering::Relaxed); // guards data!",
        good: "Use Release/Acquire pairs for publication; allowlist pure counters.",
    },
    RuleDoc {
        name: WIRE_EXHAUSTIVENESS,
        summary: "every Request/Response variant has codec, dispatch and round-trip coverage",
        why: "A protocol variant without an encode/decode arm, a server dispatch arm and a round-trip fixture is a silent wire break waiting for the first real client to hit it.",
        bad: "enum Request { …, NewThing } // only the enum grew",
        good: "Add the Wire arms in protocol.rs, the dispatch arm in server.rs, and a round-trip fixture in the protocol tests.",
    },
    RuleDoc {
        name: DIGEST_TAINT,
        summary: "wall-clock, core-count, thread-id or pointer-bit reads reachable from the digest roots",
        why: "The FNV trace digest must be bit-identical for any --threads N and any host. Any fn reachable from Cluster::run_until/dispatch that reads Instant/SystemTime, available_parallelism, thread::current or casts pointers to integers can fork the digest. Call-graph reachability replaces the old per-callsite wall-clock-in-sim heuristic: bench and live/ paths stay exempt, and unreachable helpers are no longer flagged.",
        bad: "fn run_epoch(&mut self) { let t = Instant::now(); … }",
        good: "Use SimTime for simulated quantities; keep self-profiling behind collect_timing and allowlist it with a reason (metadata only, never digest input).",
    },
    RuleDoc {
        name: EPOCH_FROZEN_MUTATION,
        summary: "epoch workers writing shared engine state instead of their outbox",
        why: "During a parallel epoch every worker sees the same frozen engine state (the EpochView and shared & refs); writes must buffer in the per-worker EpochOutbox and merge deterministically at commit. A direct mutation of frozen state races and breaks digest equality between serial and parallel runs.",
        bad: "self.trace.record(ev); // inside an EpochWorker method",
        good: "self.out.records.push(ev); // commit merges outboxes in lane order",
    },
    RuleDoc {
        name: OUTBOX_COMMUTATIVITY,
        summary: "outbox stat deltas assigned or max-combined instead of added",
        why: "Per-worker stat deltas merge at commit in lane order; only commutative, associative ops (+=) make the merged total independent of worker count. Assignment or max-overwrite makes stats depend on which worker committed last, silently forking serial-vs-parallel reports.",
        bad: "self.messages = other.messages.max(self.messages);",
        good: "self.messages += other.messages;",
    },
    RuleDoc {
        name: UNBOUNDED_DECODE_ALLOCATION,
        summary: "wire-decoded lengths driving allocation without a clamp",
        why: "The live reactor and the codec accept untrusted bytes. A 4-byte length header claiming 4 GiB must not size an allocation or buffer: clamp against the remaining input (codec read_len) or a protocol maximum (MAX_FRAME_LEN) before any with_capacity/reserve/slice use.",
        bad: "let len = u32::from_be_bytes(hdr) as usize; let mut v = Vec::with_capacity(len);",
        good: "let len = …; if len > MAX_FRAME_LEN { return Err(FrameError::Oversized); }",
    },
];

/// The catalog entry for `name`, if it is a known rule.
#[must_use]
pub fn rule_doc(name: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.name == name)
}

/// One lexed file ready for linting.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Token stream from [`crate::lexer::lex`].
    pub toks: Vec<Tok>,
    /// Per-token test-code mask from [`crate::lexer::test_mask`].
    pub test_mask: Vec<bool>,
    /// Source lines (for snippets).
    pub lines: Vec<String>,
    /// Brace-matched item tree from [`crate::parse::parse_items`].
    pub items: Vec<Item>,
}

impl SourceFile {
    /// Builds a `SourceFile` from source text.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::lexer::LexError`] from the lexer.
    pub fn parse(path: impl Into<String>, src: &str) -> Result<Self, crate::lexer::LexError> {
        let toks = crate::lexer::lex(src)?;
        let test_mask = crate::lexer::test_mask(&toks);
        let items = parse_items(&toks);
        Ok(SourceFile {
            path: path.into(),
            toks,
            test_mask,
            lines: src.lines().map(str::to_owned).collect(),
            items,
        })
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }

    /// The crate directory name (`netsim` for `crates/netsim/src/…`), or a
    /// pseudo-crate for root `src/`, `examples/`, workspace `tests/`.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or(""),
            Some("examples") => "examples",
            Some("tests") => "workspace-tests",
            _ => "root",
        }
    }

    /// Whole-file test or bench code (integration tests, benches).
    pub fn is_test_file(&self) -> bool {
        self.path
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches")
    }
}

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed source line.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Runs every rule over the file set and returns findings sorted by
/// `(path, line, rule)` — the lint's own output must be deterministic.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !f.is_test_file() {
            nondeterministic_iteration(f, &mut findings);
            panic_in_dispatch(f, &mut findings);
            raw_thread_spawn(f, &mut findings);
            relaxed_ordering(f, &mut findings);
            epoch_frozen_mutation(f, &mut findings);
            unbounded_decode_allocation(f, &mut findings);
        }
    }
    wire_exhaustiveness(files, &mut findings);
    outbox_commutativity(files, &mut findings);
    let graph = CallGraph::build(files);
    digest_taint(files, &graph, &mut findings);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

// ---------------------------------------------------------------------
// Rule 1: nondeterministic-iteration
// ---------------------------------------------------------------------

/// Crates whose state feeds the crowd/scenario trace digests.
const DIGEST_CRATES: [&str; 3] = ["netsim", "peerhood", "core"];

/// Methods whose call on a hash container observes its iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Collects identifiers declared in this file with a `HashMap`/`HashSet`
/// type: struct fields and `let`/param declarations (`name: HashMap<…>`,
/// possibly through `&`, `&mut`, lifetimes), plus `let name = HashMap::…`
/// initializations. Purely syntactic — no cross-file type inference — but
/// that is exactly where hash containers enter a file: its own fields and
/// locals.
fn hash_container_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if !(is_ident(t, "HashMap") || is_ident(t, "HashSet")) {
            continue;
        }
        let mut j = k;
        // Step back over a `std :: collections ::` path prefix.
        while j >= 3
            && is_punct(&toks[j - 1], ":")
            && is_punct(&toks[j - 2], ":")
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        // Step back over type-reference noise: `&`, `mut`, lifetimes.
        while j >= 1
            && (is_punct(&toks[j - 1], "&")
                || is_ident(&toks[j - 1], "mut")
                || toks[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && toks[j - 2].kind == TokKind::Ident {
            // `name : HashMap<…>` — but not `path :: HashMap`.
            let decl_colon = is_punct(&toks[j - 1], ":")
                && !(j >= 3 && is_punct(&toks[j - 3], ":"))
                && !(j + 1 < toks.len() && is_punct(&toks[j], ":") && is_punct(&toks[j + 1], ":"));
            // `let name = HashMap::new()` / `let mut name = …`.
            let init_eq = is_punct(&toks[j - 1], "=");
            if decl_colon || init_eq {
                let name = toks[j - 2].text.clone();
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

fn nondeterministic_iteration(f: &SourceFile, out: &mut Vec<Finding>) {
    if !DIGEST_CRATES.contains(&f.crate_name()) {
        return;
    }
    let names = hash_container_names(&f.toks);
    if names.is_empty() {
        return;
    }
    let toks = &f.toks;
    // Method-call form: `container.keys()`, `container.drain()`, …
    for i in 1..toks.len().saturating_sub(2) {
        if f.test_mask[i] {
            continue;
        }
        if is_punct(&toks[i], ".")
            && toks[i + 1].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 1].text.as_str())
            && is_punct(&toks[i + 2], "(")
            && toks[i - 1].kind == TokKind::Ident
            && names.contains(&toks[i - 1].text)
        {
            out.push(Finding {
                rule: NONDETERMINISTIC_ITERATION,
                path: f.path.clone(),
                line: toks[i + 1].line,
                snippet: f.snippet(toks[i + 1].line),
                message: format!(
                    "iteration order of `{}.{}()` is nondeterministic ({} is a hash container in a digest-affecting crate)",
                    toks[i - 1].text, toks[i + 1].text, toks[i - 1].text
                ),
            });
        }
    }
    // For-loop form: `for x in &container { … }`.
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i], "for") || f.test_mask[i] {
            i += 1;
            continue;
        }
        // Find `in` at bracket depth 0 before the body `{`.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_pos = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
            } else if is_ident(t, "in") && depth == 0 {
                in_pos = Some(j);
                break;
            }
            j += 1;
        }
        let Some(in_pos) = in_pos else {
            i += 1; // `impl Trait for Type`, `for<'a>` — no loop here
            continue;
        };
        // Expression tokens between `in` and the body `{`.
        let mut k = in_pos + 1;
        depth = 0;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident
                && names.contains(&t.text)
                // A following `.` means a method call decides the story
                // (and the method-call form above already judged it).
                && !(k + 1 < toks.len() && is_punct(&toks[k + 1], "."))
            {
                out.push(Finding {
                    rule: NONDETERMINISTIC_ITERATION,
                    path: f.path.clone(),
                    line: t.line,
                    snippet: f.snippet(t.line),
                    message: format!(
                        "`for … in {}` iterates a hash container in nondeterministic order",
                        t.text
                    ),
                });
            }
            k += 1;
        }
        i = k.max(i + 1);
    }
}

// ---------------------------------------------------------------------
// Rule 2: panic-in-dispatch
// ---------------------------------------------------------------------

/// Files whose non-test code must never panic: the Table-6 server dispatch
/// and the PeerHood daemon state machine (`lint.allow` documents why each
/// remaining site, if any, is safe).
const DISPATCH_FILES: [&str; 4] = [
    "crates/core/src/server.rs",
    "crates/peerhood/src/daemon.rs",
    "crates/peerhood/src/service.rs",
    "crates/peerhood/src/neighbor.rs",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn panic_in_dispatch(f: &SourceFile, out: &mut Vec<Finding>) {
    if !DISPATCH_FILES.contains(&f.path.as_str()) {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if is_punct(t, ".")
            && toks
                .get(i + 1)
                .is_some_and(|n| is_ident(n, "unwrap") || is_ident(n, "expect"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, "("))
        {
            let method = &toks[i + 1];
            out.push(Finding {
                rule: PANIC_IN_DISPATCH,
                path: f.path.clone(),
                line: method.line,
                snippet: f.snippet(method.line),
                message: format!(
                    "`.{}()` can panic; dispatch paths must return CommunityError",
                    method.text
                ),
            });
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "!"))
        {
            out.push(Finding {
                rule: PANIC_IN_DISPATCH,
                path: f.path.clone(),
                line: t.line,
                snippet: f.snippet(t.line),
                message: format!(
                    "`{}!` panics; dispatch paths must return CommunityError",
                    t.text
                ),
            });
        }
        // Slice/array indexing `expr[…]`: an out-of-range index panics.
        // The previous token being an identifier or a closing bracket marks
        // expression position (types `[u8; 4]`, attributes `#[…]` and
        // macros `vec![…]` all have a non-expression token before `[`).
        if is_punct(t, "[")
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || is_punct(&toks[i - 1], ")")
                || is_punct(&toks[i - 1], "]"))
        {
            out.push(Finding {
                rule: PANIC_IN_DISPATCH,
                path: f.path.clone(),
                line: t.line,
                snippet: f.snippet(t.line),
                message:
                    "indexing can panic; dispatch paths must bounds-check and return CommunityError"
                        .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: raw-thread-spawn
// ---------------------------------------------------------------------

/// The one simulation module allowed to create threads: the fork/join
/// helpers whose spawn-order joins keep the parallel engine deterministic.
const PAR_MODULE: &str = "crates/netsim/src/par.rs";

fn raw_thread_spawn(f: &SourceFile, out: &mut Vec<Finding>) {
    // The live serving path (reactor shards, load-harness workers) runs real
    // OS threads by design — it never feeds the simulation digest, mirroring
    // the wall-clock-in-sim exemption.
    if f.path == PAR_MODULE || f.path.contains("live/") || f.path.ends_with("/live.rs") {
        return;
    }
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.test_mask[i] {
            continue;
        }
        // `thread::spawn` and `thread::scope` both count: a scope is a
        // thread factory even when the `.spawn` calls hide inside a helper
        // that borrows the scope, so epoch/outbox workers must go through
        // the `netsim::par` fork/join helpers instead.
        let path_spawn = is_ident(&toks[i], "thread")
            && i + 3 < toks.len()
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && (is_ident(&toks[i + 3], "spawn") || is_ident(&toks[i + 3], "scope"));
        let method_spawn = is_punct(&toks[i], ".")
            && toks.get(i + 1).is_some_and(|n| is_ident(n, "spawn"))
            && toks.get(i + 2).is_some_and(|n| is_punct(n, "("));
        if path_spawn || method_spawn {
            out.push(Finding {
                rule: RAW_THREAD_SPAWN,
                path: f.path.clone(),
                line: toks[i].line,
                snippet: f.snippet(toks[i].line),
                message: "thread creation outside netsim::par breaks the deterministic fork/join discipline"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: relaxed-ordering
// ---------------------------------------------------------------------

fn relaxed_ordering(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.test_mask[i] {
            continue;
        }
        if is_ident(&toks[i], "Ordering")
            && i + 3 < toks.len()
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && is_ident(&toks[i + 3], "Relaxed")
        {
            out.push(Finding {
                rule: RELAXED_ORDERING,
                path: f.path.clone(),
                line: toks[i + 3].line,
                snippet: f.snippet(toks[i + 3].line),
                message: "`Ordering::Relaxed` provides no synchronization; allowlist pure counters, use stronger orderings elsewhere"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 6: wire-exhaustiveness
// ---------------------------------------------------------------------

const PROTOCOL_FILE: &str = "crates/core/src/protocol.rs";
const SERVER_FILE: &str = "crates/core/src/server.rs";

/// Extracts the variant names of `enum <name>` from a token stream.
fn enum_variants(toks: &[Tok], name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if is_ident(&toks[i], "enum") && is_ident(&toks[i + 1], name) && is_punct(&toks[i + 2], "{")
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut expect_variant = true;
            while j < toks.len() {
                let t = &toks[j];
                // Variant attributes `#[…]` are transparent: skip them
                // without disturbing the expect-a-variant state.
                if depth == 1
                    && is_punct(t, "#")
                    && toks.get(j + 1).is_some_and(|n| is_punct(n, "["))
                {
                    let mut attr_depth = 0i32;
                    while j < toks.len() {
                        if is_punct(&toks[j], "[") {
                            attr_depth += 1;
                        } else if is_punct(&toks[j], "]") {
                            attr_depth -= 1;
                            if attr_depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    j += 1;
                    continue;
                }
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" | "(" | "[" => {
                            depth += 1;
                            // Entering a payload: the next variant comes
                            // after the matching close and a comma.
                            if depth > 1 {
                                expect_variant = false;
                            }
                        }
                        "}" | ")" | "]" => {
                            depth -= 1;
                            if depth == 0 {
                                return variants;
                            }
                        }
                        "," if depth == 1 => expect_variant = true,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident && depth == 1 && expect_variant {
                    variants.push((t.text.clone(), t.line));
                    expect_variant = false;
                }
                j += 1;
            }
            return variants;
        }
        i += 1;
    }
    variants
}

/// Counts `Enum::Variant` path references, restricted to test or non-test
/// tokens.
fn count_refs(f: &SourceFile, enum_name: &str, variant: &str, in_tests: bool) -> usize {
    let toks = &f.toks;
    let mut n = 0;
    for i in 0..toks.len().saturating_sub(3) {
        if f.test_mask[i] != in_tests {
            continue;
        }
        if is_ident(&toks[i], enum_name)
            && is_punct(&toks[i + 1], ":")
            && is_punct(&toks[i + 2], ":")
            && is_ident(&toks[i + 3], variant)
        {
            n += 1;
        }
    }
    n
}

fn wire_exhaustiveness(files: &[SourceFile], out: &mut Vec<Finding>) {
    let Some(protocol) = files.iter().find(|f| f.path == PROTOCOL_FILE) else {
        return; // partial lint (explicit file list) — nothing to check
    };
    let Some(server) = files.iter().find(|f| f.path == SERVER_FILE) else {
        return;
    };
    for enum_name in ["Request", "Response"] {
        let variants = enum_variants(&protocol.toks, enum_name);
        if variants.is_empty() {
            out.push(Finding {
                rule: WIRE_EXHAUSTIVENESS,
                path: protocol.path.clone(),
                line: 1,
                snippet: String::new(),
                message: format!("could not locate `enum {enum_name}` in the protocol module"),
            });
            continue;
        }
        for (variant, line) in variants {
            let mut missing = Vec::new();
            // Encode + decode arms both spell `Enum::Variant` in the Wire
            // impls, so full codec coverage means at least two non-test
            // references in protocol.rs.
            if count_refs(protocol, enum_name, &variant, false) < 2 {
                missing.push("a Wire encode/decode arm");
            }
            if count_refs(server, enum_name, &variant, false) < 1 {
                missing.push("a server dispatch arm");
            }
            if count_refs(protocol, enum_name, &variant, true) < 1 {
                missing.push("a round-trip test fixture");
            }
            if !missing.is_empty() {
                out.push(Finding {
                    rule: WIRE_EXHAUSTIVENESS,
                    path: protocol.path.clone(),
                    line,
                    snippet: protocol.snippet(line),
                    message: format!(
                        "`{}::{}` is missing {}",
                        enum_name,
                        variant,
                        missing.join(" and ")
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 6: digest-taint
// ---------------------------------------------------------------------

/// The fns whose transitive callees feed the FNV trace digest. Everything
/// reachable from these — and nothing else — is digest-sensitive.
const DIGEST_ROOTS: [(&str, &str); 2] = [
    ("crates/peerhood/src/sim.rs", "Cluster::run_until"),
    ("crates/peerhood/src/sim.rs", "Cluster::run_until_condition"),
];

fn digest_taint(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    let mut roots = Vec::new();
    for (path, qname) in DIGEST_ROOTS {
        roots.extend(graph.find(path, qname));
    }
    if roots.is_empty() {
        return; // partial lint: the digest roots are not in the file set
    }
    let reach = graph.reachable_from(&roots);
    for (id, via) in reach.iter().enumerate() {
        let Some(via) = *via else { continue };
        let node = &graph.fns[id];
        let f = &files[node.file];
        // Only the digest-affecting crates can actually feed the digest;
        // method-name resolution over-approximates (see graph.rs), so
        // without this filter a harness timer whose method shares a name
        // with a sim callee would be flagged. The live serving path and
        // the bench timer are wall-clock by nature on top of that.
        if !DIGEST_CRATES.contains(&f.crate_name())
            || f.path.contains("live/")
            || f.path.ends_with("/live.rs")
        {
            continue;
        }
        let Some((open, close)) = node.body else {
            continue;
        };
        let root = &graph.fns[via].qname;
        let toks = &f.toks;
        for i in open..=close.min(toks.len() - 1) {
            if f.test_mask[i] {
                continue;
            }
            let path2 = |a: &str, b: &str| {
                is_ident(&toks[i], a)
                    && toks.get(i + 1).is_some_and(|t| is_punct(t, ":"))
                    && toks.get(i + 2).is_some_and(|t| is_punct(t, ":"))
                    && toks.get(i + 3).is_some_and(|t| is_ident(t, b))
            };
            let what = if path2("Instant", "now") {
                Some("`Instant::now` reads the wall clock".to_owned())
            } else if is_ident(&toks[i], "SystemTime") {
                Some("`SystemTime` reads the wall clock".to_owned())
            } else if is_ident(&toks[i], "available_parallelism") {
                Some("`available_parallelism` depends on the host core count".to_owned())
            } else if path2("thread", "current") {
                Some("`thread::current` exposes a nondeterministic thread id".to_owned())
            } else if (is_ident(&toks[i], "as_ptr") || is_ident(&toks[i], "as_mut_ptr"))
                && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
                && toks.get(i + 2).is_some_and(|t| is_punct(t, ")"))
                && toks.get(i + 3).is_some_and(|t| is_ident(t, "as"))
            {
                Some(format!(
                    "`{}() as` casts a nondeterministic address to an integer",
                    toks[i].text
                ))
            } else {
                None
            };
            if let Some(what) = what {
                out.push(Finding {
                    rule: DIGEST_TAINT,
                    path: f.path.clone(),
                    line: toks[i].line,
                    snippet: f.snippet(toks[i].line),
                    message: format!(
                        "{what} inside `{}`, reachable from digest root `{root}`",
                        node.qname
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 7: epoch-frozen-mutation
// ---------------------------------------------------------------------

/// Methods that mutate their receiver: calling one on frozen epoch state
/// is a write outside the outbox. `set_*`/`*_mut` names count too.
const MUTATOR_METHODS: [&str; 24] = [
    "insert",
    "remove",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "clear",
    "retain",
    "drain",
    "extend",
    "extend_from_slice",
    "truncate",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "swap",
    "replace",
    "take",
    "append",
    "record",
    "write",
];

fn is_mutator(name: &str) -> bool {
    MUTATOR_METHODS.contains(&name) || name.starts_with("set_") || name.ends_with("_mut")
}

/// An *epoch worker* is any struct with an `EpochView`-typed field; its
/// frozen state is that view plus every shared (`&` without `mut`)
/// reference field. Worker methods may read those freely but must route
/// every write through the worker's own outbox — the commit loop is the
/// only place frozen state thaws. Detection is per-file: the workers and
/// their impl blocks live together in `peerhood::sim` (and in fixtures).
fn epoch_frozen_mutation(f: &SourceFile, out: &mut Vec<Finding>) {
    let mut workers: Vec<(String, Vec<String>)> = Vec::new();
    walk_items(&f.items, &mut |it| {
        if !matches!(it.kind, ItemKind::Struct) {
            return;
        }
        let fields = struct_fields(&f.toks, it);
        if !fields
            .iter()
            .any(|(_, ty)| ty.iter().any(|t| t == "EpochView"))
        {
            return;
        }
        let frozen: Vec<String> = fields
            .iter()
            .filter(|(_, ty)| {
                ty.iter().any(|t| t == "EpochView")
                    || (ty.first().is_some_and(|t| t == "&") && !ty.iter().any(|t| t == "mut"))
            })
            .map(|(n, _)| n.clone())
            .collect();
        workers.push((it.name.clone(), frozen));
    });
    if workers.is_empty() {
        return;
    }
    walk_items(&f.items, &mut |it| {
        if !matches!(it.kind, ItemKind::Impl { .. }) {
            return;
        }
        let Some((_, frozen)) = workers.iter().find(|(n, _)| *n == it.name) else {
            return;
        };
        for m in &it.children {
            if !matches!(m.kind, ItemKind::Fn) || f.test_mask[m.span.0] {
                continue;
            }
            let Some((open, close)) = m.body else {
                continue;
            };
            scan_frozen_mutations(f, frozen, open, close, out);
        }
    });
}

fn scan_frozen_mutations(
    f: &SourceFile,
    frozen: &[String],
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &f.toks;
    let mut i = open;
    while i <= close.min(toks.len().saturating_sub(1)) {
        // `&mut self.field` — a mutable borrow of frozen state.
        if is_punct(&toks[i], "&")
            && toks.get(i + 1).is_some_and(|t| is_ident(t, "mut"))
            && toks.get(i + 2).is_some_and(|t| is_ident(t, "self"))
            && toks.get(i + 3).is_some_and(|t| is_punct(t, "."))
            && toks
                .get(i + 4)
                .is_some_and(|t| t.kind == TokKind::Ident && frozen.contains(&t.text))
        {
            let field = &toks[i + 4];
            out.push(Finding {
                rule: EPOCH_FROZEN_MUTATION,
                path: f.path.clone(),
                line: field.line,
                snippet: f.snippet(field.line),
                message: format!(
                    "`&mut self.{}` borrows frozen epoch state mutably; epoch handlers must write through the EpochOutbox",
                    field.text
                ),
            });
            i += 5;
            continue;
        }
        // `self.field…` place-expression chains: a mutator method call or
        // an assignment anywhere along the chain is a frozen-state write.
        if is_ident(&toks[i], "self")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "."))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && frozen.contains(&t.text))
        {
            let field = toks[i + 2].text.clone();
            let mut j = i + 2; // last chain ident
            let mut flagged = false;
            while toks.get(j + 1).is_some_and(|t| is_punct(t, "."))
                && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let m = &toks[j + 2];
                if toks.get(j + 3).is_some_and(|t| is_punct(t, "(")) {
                    if is_mutator(&m.text) {
                        out.push(Finding {
                            rule: EPOCH_FROZEN_MUTATION,
                            path: f.path.clone(),
                            line: m.line,
                            snippet: f.snippet(m.line),
                            message: format!(
                                "`self.{}…{}()` mutates frozen epoch state; buffer the effect in the EpochOutbox instead",
                                field, m.text
                            ),
                        });
                        flagged = true;
                    }
                    break; // a call ends the place-expression chain
                }
                j += 2;
            }
            if !flagged {
                let a = toks.get(j + 1);
                let b = toks.get(j + 2);
                let plain =
                    a.is_some_and(|t| is_punct(t, "=")) && !b.is_some_and(|t| is_punct(t, "="));
                let compound = a.is_some_and(|t| {
                    t.kind == TokKind::Punct
                        && ["+", "-", "*", "/", "%", "&", "|", "^"].contains(&t.text.as_str())
                }) && b.is_some_and(|t| is_punct(t, "="));
                if plain || compound {
                    let at = a.unwrap();
                    out.push(Finding {
                        rule: EPOCH_FROZEN_MUTATION,
                        path: f.path.clone(),
                        line: at.line,
                        snippet: f.snippet(at.line),
                        message: format!(
                            "assignment to frozen epoch state `self.{field}`; epoch handlers must write through the EpochOutbox"
                        ),
                    });
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Rule 8: outbox-commutativity
// ---------------------------------------------------------------------

/// Merge-style methods on the outbox stats type whose bodies must stay
/// delta-additive.
const MERGE_FNS: [&str; 4] = ["add", "merge", "absorb", "combine"];

/// Cross-file: locates `struct EpochOutbox`, learns the type of its
/// `stats` field, then enforces (a) in outbox-defining files, every
/// `stats`-rooted update is add-only — no plain assignment, no shrink
/// (`-=`, `*=`, `/=`), no whole-struct overwrite; (b) the stats type's
/// add/merge methods use `+=` only — no assignment, no `.max(…)`/`.min(…)`
/// combining, which is not delta-additive (a serial run accumulates into
/// one outbox, so max-of-deltas forks serial vs parallel totals).
fn outbox_commutativity(files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut outbox_files: Vec<usize> = Vec::new();
    let mut stats_types: Vec<String> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.is_test_file() {
            continue;
        }
        walk_items(&f.items, &mut |it| {
            if !(matches!(it.kind, ItemKind::Struct) && it.name == "EpochOutbox") {
                return;
            }
            outbox_files.push(fi);
            for (name, ty) in struct_fields(&f.toks, it) {
                if name == "stats" {
                    if let Some(t) = ty
                        .iter()
                        .find(|t| t.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
                    {
                        if !stats_types.contains(t) {
                            stats_types.push(t.clone());
                        }
                    }
                }
            }
        });
    }
    if outbox_files.is_empty() {
        return;
    }
    // (a) `stats`-rooted writes in the outbox-defining files.
    for &fi in &outbox_files {
        let f = &files[fi];
        let toks = &f.toks;
        for i in 0..toks.len() {
            if f.test_mask[i] || !is_ident(&toks[i], "stats") {
                continue;
            }
            if i > 0 && (is_ident(&toks[i - 1], "let") || is_ident(&toks[i - 1], "mut")) {
                continue; // local binding, not a write
            }
            if toks.get(i + 1).is_some_and(|t| is_punct(t, "="))
                && !toks.get(i + 2).is_some_and(|t| is_punct(t, "="))
            {
                out.push(Finding {
                    rule: OUTBOX_COMMUTATIVITY,
                    path: f.path.clone(),
                    line: toks[i].line,
                    snippet: f.snippet(toks[i].line),
                    message: "whole-struct overwrite of outbox stats; merge deltas with `.add(…)`"
                        .to_owned(),
                });
                continue;
            }
            if toks.get(i + 1).is_some_and(|t| is_punct(t, "."))
                && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let field = &toks[i + 2];
                let a = toks.get(i + 3);
                let b = toks.get(i + 4);
                let plain =
                    a.is_some_and(|t| is_punct(t, "=")) && !b.is_some_and(|t| is_punct(t, "="));
                let shrink = a.is_some_and(|t| {
                    t.kind == TokKind::Punct && ["-", "*", "/"].contains(&t.text.as_str())
                }) && b.is_some_and(|t| is_punct(t, "="));
                if plain || shrink {
                    out.push(Finding {
                        rule: OUTBOX_COMMUTATIVITY,
                        path: f.path.clone(),
                        line: field.line,
                        snippet: f.snippet(field.line),
                        message: format!(
                            "non-commutative update of `stats.{}`; outbox stat deltas must accumulate with `+=`",
                            field.text
                        ),
                    });
                }
            }
        }
    }
    // (b) merge methods on the stats type, wherever it is defined.
    for f in files {
        if f.is_test_file() {
            continue;
        }
        walk_items(&f.items, &mut |it| {
            if !matches!(it.kind, ItemKind::Impl { .. }) || !stats_types.contains(&it.name) {
                return;
            }
            for m in &it.children {
                if !matches!(m.kind, ItemKind::Fn)
                    || !MERGE_FNS.contains(&m.name.as_str())
                    || f.test_mask[m.span.0]
                {
                    continue;
                }
                let Some((open, close)) = m.body else {
                    continue;
                };
                let toks = &f.toks;
                for i in open..=close.min(toks.len() - 1) {
                    if is_ident(&toks[i], "self")
                        && toks.get(i + 1).is_some_and(|t| is_punct(t, "."))
                        && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                        && toks.get(i + 3).is_some_and(|t| is_punct(t, "="))
                        && !toks.get(i + 4).is_some_and(|t| is_punct(t, "="))
                    {
                        out.push(Finding {
                            rule: OUTBOX_COMMUTATIVITY,
                            path: f.path.clone(),
                            line: toks[i + 2].line,
                            snippet: f.snippet(toks[i + 2].line),
                            message: format!(
                                "assignment to `self.{}` in `{}::{}`; merged stat deltas must add",
                                toks[i + 2].text,
                                it.name,
                                m.name
                            ),
                        });
                    }
                    if (is_ident(&toks[i], "max") || is_ident(&toks[i], "min"))
                        && i > 0
                        && is_punct(&toks[i - 1], ".")
                        && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
                    {
                        out.push(Finding {
                            rule: OUTBOX_COMMUTATIVITY,
                            path: f.path.clone(),
                            line: toks[i].line,
                            snippet: f.snippet(toks[i].line),
                            message: format!(
                                "`.{}(…)` in `{}::{}` is not delta-additive; merged counters must use `+=`",
                                toks[i].text, it.name, m.name
                            ),
                        });
                    }
                }
            }
        });
    }
}

// ---------------------------------------------------------------------
// Rule 9: unbounded-decode-allocation
// ---------------------------------------------------------------------

/// Index of the close bracket matching the opener at `open_idx`, clamped
/// to `close` on unbalanced input.
fn match_close(toks: &[Tok], open_idx: usize, close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j <= close.min(toks.len().saturating_sub(1)) {
        if toks[j].kind == TokKind::Punct {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    close
}

/// Does this initializer expression derive from a wire-decoded integer
/// (`from_be_bytes`/`from_le_bytes`, `uN::decode`) with no sanitizer
/// (`read_len`, `.min`, `.clamp`) in the same expression?
fn rhs_is_decoded_len(rhs: &[Tok]) -> bool {
    let has_src = rhs.iter().enumerate().any(|(k, t)| {
        t.kind == TokKind::Ident
            && (t.text == "from_be_bytes"
                || t.text == "from_le_bytes"
                || (matches!(t.text.as_str(), "u16" | "u32" | "u64" | "usize")
                    && rhs.get(k + 1).is_some_and(|n| is_punct(n, ":"))
                    && rhs.get(k + 2).is_some_and(|n| is_punct(n, ":"))
                    && rhs.get(k + 3).is_some_and(|n| is_ident(n, "decode"))))
    });
    let sanitized = rhs.iter().any(|t| {
        t.kind == TokKind::Ident && matches!(t.text.as_str(), "read_len" | "min" | "clamp")
    });
    has_src && !sanitized
}

/// Is the tainted local `name` clamped or rejected anywhere in the fn?
/// A guard is: `.min(…)`/`.clamp(…)` on it, a comparison against a
/// `MAX`-named bound, or a comparison against remaining-buffer `.len()`
/// whose branch *rejects* (contains `Err`). A `len()` comparison that
/// merely waits for more bytes (`return None`) is NOT a guard — that is
/// exactly the hostile-header bug this rule exists to catch.
fn is_len_guarded(f: &SourceFile, name: &str, open: usize, close: usize) -> bool {
    let toks = &f.toks;
    let close = close.min(toks.len().saturating_sub(1));
    for i in open..=close {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == name) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| is_punct(t, "."))
            && toks
                .get(i + 2)
                .is_some_and(|t| is_ident(t, "min") || is_ident(t, "clamp"))
        {
            return true;
        }
        let cmp_near = toks
            .get(i + 1)
            .is_some_and(|t| is_punct(t, "<") || is_punct(t, ">"))
            || (i >= 1 && (is_punct(&toks[i - 1], "<") || is_punct(&toks[i - 1], ">")))
            || (i >= 2
                && is_punct(&toks[i - 1], "=")
                && (is_punct(&toks[i - 2], "<") || is_punct(&toks[i - 2], ">")));
        if !cmp_near {
            continue;
        }
        let wlo = i.saturating_sub(8).max(open);
        let whi = (i + 8).min(close);
        let window = &toks[wlo..=whi];
        if window.iter().any(|t| {
            t.kind == TokKind::Ident
                && t.text.contains("MAX")
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
        }) {
            return true;
        }
        let vs_len = window
            .windows(3)
            .any(|w| is_punct(&w[0], ".") && is_ident(&w[1], "len") && is_punct(&w[2], "("));
        if vs_len {
            let mut j = i;
            while j <= close && !is_punct(&toks[j], "{") {
                j += 1;
            }
            if j <= close {
                let end = match_close(toks, j, close);
                if toks[j..=end].iter().any(|t| is_ident(t, "Err")) {
                    return true;
                }
            }
        }
    }
    false
}

/// Untrusted-input crates only: the codec and the live frame paths. A
/// decoded length must be clamped before it sizes an allocation
/// (`with_capacity`, `reserve`, `vec![…; n]`) or a slice operation.
fn unbounded_decode_allocation(f: &SourceFile, out: &mut Vec<Finding>) {
    if !(f.crate_name() == "codec" || f.path.contains("live/") || f.path.ends_with("/live.rs")) {
        return;
    }
    let toks = &f.toks;
    walk_items(&f.items, &mut |it| {
        if !matches!(it.kind, ItemKind::Fn) || f.test_mask[it.span.0] {
            return;
        }
        let Some((open, close)) = it.body else {
            return;
        };
        let close = close.min(toks.len().saturating_sub(1));
        // Pass 1: locals initialized from wire-decoded integers.
        let mut tainted: Vec<String> = Vec::new();
        let mut i = open;
        while i <= close {
            if is_ident(&toks[i], "let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| is_ident(t, "mut")) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(j + 1).is_some_and(|t| is_punct(t, "="))
                {
                    let name = toks[j].text.clone();
                    let mut k = j + 2;
                    let mut depth = 0i32;
                    let rhs_start = k;
                    while k <= close {
                        if toks[k].kind == TokKind::Punct {
                            match toks[k].text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                ";" if depth == 0 => break,
                                _ => {}
                            }
                        }
                        k += 1;
                    }
                    if rhs_is_decoded_len(&toks[rhs_start..k.min(close + 1)])
                        && !tainted.contains(&name)
                    {
                        tainted.push(name);
                    }
                    i = k;
                    continue;
                }
            }
            i += 1;
        }
        tainted.retain(|name| !is_len_guarded(f, name, open, close));
        let is_tainted_expr = |args: &[Tok]| {
            args.iter()
                .any(|a| a.kind == TokKind::Ident && tainted.contains(&a.text))
                || rhs_is_decoded_len(args)
        };
        // Pass 2: allocation and slicing sinks.
        let mut i = open;
        while i <= close {
            let t = &toks[i];
            if (is_ident(t, "with_capacity") || is_ident(t, "reserve"))
                && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
            {
                let end = match_close(toks, i + 1, close);
                if is_tainted_expr(&toks[i + 2..end]) {
                    out.push(Finding {
                        rule: UNBOUNDED_DECODE_ALLOCATION,
                        path: f.path.clone(),
                        line: t.line,
                        snippet: f.snippet(t.line),
                        message: format!(
                            "`{}` sized by an unclamped wire-decoded length; clamp against the remaining input or a protocol MAX first",
                            t.text
                        ),
                    });
                }
                i = end;
                continue;
            }
            if is_ident(t, "vec")
                && toks.get(i + 1).is_some_and(|n| is_punct(n, "!"))
                && toks.get(i + 2).is_some_and(|n| is_punct(n, "["))
            {
                let end = match_close(toks, i + 2, close);
                if is_tainted_expr(&toks[i + 3..end]) {
                    out.push(Finding {
                        rule: UNBOUNDED_DECODE_ALLOCATION,
                        path: f.path.clone(),
                        line: t.line,
                        snippet: f.snippet(t.line),
                        message: "`vec![…]` sized by an unclamped wire-decoded length; clamp against the remaining input or a protocol MAX first"
                            .to_owned(),
                    });
                }
                i = end;
                continue;
            }
            // Slice/index expression driven by the tainted length.
            if is_punct(t, "[")
                && i > open
                && (toks[i - 1].kind == TokKind::Ident
                    || is_punct(&toks[i - 1], ")")
                    || is_punct(&toks[i - 1], "]"))
            {
                let end = match_close(toks, i, close);
                if toks[i + 1..end]
                    .iter()
                    .any(|a| a.kind == TokKind::Ident && tainted.contains(&a.text))
                {
                    out.push(Finding {
                        rule: UNBOUNDED_DECODE_ALLOCATION,
                        path: f.path.clone(),
                        line: t.line,
                        snippet: f.snippet(t.line),
                        message: "slice/index driven by an unclamped wire-decoded length; clamp or reject oversized claims first"
                            .to_owned(),
                    });
                }
                // fall through token-by-token: nested sinks may hide inside
            }
            i += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src).unwrap()
    }

    fn run_one(path: &str, src: &str) -> Vec<Finding> {
        run_all(&[file(path, src)])
    }

    // ---- rule 1 ----------------------------------------------------

    #[test]
    fn hashmap_iteration_in_digest_crate_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) { for v in self.m.values() { drop(v); } } }";
        let f = run_one("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NONDETERMINISTIC_ITERATION);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn for_in_ref_to_map_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m { drop(x); } }";
        let f = run_one("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, NONDETERMINISTIC_ITERATION);
    }

    #[test]
    fn let_init_without_type_annotation_is_tracked() {
        let src = "use std::collections::HashSet;\n\
                   fn f() { let mut s = HashSet::new(); s.insert(1); s.retain(|_| true); }";
        let f = run_one("crates/peerhood/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("retain"));
    }

    #[test]
    fn btreemap_iteration_and_lookup_are_clean() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   struct S { m: BTreeMap<u32, u32>, h: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) -> Option<&u32> { for v in self.m.values() {} self.h.get(&1) } }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_outside_digest_crates_is_clean() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) { for v in m.values() { drop(v); } }";
        assert!(run_one("crates/harness/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_in_tests_is_exempt() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)] mod tests { use super::*;\n\
                   fn f(m: &HashMap<u32, u32>) { for v in m.values() { drop(v); } } }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_string_literal_is_not_a_finding() {
        let src = "fn f() -> &'static str { \"for v in map.values() HashMap\" }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    // ---- rule 2 ----------------------------------------------------

    #[test]
    fn unwrap_in_dispatch_file_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = run_one("crates/core/src/server.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, PANIC_IN_DISPATCH);
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn expect_panic_macro_and_indexing_are_flagged() {
        let src = "fn f(v: &[u32], x: Option<u32>) -> u32 {\n\
                   let a = x.expect(\"boom\");\n\
                   if a > 9 { panic!(\"no\"); }\n\
                   v[0]\n}";
        let f = run_one("crates/peerhood/src/daemon.rs", src);
        let rules: Vec<_> = f.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(
            rules,
            vec![
                (PANIC_IN_DISPATCH, 2),
                (PANIC_IN_DISPATCH, 3),
                (PANIC_IN_DISPATCH, 4)
            ]
        );
    }

    #[test]
    fn unwrap_in_dispatch_tests_is_exempt() {
        let src = "fn ok() -> u32 { 1 }\n\
                   #[cfg(test)] mod tests { #[test] fn t() { Some(1).unwrap(); } }";
        assert!(run_one("crates/core/src/server.rs", src).is_empty());
    }

    #[test]
    fn unwrap_outside_dispatch_files_is_not_this_rules_business() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run_one("crates/core/src/store.rs", src).is_empty());
    }

    #[test]
    fn attributes_array_types_and_macros_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\n\
                   fn f() -> Vec<u8> { vec![1, 2] }";
        assert!(run_one("crates/core/src/server.rs", src).is_empty());
    }

    // ---- rule 4 ----------------------------------------------------

    #[test]
    fn thread_spawn_flagged_outside_par() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let f = run_one("crates/harness/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RAW_THREAD_SPAWN);
        // …and scope spawns too (the scope itself plus the `.spawn`):
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert_eq!(run_one("crates/core/src/x.rs", src).len(), 2);
    }

    #[test]
    fn thread_scope_flagged_even_when_spawns_hide_in_a_helper() {
        // A scope handed to a helper spawns threads without any visible
        // `.spawn` at the call site — the scope alone must trip the rule.
        let src = "fn f() { std::thread::scope(|s| fan_out(s)); }";
        let f = run_one("crates/peerhood/src/sim.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RAW_THREAD_SPAWN);
    }

    #[test]
    fn par_module_may_spawn() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert!(run_one("crates/netsim/src/par.rs", src).is_empty());
    }

    #[test]
    fn live_path_may_spawn() {
        let src = "fn f() { std::thread::Builder::new().spawn(|| {}); }";
        assert!(run_one("crates/peerhood/src/live/reactor.rs", src).is_empty());
        assert!(run_one("crates/harness/src/live.rs", src).is_empty());
        // Other peerhood modules stay covered.
        assert_eq!(run_one("crates/peerhood/src/daemon.rs", src).len(), 1);
    }

    // ---- rule 5 ----------------------------------------------------

    #[test]
    fn relaxed_ordering_flagged_in_production_code() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }";
        let f = run_one("crates/netsim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RELAXED_ORDERING);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn seqcst_and_test_relaxed_are_clean() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::SeqCst); }\n\
                   #[cfg(test)] mod tests { use super::*;\n\
                   fn g(a: &AtomicU64) { a.load(Ordering::Relaxed); } }";
        assert!(run_one("crates/netsim/src/x.rs", src).is_empty());
    }

    // ---- rule 6 ----------------------------------------------------

    fn proto_src(extra_variant: bool) -> String {
        let mut enum_body = String::from("A,\nB { x: u32 },\n");
        if extra_variant {
            enum_body.push_str("C,\n");
        }
        format!(
            "pub enum Request {{ {enum_body} }}\n\
             pub enum Response {{ Ok, Err {{ msg: String }}, }}\n\
             impl Request {{\n\
               fn encode(&self) {{ match self {{ Request::A => {{}}, Request::B {{ .. }} => {{}}, {} }} }}\n\
               fn decode() -> Request {{ if true {{ Request::A }} else {{ Request::B {{ x: 1 }} }} }}\n\
             }}\n\
             impl Response {{\n\
               fn encode(&self) {{ match self {{ Response::Ok => {{}}, Response::Err {{ .. }} => {{}}, }} }}\n\
               fn decode() -> Response {{ if true {{ Response::Ok }} else {{ Response::Err {{ msg: String::new() }} }} }}\n\
             }}\n\
             #[cfg(test)] mod tests {{\n\
               fn fixtures() {{ let _ = (Request::A, Request::B {{ x: 1 }}, Response::Ok, Response::Err {{ msg: String::new() }}); }}\n\
             }}\n",
            if extra_variant { "Request::C => {}," } else { "" }
        )
    }

    fn server_src() -> &'static str {
        "fn dispatch(r: &Request) -> Response {\n\
           match r { Request::A => Response::Ok,\n\
                     Request::B { .. } => Response::Err { msg: String::new() } }\n\
         }"
    }

    #[test]
    fn covered_variants_pass() {
        let files = [
            file("crates/core/src/protocol.rs", &proto_src(false)),
            file("crates/core/src/server.rs", server_src()),
        ];
        let f: Vec<_> = run_all(&files)
            .into_iter()
            .filter(|f| f.rule == WIRE_EXHAUSTIVENESS)
            .collect();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn uncovered_variant_reports_each_missing_leg() {
        // `Request::C` has an encode arm only: missing half the Wire
        // coverage, the dispatch arm, and the round-trip fixture.
        let files = [
            file("crates/core/src/protocol.rs", &proto_src(true)),
            file("crates/core/src/server.rs", server_src()),
        ];
        let f: Vec<_> = run_all(&files)
            .into_iter()
            .filter(|f| f.rule == WIRE_EXHAUSTIVENESS)
            .collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Request::C"));
        assert!(f[0].message.contains("Wire encode/decode"));
        assert!(f[0].message.contains("dispatch"));
        assert!(f[0].message.contains("round-trip"));
    }

    // ---- rule 6: digest-taint --------------------------------------

    #[test]
    fn digest_taint_follows_reachability_not_mere_presence() {
        let src = "struct Cluster;\n\
                   impl Cluster { pub fn run_until(&mut self) { helper(); } }\n\
                   fn helper() { let _ = std::time::Instant::now(); }\n\
                   fn island() { let _ = std::time::Instant::now(); }";
        let f = run_one("crates/peerhood/src/sim.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, DIGEST_TAINT);
        assert_eq!(f[0].line, 3);
        assert!(
            f[0].message.contains("Cluster::run_until"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn digest_taint_catches_core_count_thread_id_and_ptr_casts() {
        let src = "struct Cluster;\n\
                   impl Cluster { pub fn run_until(&mut self) { a(); b(); c(); } }\n\
                   fn a() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n\
                   fn b() { let _ = std::thread::current(); }\n\
                   fn c(v: &[u8]) -> usize { v.as_ptr() as usize }";
        let f = run_one("crates/peerhood/src/sim.rs", src);
        let lines: Vec<u32> = f
            .iter()
            .filter(|x| x.rule == DIGEST_TAINT)
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![3, 4, 5], "{f:?}");
    }

    #[test]
    fn digest_taint_exempts_live_bench_and_test_code() {
        let live = "struct Cluster;\n\
                    impl Cluster { pub fn run_until(&mut self) { let _ = std::time::Instant::now(); } }";
        assert!(run_one("crates/peerhood/src/live/net.rs", live).is_empty());
        assert!(run_one("crates/bench/src/lib.rs", live).is_empty());
        let test_only = "struct Cluster;\n\
                         impl Cluster { pub fn run_until(&mut self) {} }\n\
                         #[cfg(test)] mod tests { fn t() { let _ = std::time::Instant::now(); } }";
        assert!(run_one("crates/peerhood/src/sim.rs", test_only).is_empty());
    }

    // ---- rule 7: epoch-frozen-mutation -----------------------------

    #[test]
    fn epoch_worker_frozen_writes_are_flagged() {
        let src =
            "struct EpochWorker<'a> { view: EpochView<'a>, trace: &'a Trace, out: EpochOutbox }\n\
                   impl<'a> EpochWorker<'a> {\n\
                   fn bad_call(&mut self) { self.trace.record(1); }\n\
                   fn bad_borrow(&mut self) { let t = &mut self.view; drop(t); }\n\
                   fn bad_assign(&mut self) { self.view.epoch = 3; }\n\
                   }";
        let f = run_one("crates/peerhood/src/sim.rs", src);
        let got: Vec<(u32, &str)> = f.iter().map(|x| (x.line, x.rule)).collect();
        assert_eq!(
            got,
            vec![
                (3, EPOCH_FROZEN_MUTATION),
                (4, EPOCH_FROZEN_MUTATION),
                (5, EPOCH_FROZEN_MUTATION)
            ],
            "{f:?}"
        );
    }

    #[test]
    fn epoch_worker_reads_and_outbox_writes_are_clean() {
        let src = "struct EpochWorker<'a> { view: EpochView<'a>, trace: &'a Trace, out: EpochOutbox, scratch: Vec<u32> }\n\
                   impl<'a> EpochWorker<'a> {\n\
                   fn ok(&mut self) {\n\
                   let n = self.trace.len();\n\
                   let r = self.view.reachable(1);\n\
                   self.out.records.push(n);\n\
                   self.scratch.clear();\n\
                   drop(r);\n\
                   }\n\
                   }";
        assert!(run_one("crates/peerhood/src/sim.rs", src).is_empty());
    }

    // ---- rule 8: outbox-commutativity ------------------------------

    #[test]
    fn outbox_stats_assignment_and_shrink_are_flagged() {
        let src = "pub struct EpochOutbox { pub stats: TraceStats }\n\
                   fn commit(b: &mut EpochOutbox) {\n\
                   b.stats.messages = 3;\n\
                   b.stats.frames_sent -= 1;\n\
                   b.stats.messages += 1;\n\
                   }";
        let f = run_one("crates/peerhood/src/sim.rs", src);
        let got: Vec<u32> = f
            .iter()
            .filter(|x| x.rule == OUTBOX_COMMUTATIVITY)
            .map(|x| x.line)
            .collect();
        assert_eq!(got, vec![3, 4], "{f:?}");
    }

    #[test]
    fn stats_merge_fn_must_not_assign_or_max() {
        let src = "pub struct EpochOutbox { pub stats: TraceStats }\n\
                   pub struct TraceStats { pub messages: u64 }\n\
                   impl TraceStats {\n\
                   pub fn add(&mut self, o: &TraceStats) { self.messages = self.messages.max(o.messages); }\n\
                   }";
        let f = run_one("crates/netsim/src/trace.rs", src);
        let msgs: Vec<&str> = f
            .iter()
            .filter(|x| x.rule == OUTBOX_COMMUTATIVITY)
            .map(|x| x.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 2, "{f:?}");
        assert!(msgs.iter().any(|m| m.contains("assignment")));
        assert!(msgs.iter().any(|m| m.contains(".max(")));
    }

    #[test]
    fn additive_merge_and_local_stats_bindings_are_clean() {
        let src = "pub struct EpochOutbox { pub stats: TraceStats }\n\
                   pub struct TraceStats { pub messages: u64 }\n\
                   impl TraceStats {\n\
                   pub fn add(&mut self, o: &TraceStats) { self.messages += o.messages; }\n\
                   }\n\
                   fn commit(b: &EpochOutbox, t: &mut TraceStats) {\n\
                   let stats = &b.stats;\n\
                   t.add(stats);\n\
                   }";
        assert!(run_one("crates/peerhood/src/sim.rs", src).is_empty());
    }

    // ---- rule 9: unbounded-decode-allocation -----------------------

    #[test]
    fn unclamped_decode_allocation_is_flagged() {
        let src = "fn f(hdr: [u8; 4]) -> Vec<u8> {\n\
                   let len = u32::from_be_bytes(hdr) as usize;\n\
                   Vec::with_capacity(len)\n\
                   }";
        let f = run_one("crates/codec/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, UNBOUNDED_DECODE_ALLOCATION);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn max_clamp_and_read_len_are_guards() {
        let src = "const MAX_FRAME_LEN: usize = 1 << 20;\n\
                   fn f(hdr: [u8; 4]) -> Option<Vec<u8>> {\n\
                   let len = u32::from_be_bytes(hdr) as usize;\n\
                   if len > MAX_FRAME_LEN { return None; }\n\
                   Some(Vec::with_capacity(len))\n\
                   }\n\
                   fn g(input: &[u8]) -> Vec<u8> {\n\
                   let n = read_len(input);\n\
                   Vec::with_capacity(n)\n\
                   }";
        assert!(run_one("crates/codec/src/x.rs", src).is_empty());
    }

    #[test]
    fn wait_for_more_bytes_is_not_a_guard() {
        // Comparing against the buffered length and returning `None` just
        // defers the oversized claim — the slice past the header is still
        // sized by the hostile length once enough bytes arrive.
        let src = "fn pop(buf: &mut Vec<u8>) -> Option<Vec<u8>> {\n\
                   let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;\n\
                   if buf.len() < 4 + len { return None; }\n\
                   Some(buf[4..4 + len].to_vec())\n\
                   }";
        let f = run_one("crates/peerhood/src/live/wire_x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, UNBOUNDED_DECODE_ALLOCATION);
        assert!(f[0].message.contains("slice/index"), "{}", f[0].message);
    }

    #[test]
    fn decode_allocation_outside_untrusted_crates_is_clean() {
        let src = "fn f(hdr: [u8; 4]) -> Vec<u8> {\n\
                   let len = u32::from_be_bytes(hdr) as usize;\n\
                   Vec::with_capacity(len)\n\
                   }";
        assert!(run_one("crates/harness/src/x.rs", src).is_empty());
    }

    // ---- rule catalog ----------------------------------------------

    #[test]
    fn every_rule_has_a_doc_entry() {
        for rule in ALL_RULES {
            let doc = rule_doc(rule).unwrap_or_else(|| panic!("no RuleDoc for {rule}"));
            assert!(!doc.summary.is_empty() && !doc.why.is_empty());
            assert!(!doc.bad.is_empty() && !doc.good.is_empty());
        }
        assert!(
            rule_doc("wall-clock-in-sim").is_none(),
            "rule was replaced by digest-taint"
        );
    }
}
