//! The `ph-lint` binary. See `ph-lint --help`.

use std::path::PathBuf;
use std::process::ExitCode;

use phlint::{collect_workspace_files, lint_files, load_allowlist, FatalError};

const USAGE: &str = "\
ph-lint — determinism & robustness static analysis for this workspace

USAGE:
    ph-lint --workspace [OPTIONS]
    ph-lint [OPTIONS] FILE...

OPTIONS:
    --workspace        Lint every .rs file under the workspace root
    --root DIR         Workspace root (default: current directory)
    --format FMT       Output format: text (default) or json
    --allow FILE       Allowlist path (default: <root>/lint.allow)
    -h, --help         Print this help

EXIT CODES:
    0    clean (no findings beyond the lint.allow baseline, no stale entries)
    1    new findings, or stale lint.allow entries that matched nothing
    2    I/O error, lex error, or malformed lint.allow

RULES:
    nondeterministic-iteration, wall-clock-in-sim, panic-in-dispatch,
    raw-thread-spawn, relaxed-ordering, wire-exhaustiveness
    (documented in DESIGN.md §9)
";

struct Cli {
    workspace: bool,
    root: PathBuf,
    json: bool,
    allow: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, FatalError> {
    let mut cli = Cli {
        workspace: false,
        root: PathBuf::from("."),
        json: false,
        allow: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--workspace" => cli.workspace = true,
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| FatalError("--root needs a value".into()))?;
                cli.root = PathBuf::from(v);
            }
            "--format" => {
                let v = it
                    .next()
                    .ok_or_else(|| FatalError("--format needs a value".into()))?;
                cli.json = match v.as_str() {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(FatalError(format!(
                            "unknown format `{other}` (expected text or json)"
                        )))
                    }
                };
            }
            "--allow" => {
                let v = it
                    .next()
                    .ok_or_else(|| FatalError("--allow needs a value".into()))?;
                cli.allow = Some(PathBuf::from(v));
            }
            other if other.starts_with('-') => {
                return Err(FatalError(format!("unknown option `{other}`")));
            }
            file => cli.files.push(PathBuf::from(file)),
        }
    }
    if !cli.workspace && cli.files.is_empty() {
        return Err(FatalError(
            "nothing to lint: pass --workspace or explicit files (see --help)".into(),
        ));
    }
    Ok(Some(cli))
}

fn run(args: &[String]) -> Result<ExitCode, FatalError> {
    let Some(cli) = parse_args(args)? else {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    let allow_path = cli
        .allow
        .clone()
        .unwrap_or_else(|| cli.root.join("lint.allow"));
    let allowlist = load_allowlist(&allow_path)?;
    let files = if cli.workspace {
        collect_workspace_files(&cli.root)?
    } else {
        cli.files.clone()
    };
    let report = lint_files(&cli.root, &files, allowlist)?;
    if cli.json {
        print!("{}", report.render_json());
        // Keep the CI log self-explaining even when stdout is redirected
        // into LINT.json.
        eprintln!("{}", report.summary());
    } else {
        print!("{}", report.render_text());
    }
    Ok(if report.is_failure() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
