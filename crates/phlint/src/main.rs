//! The `ph-lint` binary. See `ph-lint --help`.

use std::path::PathBuf;
use std::process::ExitCode;

use phlint::rules::{rule_doc, ALL_RULES, RULE_DOCS};
use phlint::{collect_workspace_files, lint_files, load_allowlist, update_baseline, FatalError};

const USAGE: &str = "\
ph-lint — determinism & robustness static analysis for this workspace

USAGE:
    ph-lint --workspace [OPTIONS]
    ph-lint [OPTIONS] FILE...
    ph-lint --explain RULE
    ph-lint --update-baseline [--workspace] [OPTIONS]

OPTIONS:
    --workspace        Lint every .rs file under the workspace root
    --root DIR         Workspace root (default: current directory)
    --format FMT       Output format: text (default) or json
    --allow FILE       Allowlist path (default: <root>/lint.allow)
    --explain RULE     Print the catalog entry for RULE (or `all`) and exit
    --update-baseline  Rewrite lint.allow: re-anchor matched entries to
                       their current lines, drop stale entries; reasons
                       are preserved and new findings are never added
    -h, --help         Print this help

EXIT CODES:
    0    clean (no findings beyond the lint.allow baseline, no stale entries)
    1    new findings, or stale lint.allow entries that matched nothing
    2    I/O error, lex error, malformed or ambiguous lint.allow

RULES:
    nondeterministic-iteration, panic-in-dispatch, raw-thread-spawn,
    relaxed-ordering, wire-exhaustiveness, digest-taint,
    epoch-frozen-mutation, outbox-commutativity,
    unbounded-decode-allocation
    (run `ph-lint --explain <rule>`; documented in DESIGN.md §9 and §14)
";

struct Cli {
    workspace: bool,
    root: PathBuf,
    json: bool,
    allow: Option<PathBuf>,
    explain: Option<String>,
    update_baseline: bool,
    files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, FatalError> {
    let mut cli = Cli {
        workspace: false,
        root: PathBuf::from("."),
        json: false,
        allow: None,
        explain: None,
        update_baseline: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--workspace" => cli.workspace = true,
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| FatalError("--root needs a value".into()))?;
                cli.root = PathBuf::from(v);
            }
            "--format" => {
                let v = it
                    .next()
                    .ok_or_else(|| FatalError("--format needs a value".into()))?;
                cli.json = match v.as_str() {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(FatalError(format!(
                            "unknown format `{other}` (expected text or json)"
                        )))
                    }
                };
            }
            "--allow" => {
                let v = it
                    .next()
                    .ok_or_else(|| FatalError("--allow needs a value".into()))?;
                cli.allow = Some(PathBuf::from(v));
            }
            "--explain" => {
                let v = it
                    .next()
                    .ok_or_else(|| FatalError("--explain needs a rule name (or `all`)".into()))?;
                cli.explain = Some(v.clone());
            }
            "--update-baseline" => cli.update_baseline = true,
            other if other.starts_with('-') => {
                return Err(FatalError(format!("unknown option `{other}`")));
            }
            file => cli.files.push(PathBuf::from(file)),
        }
    }
    if !cli.workspace && cli.files.is_empty() && cli.explain.is_none() {
        return Err(FatalError(
            "nothing to lint: pass --workspace or explicit files (see --help)".into(),
        ));
    }
    Ok(Some(cli))
}

/// Renders one rule-catalog entry for `--explain`.
fn explain_one(name: &str) -> Result<String, FatalError> {
    let Some(doc) = rule_doc(name) else {
        return Err(FatalError(format!(
            "unknown rule `{name}` (known rules: {})",
            ALL_RULES.join(", ")
        )));
    };
    Ok(format!(
        "{}\n{}\n\n  {}\n\nwhy\n  {}\n\nbad\n  {}\n\ngood\n  {}\n",
        doc.name,
        "=".repeat(doc.name.len()),
        doc.summary,
        doc.why,
        doc.bad,
        doc.good
    ))
}

fn run(args: &[String]) -> Result<ExitCode, FatalError> {
    let Some(cli) = parse_args(args)? else {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    if let Some(rule) = &cli.explain {
        if rule == "all" {
            for doc in &RULE_DOCS {
                println!("{}", explain_one(doc.name)?);
            }
        } else {
            print!("{}", explain_one(rule)?);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let allow_path = cli
        .allow
        .clone()
        .unwrap_or_else(|| cli.root.join("lint.allow"));
    let files = if cli.workspace {
        collect_workspace_files(&cli.root)?
    } else {
        cli.files.clone()
    };
    if cli.update_baseline {
        let summary = update_baseline(&cli.root, &files, &allow_path)?;
        print!("{summary}");
        return Ok(ExitCode::SUCCESS);
    }
    let allowlist = load_allowlist(&allow_path)?;
    let report = lint_files(&cli.root, &files, allowlist)?;
    if cli.json {
        print!("{}", report.render_json());
        // Keep the CI log self-explaining even when stdout is redirected
        // into LINT.json.
        eprintln!("{}", report.summary());
    } else {
        print!("{}", report.render_text());
    }
    Ok(if report.is_failure() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
