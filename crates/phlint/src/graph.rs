//! An intra-workspace call graph with reachability from declared roots.
//!
//! Built from the item trees of every non-test source file, the graph gives
//! rules a *transitive* view: "is this fn reachable from the trace-digest
//! roots?" replaces "does this file look like simulation code?". Resolution
//! is name-based and deliberately over-approximate — when a method call
//! `.foo(…)` could hit several workspace methods named `foo`, the graph
//! records an edge to all of them. Over-approximation fails *safe* for the
//! rules built on top (a taint rule may flag a hair too much, never too
//! little), and every ambiguity can be silenced precisely in `lint.allow`.
//!
//! Three call forms resolve:
//!
//! * **method calls** `recv.foo(…)` → every workspace method named `foo`;
//! * **path calls** `Type::foo(…)` (UFCS) → methods of `Type` after
//!   rewriting `Type` through the file's `use`-aliases (`use x::Real as
//!   Type`) and `Self` to the enclosing impl type; `module::foo(…)` falls
//!   back to free fns named `foo` preferring files matching the module
//!   (`par::go` → `…/par.rs`);
//! * **plain calls** `foo(…)` → free fns named `foo` in the same file,
//!   else the same crate (cross-crate calls are always path-qualified).
//!
//! Bare path *references* (`map(Type::helper)`) resolve through the method
//! table too, so fn-pointer plumbing like `.then(Instant::now)` does not
//! hide an edge.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::parse::{walk_items, Item, ItemKind};
use crate::rules::SourceFile;

/// One fn in the workspace.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the defining file in the slice passed to [`CallGraph::build`].
    pub file: usize,
    /// Workspace-relative path of that file.
    pub path: String,
    /// Enclosing impl/trait type, if any.
    pub self_type: Option<String>,
    /// Bare fn name.
    pub name: String,
    /// Qualified name: `Type::name` for methods, `name` for free fns.
    pub qname: String,
    /// 1-based line of the fn head.
    pub line: u32,
    /// Token indices of the body braces in the defining file (`None` for
    /// signature-only trait methods).
    pub body: Option<(usize, usize)>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every fn, in deterministic (file, declaration) order.
    pub fns: Vec<FnNode>,
    /// `calls[i]` — sorted, deduped callee indices of fn `i`.
    pub calls: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over every non-test file. Test files and
    /// `#[cfg(test)]` items are excluded so fixture/test helpers can never
    /// pollute production reachability.
    #[must_use]
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut g = CallGraph::default();
        // Pass 1: collect fns.
        for (fi, f) in files.iter().enumerate() {
            if f.is_test_file() {
                continue;
            }
            collect_fns(&f.items, f, fi, None, &mut g.fns);
        }
        // Indexes (BTreeMap: iteration order deterministic).
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_type: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in g.fns.iter().enumerate() {
            match &n.self_type {
                Some(ty) => {
                    methods_by_name.entry(&n.name).or_default().push(id);
                    methods_by_type
                        .entry((ty.as_str(), &n.name))
                        .or_default()
                        .push(id);
                }
                None => free_by_name.entry(&n.name).or_default().push(id),
            }
        }
        // Pass 2: resolve call sites per fn body.
        g.calls = g
            .fns
            .iter()
            .map(|node| {
                let f = &files[node.file];
                let Some((open, close)) = node.body else {
                    return Vec::new();
                };
                let mut out = resolve_calls(
                    f,
                    open + 1,
                    close,
                    node.self_type.as_deref(),
                    &methods_by_name,
                    &methods_by_type,
                    &free_by_name,
                    &g.fns,
                );
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        g
    }

    /// Ids of fns whose defining file is `path` and qualified name is
    /// `qname` (several on re-declaration, e.g. cfg-gated twins).
    #[must_use]
    pub fn find(&self, path: &str, qname: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| n.path == path && n.qname == qname)
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS reachability from `roots`; `result[id]` holds the index of the
    /// root that first reached fn `id` (roots reach themselves).
    #[must_use]
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut reached: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if r < reached.len() && reached[r].is_none() {
                reached[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            let via = reached[at];
            for &next in &self.calls[at] {
                if reached[next].is_none() {
                    reached[next] = via;
                    queue.push_back(next);
                }
            }
        }
        reached
    }
}

fn collect_fns(
    items: &[Item],
    f: &SourceFile,
    fi: usize,
    self_type: Option<&str>,
    out: &mut Vec<FnNode>,
) {
    for item in items {
        // Skip test-masked items entirely (cfg(test) mods, #[test] fns).
        if f.test_mask.get(item.span.0).copied().unwrap_or(false) {
            continue;
        }
        match &item.kind {
            ItemKind::Fn => {
                if item.name.is_empty() {
                    continue;
                }
                let qname = match self_type {
                    Some(ty) => format!("{ty}::{}", item.name),
                    None => item.name.clone(),
                };
                out.push(FnNode {
                    file: fi,
                    path: f.path.clone(),
                    self_type: self_type.map(str::to_owned),
                    name: item.name.clone(),
                    qname,
                    line: item.line,
                    body: item.body,
                });
            }
            ItemKind::Impl { .. } | ItemKind::Trait => {
                collect_fns(&item.children, f, fi, Some(&item.name), out);
            }
            ItemKind::Mod => collect_fns(&item.children, f, fi, self_type, out),
            _ => {}
        }
    }
}

/// The file's `use`-alias map: local binding → final path segment.
fn alias_map(f: &SourceFile) -> BTreeMap<&str, &str> {
    let mut map = BTreeMap::new();
    walk_items(&f.items, &mut |item| {
        if let ItemKind::Use { target } = &item.kind {
            let real = target.rsplit("::").next().unwrap_or(target);
            map.insert(item.name.as_str(), real);
        }
    });
    map
}

#[allow(clippy::too_many_arguments)]
fn resolve_calls(
    f: &SourceFile,
    start: usize,
    end: usize,
    self_type: Option<&str>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_type: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    fns: &[FnNode],
) -> Vec<usize> {
    let aliases = alias_map(f);
    let toks = &f.toks;
    let crate_prefix = {
        let mut parts = f.path.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(name)) => format!("crates/{name}/"),
            _ => String::new(),
        }
    };
    let mut out = Vec::new();
    let is_p = |k: usize, s: &str| {
        toks.get(k)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    };
    let ident_at = |k: usize| -> Option<&str> {
        toks.get(k)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };
    let mut k = start;
    while k < end {
        // Method call `recv.name(…)`.
        if is_p(k, ".") {
            if let Some(name) = ident_at(k + 1) {
                if is_p(k + 2, "(") {
                    if let Some(ids) = methods_by_name.get(name) {
                        out.extend_from_slice(ids);
                    }
                    k += 3;
                    continue;
                }
            }
        }
        // Path call or path reference `Seg::name`.
        if let Some(seg) = ident_at(k) {
            if is_p(k + 1, ":") && is_p(k + 2, ":") {
                if let Some(name) = ident_at(k + 3) {
                    // Only the last two path segments matter; skip when this
                    // pair is mid-path (`a::b::c` at `a::b`).
                    if !(is_p(k + 4, ":") && is_p(k + 5, ":")) {
                        let called = is_p(k + 4, "(");
                        let resolved = if seg == "Self" {
                            self_type.unwrap_or(seg)
                        } else {
                            aliases.get(seg).copied().unwrap_or(seg)
                        };
                        if let Some(ids) = methods_by_type.get(&(resolved, name)) {
                            out.extend_from_slice(ids);
                        } else if called {
                            // `module::fn(…)`: free fns, preferring files
                            // that actually look like that module.
                            if let Some(ids) = free_by_name.get(name) {
                                let modfile = format!("/{resolved}.rs");
                                let moddir = format!("/{resolved}/");
                                let matching: Vec<usize> = ids
                                    .iter()
                                    .copied()
                                    .filter(|&id| {
                                        fns[id].path.ends_with(&modfile)
                                            || fns[id].path.contains(&moddir)
                                    })
                                    .collect();
                                if matching.is_empty() {
                                    out.extend_from_slice(ids);
                                } else {
                                    out.extend(matching);
                                }
                            }
                        }
                        k += 4;
                        continue;
                    }
                }
            }
        }
        // Plain call `name(…)` — not preceded by `.`/`::`/`fn`.
        if let Some(name) = ident_at(k) {
            if is_p(k + 1, "(") {
                let prev_blocks = k > 0
                    && (is_p(k - 1, ".")
                        || is_p(k - 1, ":")
                        || toks
                            .get(k - 1)
                            .is_some_and(|t| t.kind == TokKind::Ident && t.text == "fn"));
                if !prev_blocks {
                    if let Some(ids) = free_by_name.get(name) {
                        let same_file: Vec<usize> = ids
                            .iter()
                            .copied()
                            .filter(|&id| fns[id].path == f.path)
                            .collect();
                        if !same_file.is_empty() {
                            out.extend(same_file);
                        } else if !crate_prefix.is_empty() {
                            out.extend(
                                ids.iter()
                                    .copied()
                                    .filter(|&id| fns[id].path.starts_with(&crate_prefix)),
                            );
                        }
                    }
                }
            }
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src).unwrap()
    }

    fn qnames(g: &CallGraph, ids: &[usize]) -> Vec<String> {
        let mut v: Vec<String> = ids.iter().map(|&i| g.fns[i].qname.clone()).collect();
        v.sort();
        v
    }

    fn callees(g: &CallGraph, path: &str, qname: &str) -> Vec<String> {
        let ids = g.find(path, qname);
        assert_eq!(ids.len(), 1, "{qname} not found exactly once");
        qnames(g, &g.calls[ids[0]])
    }

    #[test]
    fn plain_calls_resolve_same_file_then_same_crate() {
        let a = file(
            "crates/x/src/a.rs",
            "pub fn entry() { helper(); }\npub fn helper() {}",
        );
        let b = file("crates/x/src/b.rs", "pub fn cross() { helper(); }");
        let c = file("crates/y/src/c.rs", "pub fn other_crate() { helper(); }");
        let g = CallGraph::build(&[a, b, c]);
        assert_eq!(callees(&g, "crates/x/src/a.rs", "entry"), vec!["helper"]);
        // Same crate, different file: still resolves.
        assert_eq!(callees(&g, "crates/x/src/b.rs", "cross"), vec!["helper"]);
        // Cross-crate plain calls never resolve (they'd be path-qualified).
        assert_eq!(
            callees(&g, "crates/y/src/c.rs", "other_crate"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn method_calls_resolve_by_name_across_types() {
        let src = "struct A; impl A { fn go(&self) {} }\n\
                   struct B; impl B { fn go(&self) {} fn run(&self, a: &A) { a.go(); } }";
        let g = CallGraph::build(&[file("crates/x/src/m.rs", src)]);
        // Name-based: both `go`s are candidate callees (over-approximation).
        assert_eq!(
            callees(&g, "crates/x/src/m.rs", "B::run"),
            vec!["A::go", "B::go"]
        );
    }

    #[test]
    fn ufcs_calls_resolve_through_use_aliases_and_self() {
        let util = file(
            "crates/x/src/util.rs",
            "pub struct Real;\nimpl Real { pub fn make() {} }",
        );
        let user = file(
            "crates/x/src/user.rs",
            "use crate::util::Real as Alias;\n\
             struct S;\n\
             impl S {\n\
               fn a(&self) { Alias::make(); }\n\
               fn b(&self) { Self::c(); }\n\
               fn c(&self) {}\n\
             }",
        );
        let g = CallGraph::build(&[util, user]);
        assert_eq!(
            callees(&g, "crates/x/src/user.rs", "S::a"),
            vec!["Real::make"]
        );
        assert_eq!(callees(&g, "crates/x/src/user.rs", "S::b"), vec!["S::c"]);
    }

    #[test]
    fn module_qualified_free_fns_prefer_the_module_file() {
        let par = file("crates/x/src/par.rs", "pub fn go() {}");
        let decoy = file("crates/x/src/other.rs", "pub fn go() {}");
        let caller = file("crates/x/src/main_mod.rs", "pub fn run() { par::go(); }");
        let g = CallGraph::build(&[par, decoy, caller]);
        let ids = g.find("crates/x/src/main_mod.rs", "run");
        let callee_paths: Vec<&str> = g.calls[ids[0]]
            .iter()
            .map(|&i| g.fns[i].path.as_str())
            .collect();
        assert_eq!(callee_paths, vec!["crates/x/src/par.rs"]);
    }

    #[test]
    fn bare_path_references_count_as_edges() {
        let src = "struct T; impl T { fn helper() {} }\n\
                   fn f() { let _ = Some(1).map(|_| T::helper); }";
        let g = CallGraph::build(&[file("crates/x/src/r.rs", src)]);
        assert_eq!(callees(&g, "crates/x/src/r.rs", "f"), vec!["T::helper"]);
    }

    #[test]
    fn test_files_and_test_items_are_outside_the_graph() {
        let prod = file(
            "crates/x/src/a.rs",
            "pub fn entry() {}\n#[cfg(test)] mod tests { fn shadow() { entry(); } }",
        );
        let test = file("crates/x/tests/t.rs", "fn in_test() { entry(); }");
        let g = CallGraph::build(&[prod, test]);
        let names: Vec<&str> = g.fns.iter().map(|n| n.qname.as_str()).collect();
        assert_eq!(names, vec!["entry"]);
    }

    #[test]
    fn reachability_reports_the_root_that_reached() {
        let src = "fn root_a() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}";
        let g = CallGraph::build(&[file("crates/x/src/a.rs", src)]);
        let root = g.find("crates/x/src/a.rs", "root_a");
        let reach = g.reachable_from(&root);
        let leaf = g.find("crates/x/src/a.rs", "leaf")[0];
        let island = g.find("crates/x/src/a.rs", "island")[0];
        assert_eq!(reach[leaf], Some(root[0]));
        assert_eq!(reach[island], None);
    }
}
