//! A brace-matched item tree over the token stream.
//!
//! The lexer gives the rules a flat token stream; this module recovers just
//! enough structure for scope-aware rules: which tokens belong to which
//! `fn`, which `impl` a method lives in, what `use` declarations rebind,
//! and which attributes annotate an item. It is *not* a Rust parser — no
//! expressions, no types, no patterns — only the item skeleton:
//!
//! * `mod name { … }` / `mod name;` (children parsed recursively),
//! * `fn name(…) { … }` (with `pub`/`const`/`unsafe`/`async`/`extern`
//!   qualifier runs handled, signature-only trait methods included),
//! * `impl Type { … }` / `impl Trait for Type { … }` (methods become
//!   children; the self-type name is recovered from the path),
//! * `struct` / `enum` / `trait` (trait bodies parsed for default methods),
//! * `use a::b::{C, D as E};` expanded into one leaf per binding,
//! * everything else (`const`, `static`, `type`, macro invocations,
//!   `extern` blocks) skipped as [`ItemKind::Other`] with balanced braces.
//!
//! Spans are token indices into the file's token vector, so rules can scan
//! exactly the tokens of one fn body. Unbalanced input never loops or
//! panics: bracket matching is bounded by the token range and degrades to
//! "rest of file".

use crate::lexer::{Tok, TokKind};

/// What kind of item a node is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// A free fn, method, or trait-method signature.
    Fn,
    /// `impl Type` / `impl Trait for Type`; `name` holds the self type.
    Impl {
        /// Trait name for `impl Trait for Type`, `None` for inherent impls.
        trait_name: Option<String>,
    },
    /// `struct name …`.
    Struct,
    /// `enum name { … }`.
    Enum,
    /// `trait name { … }` (children hold its methods).
    Trait,
    /// One binding introduced by a `use` declaration; `name` is the local
    /// binding (alias or last segment), `target` the full `::`-joined path.
    Use {
        /// Full source path, e.g. `std::time::Instant`.
        target: String,
    },
    /// Anything else: `const`, `static`, `type`, macros, extern blocks.
    Other,
}

/// One node of the item tree.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind (and kind-specific payload).
    pub kind: ItemKind,
    /// Declared name (self type for impls, local binding for uses; may be
    /// empty for anonymous `Other` items like macro invocations).
    pub name: String,
    /// 1-based line of the item head.
    pub line: u32,
    /// Outer attributes as space-joined ident lists (`#[cfg(test)]` →
    /// `"cfg test"`), in source order.
    pub attrs: Vec<String>,
    /// Token range `[start, end)` of the whole item including attributes.
    pub span: (usize, usize),
    /// Token indices of the `{` and matching `}` of the body, if braced.
    pub body: Option<(usize, usize)>,
    /// Nested items (mod/impl/trait bodies).
    pub children: Vec<Item>,
}

impl Item {
    /// Depth-first walk over this item and all descendants.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Item)) {
        visit(self);
        for c in &self.children {
            c.walk(visit);
        }
    }
}

/// Parses a whole file's token stream into a top-level item list.
#[must_use]
pub fn parse_items(toks: &[Tok]) -> Vec<Item> {
    let mut out = Vec::new();
    parse_range(toks, 0, toks.len(), &mut out);
    out
}

/// Depth-first walk over a whole item forest.
pub fn walk_items<'a>(items: &'a [Item], visit: &mut impl FnMut(&'a Item)) {
    for item in items {
        item.walk(visit);
    }
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Index of the token closing the bracket opened at `open`, clamped to
/// `end - 1` when unbalanced (so callers always make forward progress).
fn matching_in(toks: &[Tok], open: usize, open_text: &str, close_text: &str, end: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_text {
                depth += 1;
            } else if t.text == close_text {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    end.saturating_sub(1).max(open)
}

/// Fn qualifiers that may precede the `fn` keyword.
fn is_fn_qualifier(t: &Tok) -> bool {
    t.kind == TokKind::Str // the ABI string of `extern "C" fn`
        || (t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "pub" | "const" | "unsafe" | "async" | "default" | "extern"
            ))
}

fn parse_range(toks: &[Tok], start: usize, end: usize, out: &mut Vec<Item>) {
    let mut i = start;
    while i < end {
        // Inner attribute `#![…]`: file/module metadata, not an item.
        if is_punct(&toks[i], "#")
            && i + 2 < end
            && is_punct(&toks[i + 1], "!")
            && is_punct(&toks[i + 2], "[")
        {
            i = matching_in(toks, i + 2, "[", "]", end) + 1;
            continue;
        }
        let item_start = i;
        // Outer attributes `#[…]`, collected as flattened ident lists.
        let mut attrs = Vec::new();
        while i + 1 < end && is_punct(&toks[i], "#") && is_punct(&toks[i + 1], "[") {
            let close = matching_in(toks, i + 1, "[", "]", end);
            attrs.push(
                toks[i + 2..close.min(end)]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            i = close + 1;
        }
        if i >= end {
            break;
        }
        // Visibility.
        let mut h = i;
        if is_ident(&toks[h], "pub") {
            h += 1;
            if h < end && is_punct(&toks[h], "(") {
                h = matching_in(toks, h, "(", ")", end) + 1;
            }
        }
        if h >= end {
            break;
        }
        // Resolve the head keyword, skipping fn-qualifier runs when (and
        // only when) an actual `fn` follows: `const unsafe extern "C" fn f`
        // is a fn; `const X: u32 = …;` is not.
        let mut head = h;
        if toks[head].kind == TokKind::Ident
            && matches!(
                toks[head].text.as_str(),
                "const" | "unsafe" | "async" | "default" | "extern"
            )
        {
            let mut k = head;
            while k < end && is_fn_qualifier(&toks[k]) {
                k += 1;
            }
            if k < end && is_ident(&toks[k], "fn") {
                head = k;
            }
        }
        let t = &toks[head];
        let line = t.line;
        let next_name = |at: usize| -> String {
            toks.get(at)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone())
                .unwrap_or_default()
        };
        if is_ident(t, "mod") {
            let name = next_name(head + 1);
            let (body, item_end) = braced_or_semi(toks, head + 2, end);
            let mut children = Vec::new();
            if let Some((open, close)) = body {
                parse_range(toks, open + 1, close, &mut children);
            }
            out.push(Item {
                kind: ItemKind::Mod,
                name,
                line,
                attrs,
                span: (item_start, item_end),
                body,
                children,
            });
            i = item_end;
        } else if is_ident(t, "fn") {
            let name = next_name(head + 1);
            let (body, item_end) = braced_or_semi(toks, head + 2, end);
            out.push(Item {
                kind: ItemKind::Fn,
                name,
                line,
                attrs,
                span: (item_start, item_end),
                body,
                children: Vec::new(),
            });
            i = item_end;
        } else if is_ident(t, "impl") {
            let (self_type, trait_name, body_open) = parse_impl_head(toks, head + 1, end);
            let (body, item_end) = match body_open {
                Some(open) => {
                    let close = matching_in(toks, open, "{", "}", end);
                    (Some((open, close)), close + 1)
                }
                None => (None, skip_unknown(toks, head + 1, end)),
            };
            let mut children = Vec::new();
            if let Some((open, close)) = body {
                parse_range(toks, open + 1, close, &mut children);
            }
            out.push(Item {
                kind: ItemKind::Impl { trait_name },
                name: self_type,
                line,
                attrs,
                span: (item_start, item_end),
                body,
                children,
            });
            i = item_end;
        } else if is_ident(t, "struct")
            || is_ident(t, "enum")
            || is_ident(t, "trait")
            || is_ident(t, "union")
        {
            let kind = match t.text.as_str() {
                "struct" | "union" => ItemKind::Struct,
                "enum" => ItemKind::Enum,
                _ => ItemKind::Trait,
            };
            let name = next_name(head + 1);
            let (body, item_end) = braced_or_semi(toks, head + 2, end);
            let mut children = Vec::new();
            // Only trait bodies hold nested items (default methods); struct
            // and enum bodies are fields/variants, not items.
            if kind == ItemKind::Trait {
                if let Some((open, close)) = body {
                    parse_range(toks, open + 1, close, &mut children);
                }
            }
            out.push(Item {
                kind,
                name,
                line,
                attrs,
                span: (item_start, item_end),
                body,
                children,
            });
            i = item_end;
        } else if is_ident(t, "use") {
            // Collect the declaration up to `;` and expand its bindings.
            let mut semi = head + 1;
            let mut depth = 0i32;
            while semi < end {
                let u = &toks[semi];
                if u.kind == TokKind::Punct {
                    match u.text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                semi += 1;
            }
            expand_use(
                toks,
                head + 1,
                semi,
                &mut Vec::new(),
                line,
                (item_start, (semi + 1).min(end)),
                &attrs,
                out,
            );
            i = semi + 1;
        } else {
            // `const`/`static`/`type`/macros/extern blocks: record the span
            // (named when a name is recoverable) and move past it.
            let name = next_name(head + 1);
            let item_end = skip_unknown(toks, head, end);
            out.push(Item {
                kind: ItemKind::Other,
                name,
                line,
                attrs,
                span: (item_start, item_end),
                body: None,
                children: Vec::new(),
            });
            i = item_end.max(i + 1);
        }
    }
}

/// From `from`, finds either a `{…}` body or a terminating `;` at bracket
/// depth 0 (parens/brackets tracked, so default args and array types do not
/// confuse the scan). Returns `(body_span, index_past_item)`.
fn braced_or_semi(toks: &[Tok], from: usize, end: usize) -> (Option<(usize, usize)>, usize) {
    let mut depth = 0i32;
    let mut k = from;
    while k < end {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    let close = matching_in(toks, k, "{", "}", end);
                    return (Some((k, close)), close + 1);
                }
                ";" if depth == 0 => return (None, k + 1),
                _ => {}
            }
        }
        k += 1;
    }
    (None, end)
}

/// Skips an unrecognized item: everything up to a `;` at brace depth 0, or
/// through one balanced `{…}` group (macro bodies, extern blocks).
fn skip_unknown(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = from;
    while k < end {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    return matching_in(toks, k, "{", "}", end) + 1;
                }
                ";" if depth == 0 => return k + 1,
                _ => {}
            }
        }
        k += 1;
    }
    end
}

/// Parses an impl head starting just past the `impl` keyword: skips the
/// generic parameter list, then reads `Type` or `Trait for Type`, returning
/// `(self_type, trait_name, body_open_index)`.
fn parse_impl_head(
    toks: &[Tok],
    from: usize,
    end: usize,
) -> (String, Option<String>, Option<usize>) {
    let mut k = from;
    // Generic parameters `impl<…>`: angle depth tracked by hand. `->` never
    // decrements (`Fn(&T) -> bool` bounds), checked via the previous token.
    if k < end && is_punct(&toks[k], "<") {
        let mut depth = 0i32;
        while k < end {
            let t = &toks[k];
            if is_punct(t, "<") {
                depth += 1;
            } else if is_punct(t, ">") && !(k > 0 && is_punct(&toks[k - 1], "-")) {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }
    // First path (the self type, or the trait when `for` follows).
    let (first, after_first) = read_type_path(toks, k, end);
    if after_first < end && is_ident(&toks[after_first], "for") {
        let (second, after_second) = read_type_path(toks, after_first + 1, end);
        let body = find_body_open(toks, after_second, end);
        (second, Some(first), body)
    } else {
        let body = find_body_open(toks, after_first, end);
        (first, None, body)
    }
}

/// Reads one type path (`a::b::Name<…>`, possibly `&`/`mut`-prefixed) and
/// returns the final type name plus the index just past the path.
fn read_type_path(toks: &[Tok], from: usize, end: usize) -> (String, usize) {
    let mut k = from;
    // Reference/pointer noise before the path.
    while k < end
        && (is_punct(&toks[k], "&")
            || is_punct(&toks[k], "*")
            || toks[k].kind == TokKind::Lifetime
            || is_ident(&toks[k], "mut")
            || is_ident(&toks[k], "dyn"))
    {
        k += 1;
    }
    let mut name = String::new();
    while k < end {
        let t = &toks[k];
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "for" | "where") {
            name = t.text.clone();
            k += 1;
            if k + 1 < end && is_punct(&toks[k], ":") && is_punct(&toks[k + 1], ":") {
                k += 2;
                continue;
            }
        }
        break;
    }
    // Trailing generic arguments `<…>` belong to the path but not the name.
    if k < end && is_punct(&toks[k], "<") {
        let mut depth = 0i32;
        while k < end {
            let t = &toks[k];
            if is_punct(t, "<") {
                depth += 1;
            } else if is_punct(t, ">") && !(k > 0 && is_punct(&toks[k - 1], "-")) {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }
    (name, k)
}

/// Index of the body `{` after an impl head, skipping a `where` clause.
fn find_body_open(toks: &[Tok], from: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(end).skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(k),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
    }
    None
}

/// Expands one `use` declaration (tokens `[from, semi)`) into leaf items,
/// one per binding: `use a::{B, C as D};` yields `B → a::B`, `D → a::C`.
#[allow(clippy::too_many_arguments)]
fn expand_use(
    toks: &[Tok],
    from: usize,
    semi: usize,
    prefix: &mut Vec<String>,
    line: u32,
    span: (usize, usize),
    attrs: &[String],
    out: &mut Vec<Item>,
) {
    let emit = |segs: &[String], alias: Option<String>, out: &mut Vec<Item>| {
        let mut segs = segs.to_vec();
        // `use x::{self}` binds the parent name.
        if segs.last().is_some_and(|s| s == "self") {
            segs.pop();
        }
        let Some(last) = segs.last().cloned() else {
            return;
        };
        out.push(Item {
            kind: ItemKind::Use {
                target: segs.join("::"),
            },
            name: alias.unwrap_or(last),
            line,
            attrs: attrs.to_vec(),
            span,
            body: None,
            children: Vec::new(),
        });
    };
    let depth_before = prefix.len();
    let mut k = from;
    while k < semi {
        let t = &toks[k];
        if t.kind == TokKind::Ident && t.text == "as" {
            let alias = toks
                .get(k + 1)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone());
            emit(prefix, alias, out);
            prefix.truncate(depth_before);
            return;
        }
        if t.kind == TokKind::Ident {
            prefix.push(t.text.clone());
            k += 1;
            if k + 1 < semi && is_punct(&toks[k], ":") && is_punct(&toks[k + 1], ":") {
                k += 2;
                continue;
            }
            if k < semi && toks[k].kind == TokKind::Ident && toks[k].text == "as" {
                continue; // `path as Alias` — the loop head binds the alias
            }
            // Path ended on an identifier: a plain binding.
            emit(prefix, None, out);
            prefix.truncate(depth_before);
            return;
        }
        if is_punct(t, "{") {
            let close = matching_in(toks, k, "{", "}", semi);
            // Split the group on top-level commas and recurse per element.
            let mut elem_start = k + 1;
            let mut depth = 0i32;
            let mut j = k + 1;
            while j <= close {
                let u = &toks[j];
                let elem_ends = j == close || (depth == 0 && is_punct(u, ","));
                if elem_ends {
                    if elem_start < j {
                        expand_use(toks, elem_start, j, prefix, line, span, attrs, out);
                    }
                    elem_start = j + 1;
                } else if u.kind == TokKind::Punct {
                    match u.text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                }
                j += 1;
            }
            prefix.truncate(depth_before);
            return;
        }
        if is_punct(t, "*") {
            // Glob imports introduce no nameable binding.
            prefix.truncate(depth_before);
            return;
        }
        k += 1;
    }
    prefix.truncate(depth_before);
}

/// Extracts `(field_name, type_tokens)` pairs from a struct item's body.
/// Tuple and unit structs yield an empty list.
#[must_use]
pub fn struct_fields(toks: &[Tok], item: &Item) -> Vec<(String, Vec<String>)> {
    let Some((open, close)) = item.body else {
        return Vec::new();
    };
    let mut fields = Vec::new();
    let mut k = open + 1;
    while k < close {
        // Skip field attributes and visibility.
        while k + 1 < close && is_punct(&toks[k], "#") && is_punct(&toks[k + 1], "[") {
            k = matching_in(toks, k + 1, "[", "]", close) + 1;
        }
        if k < close && is_ident(&toks[k], "pub") {
            k += 1;
            if k < close && is_punct(&toks[k], "(") {
                k = matching_in(toks, k, "(", ")", close) + 1;
            }
        }
        if k + 1 < close && toks[k].kind == TokKind::Ident && is_punct(&toks[k + 1], ":") {
            let name = toks[k].text.clone();
            let mut ty = Vec::new();
            let mut depth = 0i32;
            let mut j = k + 2;
            while j < close {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "<" => depth += 1,
                        ">" if !is_punct(&toks[j - 1], "-") => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                }
                ty.push(t.text.clone());
                j += 1;
            }
            fields.push((name, ty));
            k = j + 1;
        } else {
            k += 1;
        }
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src).unwrap())
    }

    fn names(items: &[Item]) -> Vec<(String, String)> {
        let mut out = Vec::new();
        walk_items(items, &mut |i| {
            let kind = match &i.kind {
                ItemKind::Mod => "mod",
                ItemKind::Fn => "fn",
                ItemKind::Impl { .. } => "impl",
                ItemKind::Struct => "struct",
                ItemKind::Enum => "enum",
                ItemKind::Trait => "trait",
                ItemKind::Use { .. } => "use",
                ItemKind::Other => "other",
            };
            out.push((kind.to_owned(), i.name.clone()));
        });
        out
    }

    #[test]
    fn items_nest_under_mods_and_impls() {
        let src = "mod outer {\n\
                     pub struct S { pub x: u32 }\n\
                     impl S { pub fn m(&self) -> u32 { self.x } }\n\
                     pub fn free() {}\n\
                   }";
        let items = parse(src);
        let got = names(&items);
        assert_eq!(
            got,
            vec![
                ("mod".into(), "outer".into()),
                ("struct".into(), "S".into()),
                ("impl".into(), "S".into()),
                ("fn".into(), "m".into()),
                ("fn".into(), "free".into()),
            ]
        );
    }

    #[test]
    fn qualifier_runs_still_find_the_fn() {
        let items = parse(
            "pub const unsafe extern \"C\" fn weird() {}\n\
             const NOT_A_FN: u32 = 3;\n\
             async fn later() {}",
        );
        let got = names(&items);
        assert_eq!(
            got,
            vec![
                ("fn".into(), "weird".into()),
                ("other".into(), "NOT_A_FN".into()),
                ("fn".into(), "later".into()),
            ]
        );
    }

    #[test]
    fn trait_impls_recover_both_names() {
        let items =
            parse("impl<'a, T: Clone> fmt::Display for Wrapper<'a, T> { fn fmt(&self) {} }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "Wrapper");
        assert_eq!(
            items[0].kind,
            ItemKind::Impl {
                trait_name: Some("Display".into())
            }
        );
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[0].children[0].name, "fmt");
    }

    #[test]
    fn use_declarations_expand_groups_and_aliases() {
        let items = parse("use std::time::{Duration, Instant as Clock};\nuse a::b::{self, c};");
        let uses: Vec<(String, String)> = items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Use { target } => Some((i.name.clone(), target.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            uses,
            vec![
                ("Duration".into(), "std::time::Duration".into()),
                ("Clock".into(), "std::time::Instant".into()),
                ("b".into(), "a::b".into()),
                ("c".into(), "a::b::c".into()),
            ]
        );
    }

    #[test]
    fn attrs_are_attached_and_flattened() {
        let items = parse("#[cfg(test)]\n#[derive(Debug, Clone)]\nstruct S;");
        assert_eq!(items[0].attrs, vec!["cfg test", "derive Debug Clone"]);
    }

    #[test]
    fn fn_bodies_span_the_right_tokens() {
        let src = "fn a() { inner_a(); }\nfn b() { inner_b(); }";
        let toks = lex(src).unwrap();
        let items = parse_items(&toks);
        assert_eq!(items.len(), 2);
        let (open, close) = items[0].body.unwrap();
        let body_texts: Vec<&str> = toks[open + 1..close]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body_texts, vec!["inner_a", "(", ")", ";"]);
        assert!(items[1].body.is_some());
    }

    #[test]
    fn struct_fields_recover_names_and_types() {
        let src =
            "struct W<'a> { view: EpochView<'a>, env: &'a Env, nodes: &'a mut [Node], n: u32 }";
        let toks = lex(src).unwrap();
        let items = parse_items(&toks);
        let fields = struct_fields(&toks, &items[0]);
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["view", "env", "nodes", "n"]);
        assert_eq!(fields[0].1[0], "EpochView");
        assert_eq!(fields[1].1[0], "&");
        assert!(fields[2].1.contains(&"mut".to_owned()));
    }

    #[test]
    fn macros_extern_blocks_and_statics_do_not_derail_parsing() {
        let src = "thread_local! { static X: u32 = 0; }\n\
                   extern \"C\" { fn c_side(); }\n\
                   static COUNT: u32 = 0;\n\
                   fn after() {}";
        let items = parse(src);
        assert_eq!(names(&items).last().unwrap().1, "after");
    }

    #[test]
    fn unbalanced_input_terminates() {
        // Garbage in, bounded walk out — never hangs or panics.
        for src in ["fn f() {", "impl {{{", "use a::{b", "mod m { fn g("] {
            let _ = parse(src);
        }
    }
}
