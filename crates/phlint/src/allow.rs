//! The committed `lint.allow` baseline.
//!
//! Every intentional finding in the tree is recorded here explicitly, one
//! line per site, pipe-separated:
//!
//! ```text
//! rule | path[:line] | snippet-substring | reason
//! ```
//!
//! * `rule` — one of the rule names ([`crate::rules::ALL_RULES`]);
//! * `path` — workspace-relative file path (forward slashes), optionally
//!   suffixed with a 1-based `:line` anchor;
//! * `snippet-substring` — a substring of the offending source line. Line
//!   numbers would churn on every edit; matching on content means an entry
//!   keeps covering its site as it moves, and a *new* site (different
//!   code) in the same file still fails CI;
//! * `reason` — mandatory free text: why the site is acceptable.
//!
//! Blank lines and `#` comments are ignored. A line with missing fields or
//! an empty reason is a parse error (exit code 2) — "every entry needs a
//! reason" is policy, machine-enforced.
//!
//! # Assignment, anchors and ambiguity
//!
//! Entries and findings are matched one-to-one by [`Allowlist::assign`]:
//! an entry can silence exactly one finding. When several findings on the
//! same path contain the same needle (two identical timing probes, say),
//! a bare-needle entry is *ambiguous* — the old first-match rule would
//! have silently silenced the wrong line. The fix is the `:line` anchor:
//! the entry claims the candidate nearest its anchor, tolerating up to
//! [`ALLOW_DRIFT`] lines of drift as surrounding code is edited. Two
//! equally-near candidates on different lines, or an un-anchored needle
//! with multiple distinct-line candidates, are hard errors (exit 2), not
//! guesses. `--update-baseline` re-anchors every matched entry.

use crate::rules::{Finding, ALL_RULES};

/// Maximum |finding line − anchor| an anchored entry still covers. Wide
/// enough to survive normal refactors above the site, narrow enough that
/// an entry cannot wander onto an unrelated duplicate across the file.
pub const ALLOW_DRIFT: u32 = 40;

/// One baseline entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule name the entry silences.
    pub rule: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Optional 1-based line anchor (`path:line`).
    pub anchor: Option<u32>,
    /// Substring of the offending line that identifies the site.
    pub needle: String,
    /// Why the site is acceptable (never empty).
    pub reason: String,
    /// 1-based line in `lint.allow` (for stale-entry reporting).
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `lint.allow` format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line: wrong field
    /// count, unknown rule name, or an empty reason.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            let lineno = idx + 1;
            if fields.len() != 4 {
                return Err(format!(
                    "lint.allow:{lineno}: expected 4 `|`-separated fields (rule | path[:line] | snippet | reason), got {}",
                    fields.len()
                ));
            }
            let (rule, path_field, needle, reason) = (fields[0], fields[1], fields[2], fields[3]);
            if !ALL_RULES.contains(&rule) {
                return Err(format!("lint.allow:{lineno}: unknown rule `{rule}`"));
            }
            if needle.is_empty() {
                return Err(format!("lint.allow:{lineno}: empty snippet-substring"));
            }
            if reason.is_empty() {
                return Err(format!(
                    "lint.allow:{lineno}: every entry needs a reason (policy; see DESIGN.md §9)"
                ));
            }
            // `path.rs:123` → anchored; a non-numeric suffix is part of the
            // path (no file in this tree contains `:`, so this is safe).
            let (path, anchor) = match path_field.rsplit_once(':') {
                Some((p, n)) => match n.parse::<u32>() {
                    Ok(a) if a > 0 => (p, Some(a)),
                    _ => {
                        return Err(format!(
                            "lint.allow:{lineno}: bad line anchor `:{n}` (need a positive integer)"
                        ))
                    }
                },
                None => (path_field, None),
            };
            entries.push(AllowEntry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                anchor,
                needle: needle.to_owned(),
                reason: reason.to_owned(),
                line: lineno as u32,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Assigns findings to entries one-to-one. Returns, per finding, the
    /// index of the entry that silences it (`None` = the finding is new).
    ///
    /// Entries claim findings in `lint.allow` order. An anchored entry
    /// considers only candidates within [`ALLOW_DRIFT`] lines of its
    /// anchor and takes the nearest; a bare entry takes its only
    /// candidate.
    ///
    /// # Errors
    ///
    /// * an anchored entry with two equally-near candidates on different
    ///   lines — ambiguous;
    /// * a bare entry whose needle matches findings on more than one line
    ///   — ambiguous, add a `:line` anchor.
    ///
    /// Both are fatal (exit 2): a baseline that cannot say *which* site it
    /// blesses is not a baseline.
    pub fn assign(&self, findings: &[Finding]) -> Result<Vec<Option<usize>>, String> {
        let mut owner: Vec<Option<usize>> = vec![None; findings.len()];
        for (ei, e) in self.entries.iter().enumerate() {
            let candidates: Vec<usize> = findings
                .iter()
                .enumerate()
                .filter(|(fi, f)| {
                    owner[*fi].is_none()
                        && e.rule == f.rule
                        && e.path == f.path
                        && f.snippet.contains(&e.needle)
                        && e.anchor.is_none_or(|a| f.line.abs_diff(a) <= ALLOW_DRIFT)
                })
                .map(|(fi, _)| fi)
                .collect();
            let Some(&first) = candidates.first() else {
                continue; // stale entry; reported by the caller
            };
            let chosen = match e.anchor {
                Some(a) => {
                    let best = candidates
                        .iter()
                        .map(|&fi| findings[fi].line.abs_diff(a))
                        .min()
                        .unwrap_or(0);
                    let nearest: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&fi| findings[fi].line.abs_diff(a) == best)
                        .collect();
                    let lines: Vec<u32> = nearest.iter().map(|&fi| findings[fi].line).collect();
                    if lines.windows(2).any(|w| w[0] != w[1]) {
                        return Err(format!(
                            "lint.allow:{}: ambiguous entry: findings on lines {:?} of {} are equally near anchor :{a}; move the anchor to the intended line",
                            e.line, lines, e.path
                        ));
                    }
                    nearest[0]
                }
                None => {
                    let mut lines: Vec<u32> =
                        candidates.iter().map(|&fi| findings[fi].line).collect();
                    lines.dedup();
                    if lines.len() > 1 {
                        return Err(format!(
                            "lint.allow:{}: ambiguous entry: needle `{}` matches findings on lines {:?} of {}; add a `:line` anchor to the path",
                            e.line, e.needle, lines, e.path
                        ));
                    }
                    first
                }
            };
            owner[chosen] = Some(ei);
        }
        Ok(owner)
    }

    /// Renders a refreshed baseline by rewriting the previous file in
    /// place: comment and blank lines are preserved verbatim wherever
    /// they sit, each entry line that still covers a finding is
    /// re-anchored to that finding's current line (needle and reason
    /// preserved), and stale entry lines are dropped. A dropped entry
    /// can orphan its comment block — that is deliberate; prose is
    /// never deleted by machine.
    ///
    /// # Errors
    ///
    /// Propagates ambiguity errors from [`Allowlist::assign`].
    pub fn render_updated(
        &self,
        previous_text: &str,
        findings: &[Finding],
    ) -> Result<(String, Vec<&AllowEntry>), String> {
        let owner = self.assign(findings)?;
        // Entry index -> the one finding it covers (parse order matches
        // the order of entry lines in `previous_text`).
        let mut covers: Vec<Option<&Finding>> = vec![None; self.entries.len()];
        for (fi, o) in owner.iter().enumerate() {
            if let Some(ei) = o {
                covers[*ei] = Some(&findings[fi]);
            }
        }
        let stale: Vec<&AllowEntry> = covers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(ei, _)| &self.entries[ei])
            .collect();
        let mut out = String::new();
        let mut ei = 0usize;
        for line in previous_text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                out.push_str(line);
                out.push('\n');
                continue;
            }
            if let Some(Some(f)) = covers.get(ei) {
                let e = &self.entries[ei];
                out.push_str(&format!(
                    "{} | {}:{} | {} | {}\n",
                    e.rule, e.path, f.line, e.needle, e.reason
                ));
            }
            ei += 1;
        }
        Ok((out, stale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{DIGEST_TAINT, NONDETERMINISTIC_ITERATION};

    fn finding(rule: &'static str, path: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            snippet: snippet.to_owned(),
            message: String::new(),
        }
    }

    #[test]
    fn parses_and_assigns() {
        let a = Allowlist::parse(
            "# comment\n\
             nondeterministic-iteration | crates/netsim/src/world.rs | cells.retain | buckets pruned, order-independent\n",
        )
        .unwrap();
        assert_eq!(a.entries.len(), 1);
        let hit = [finding(
            NONDETERMINISTIC_ITERATION,
            "crates/netsim/src/world.rs",
            10,
            "self.index.cells.retain(|_, v| !v.is_empty());",
        )];
        assert_eq!(a.assign(&hit).unwrap(), vec![Some(0)]);
        // Different code in the same file is NOT covered.
        let miss = [finding(
            NONDETERMINISTIC_ITERATION,
            "crates/netsim/src/world.rs",
            10,
            "for x in sneaky.values() {",
        )];
        assert_eq!(a.assign(&miss).unwrap(), vec![None]);
        // Same snippet in a different file is NOT covered.
        let other = [finding(
            NONDETERMINISTIC_ITERATION,
            "crates/netsim/src/trace.rs",
            10,
            "cells.retain(|_, v| true);",
        )];
        assert_eq!(a.assign(&other).unwrap(), vec![None]);
    }

    #[test]
    fn shared_needle_without_anchor_is_a_hard_error() {
        // Two identical probes: the un-anchored entry cannot say which one
        // it blesses, so it must not silently cover both (the old bug) or
        // either (a guess).
        let a = Allowlist::parse(
            "digest-taint | crates/peerhood/src/sim.rs | Instant::now | epoch timing probe\n",
        )
        .unwrap();
        let f = [
            finding(
                DIGEST_TAINT,
                "crates/peerhood/src/sim.rs",
                100,
                "let t0 = self.collect_timing.then(Instant::now);",
            ),
            finding(
                DIGEST_TAINT,
                "crates/peerhood/src/sim.rs",
                113,
                "let t0 = self.collect_timing.then(Instant::now);",
            ),
        ];
        let err = a.assign(&f).unwrap_err();
        assert!(err.contains("ambiguous"), "{err}");
        assert!(err.contains(":line"), "{err}");
    }

    #[test]
    fn anchors_disambiguate_and_claim_one_to_one() {
        let a = Allowlist::parse(
            "digest-taint | crates/peerhood/src/sim.rs:100 | Instant::now | probe A\n\
             digest-taint | crates/peerhood/src/sim.rs:113 | Instant::now | probe B\n",
        )
        .unwrap();
        let f = [
            finding(
                DIGEST_TAINT,
                "crates/peerhood/src/sim.rs",
                102,
                "then(Instant::now);",
            ),
            finding(
                DIGEST_TAINT,
                "crates/peerhood/src/sim.rs",
                115,
                "then(Instant::now);",
            ),
        ];
        assert_eq!(a.assign(&f).unwrap(), vec![Some(0), Some(1)]);
        // One entry never covers two findings: with only the first entry,
        // the second probe stays a new finding.
        let a1 = Allowlist::parse(
            "digest-taint | crates/peerhood/src/sim.rs:100 | Instant::now | probe A\n",
        )
        .unwrap();
        assert_eq!(a1.assign(&f).unwrap(), vec![Some(0), None]);
    }

    #[test]
    fn anchor_drift_is_bounded() {
        let a = Allowlist::parse(
            "digest-taint | crates/peerhood/src/sim.rs:100 | Instant::now | timing probe\n",
        )
        .unwrap();
        let near = [finding(
            DIGEST_TAINT,
            "crates/peerhood/src/sim.rs",
            100 + ALLOW_DRIFT,
            "Instant::now",
        )];
        assert_eq!(a.assign(&near).unwrap(), vec![Some(0)]);
        let far = [finding(
            DIGEST_TAINT,
            "crates/peerhood/src/sim.rs",
            101 + ALLOW_DRIFT,
            "Instant::now",
        )];
        assert_eq!(a.assign(&far).unwrap(), vec![None]);
    }

    #[test]
    fn equidistant_anchor_is_a_hard_error() {
        let a = Allowlist::parse(
            "digest-taint | crates/peerhood/src/sim.rs:100 | Instant::now | timing probe\n",
        )
        .unwrap();
        let f = [
            finding(
                DIGEST_TAINT,
                "crates/peerhood/src/sim.rs",
                95,
                "Instant::now",
            ),
            finding(
                DIGEST_TAINT,
                "crates/peerhood/src/sim.rs",
                105,
                "Instant::now",
            ),
        ];
        let err = a.assign(&f).unwrap_err();
        assert!(err.contains("equally near"), "{err}");
    }

    #[test]
    fn reason_is_mandatory() {
        let err = Allowlist::parse("relaxed-ordering | a.rs | x | ").unwrap_err();
        assert!(err.contains("reason"), "{err}");
        let err = Allowlist::parse("relaxed-ordering | a.rs | x").unwrap_err();
        assert!(err.contains("4"), "{err}");
    }

    #[test]
    fn unknown_rules_and_bad_anchors_rejected() {
        let err = Allowlist::parse("made-up-rule | a.rs | x | because").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = Allowlist::parse("relaxed-ordering | a.rs:0 | x | because").unwrap_err();
        assert!(err.contains("anchor"), "{err}");
        let err = Allowlist::parse("relaxed-ordering | a.rs:12x | x | because").unwrap_err();
        assert!(err.contains("anchor"), "{err}");
    }

    #[test]
    fn render_updated_reanchors_and_drops_stale() {
        let prev = "# header\n# more header\n\
                    \n# -- section comment, must survive in place ----\n\
                    digest-taint | crates/peerhood/src/sim.rs:90 | Instant::now | timing probe\n\
                    relaxed-ordering | crates/netsim/src/gone.rs | load | stale site\n";
        let a = Allowlist::parse(prev).unwrap();
        let f = [finding(
            DIGEST_TAINT,
            "crates/peerhood/src/sim.rs",
            97,
            "Instant::now",
        )];
        let (text, stale) = a.render_updated(prev, &f).unwrap();
        assert!(text.starts_with("# header\n# more header\n"), "{text}");
        assert!(
            text.contains(
                "# -- section comment, must survive in place ----\n\
                 digest-taint | crates/peerhood/src/sim.rs:97 | Instant::now | timing probe"
            ),
            "interstitial comments stay next to their entries: {text}"
        );
        assert!(!text.contains("gone.rs"), "{text}");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "crates/netsim/src/gone.rs");
    }
}
