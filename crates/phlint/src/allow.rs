//! The committed `lint.allow` baseline.
//!
//! Every intentional finding in the tree is recorded here explicitly, one
//! line per site, pipe-separated:
//!
//! ```text
//! rule | path | snippet-substring | reason
//! ```
//!
//! * `rule` — one of the rule names ([`crate::rules::ALL_RULES`]);
//! * `path` — workspace-relative file path (forward slashes);
//! * `snippet-substring` — a substring of the offending source line. Line
//!   numbers would churn on every edit; matching on content means an entry
//!   keeps covering its site as it moves, and a *new* site (different
//!   code) in the same file still fails CI;
//! * `reason` — mandatory free text: why the site is acceptable.
//!
//! Blank lines and `#` comments are ignored. A line with missing fields or
//! an empty reason is a parse error (exit code 2) — "every entry needs a
//! reason" is policy, machine-enforced.

use crate::rules::{Finding, ALL_RULES};

/// One baseline entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule name the entry silences.
    pub rule: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Substring of the offending line that identifies the site.
    pub needle: String,
    /// Why the site is acceptable (never empty).
    pub reason: String,
    /// 1-based line in `lint.allow` (for stale-entry reporting).
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `lint.allow` format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line: wrong field
    /// count, unknown rule name, or an empty reason.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            let lineno = idx + 1;
            if fields.len() != 4 {
                return Err(format!(
                    "lint.allow:{lineno}: expected 4 `|`-separated fields (rule | path | snippet | reason), got {}",
                    fields.len()
                ));
            }
            let (rule, path, needle, reason) = (fields[0], fields[1], fields[2], fields[3]);
            if !ALL_RULES.contains(&rule) {
                return Err(format!("lint.allow:{lineno}: unknown rule `{rule}`"));
            }
            if needle.is_empty() {
                return Err(format!("lint.allow:{lineno}: empty snippet-substring"));
            }
            if reason.is_empty() {
                return Err(format!(
                    "lint.allow:{lineno}: every entry needs a reason (policy; see DESIGN.md §9)"
                ));
            }
            entries.push(AllowEntry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                needle: needle.to_owned(),
                reason: reason.to_owned(),
                line: lineno as u32,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Index of the first entry covering `f`, if any.
    pub fn matches(&self, f: &Finding) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.rule == f.rule && e.path == f.path && f.snippet.contains(&e.needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::NONDETERMINISTIC_ITERATION;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line: 1,
            snippet: snippet.to_owned(),
            message: String::new(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse(
            "# comment\n\
             nondeterministic-iteration | crates/netsim/src/world.rs | cells.retain | buckets pruned, order-independent\n",
        )
        .unwrap();
        assert_eq!(a.entries.len(), 1);
        assert!(a
            .matches(&finding(
                NONDETERMINISTIC_ITERATION,
                "crates/netsim/src/world.rs",
                "self.index.cells.retain(|_, v| !v.is_empty());"
            ))
            .is_some());
        // Different code in the same file is NOT covered.
        assert!(a
            .matches(&finding(
                NONDETERMINISTIC_ITERATION,
                "crates/netsim/src/world.rs",
                "for x in sneaky.values() {"
            ))
            .is_none());
        // Same snippet in a different file is NOT covered.
        assert!(a
            .matches(&finding(
                NONDETERMINISTIC_ITERATION,
                "crates/netsim/src/trace.rs",
                "cells.retain(|_, v| true);"
            ))
            .is_none());
    }

    #[test]
    fn reason_is_mandatory() {
        let err = Allowlist::parse("relaxed-ordering | a.rs | x | ").unwrap_err();
        assert!(err.contains("reason"), "{err}");
        let err = Allowlist::parse("relaxed-ordering | a.rs | x").unwrap_err();
        assert!(err.contains("4"), "{err}");
    }

    #[test]
    fn unknown_rules_rejected() {
        let err = Allowlist::parse("made-up-rule | a.rs | x | because").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }
}
