//! Scripted SNS user sessions: the Table 8 tasks, with a virtual stopwatch.
//!
//! Each method mirrors what the thesis's experimenters timed with a real
//! stopwatch: navigate, type, wait for pages, read, click. The session
//! interacts with a real [`CentralServer`] — searches actually search, joins
//! actually join — while accumulating page, render and input time.

use std::time::Duration;

use netsim::SimRng;

use crate::central::CentralServer;
use crate::device::AccessDevice;
use crate::site::{PageKind, SiteProfile};

/// One user's browsing session against one site from one device.
#[derive(Debug)]
pub struct SnsSession {
    site: SiteProfile,
    device: AccessDevice,
    rng: SimRng,
    elapsed: Duration,
}

impl SnsSession {
    /// Starts a session (the user is assumed already logged in, as in the
    /// thesis's measurements).
    pub fn new(site: SiteProfile, device: AccessDevice, rng: SimRng) -> Self {
        SnsSession {
            site,
            device,
            rng,
            elapsed: Duration::ZERO,
        }
    }

    /// Virtual time spent so far.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Resets the stopwatch (between separately timed tasks).
    pub fn reset_stopwatch(&mut self) {
        self.elapsed = Duration::ZERO;
    }

    /// The site name.
    pub fn site_name(&self) -> &str {
        &self.site.name
    }

    /// The device name.
    pub fn device_name(&self) -> &str {
        &self.device.name
    }

    fn load_page(&mut self, kind: PageKind) {
        let w = self.site.weight(kind).clone();
        self.elapsed += self
            .device
            .link
            .fetch_time(w.requests, w.bytes, &mut self.rng);
        self.elapsed += self.device.render_time(w.complexity, &mut self.rng);
        // The user scans what loaded before acting on it — stopwatch
        // measurements of humans driving a browser include this.
        self.elapsed += self.device.scan_time(w.scan, &mut self.rng);
    }

    fn type_text(&mut self, text: &str) {
        self.elapsed += self.device.typing_time(text.chars().count(), &mut self.rng);
    }

    fn click(&mut self) {
        self.elapsed += self.device.click(&mut self.rng);
    }

    /// Table 8 task 1: search for an interest group. Opens the search form,
    /// types the query, loads the results, picks the first match and opens
    /// its group page. Returns the group found, if any.
    pub fn search_group(&mut self, server: &mut CentralServer, query: &str) -> Option<String> {
        self.load_page(PageKind::SearchForm);
        self.type_text(query);
        self.click(); // submit
        self.load_page(PageKind::SearchResults);
        let hits = server.search_groups(query);
        let found = hits.first().cloned()?;
        self.click(); // choose the first result
        self.load_page(PageKind::GroupPage);
        Some(found)
    }

    /// Table 8 task 2: join the group currently open. Returns whether the
    /// join succeeded.
    pub fn join_group(&mut self, server: &mut CentralServer, user: &str, group: &str) -> bool {
        self.click(); // the Join button
        if self.site.join_needs_confirmation {
            self.load_page(PageKind::JoinConfirmation);
            self.click(); // confirm
        }
        let ok = server.join_group(user, group);
        // The site lands back on the (now joined) group page.
        self.load_page(PageKind::GroupPage);
        ok
    }

    /// Table 8 task 3: view the member list of a group.
    pub fn view_member_list(
        &mut self,
        server: &mut CentralServer,
        group: &str,
    ) -> Option<Vec<String>> {
        self.click(); // the Members tab
        self.load_page(PageKind::MemberList);
        server.member_list(group)
    }

    /// Table 8 task 4: open one member's profile from the member list.
    pub fn view_member_profile(&mut self, server: &mut CentralServer, member: &str) -> bool {
        self.click(); // the member's name
        self.load_page(PageKind::ProfilePage);
        server.profile(member).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> CentralServer {
        let mut s = CentralServer::new();
        s.register("user1");
        s.register("member-a");
        s.create_group("England Football");
        s.join_group("member-a", "England Football");
        s
    }

    fn session(site: SiteProfile, device: AccessDevice, seed: u64) -> SnsSession {
        SnsSession::new(site, device, SimRng::from_seed(seed))
    }

    #[test]
    fn full_task_sequence_works_functionally() {
        let mut srv = server();
        let mut s = session(SiteProfile::facebook(), AccessDevice::nokia_n810(), 1);
        let group = s.search_group(&mut srv, "england football").expect("found");
        assert_eq!(group, "England Football");
        assert!(s.join_group(&mut srv, "user1", &group));
        let members = s.view_member_list(&mut srv, &group).expect("listed");
        assert!(members.contains(&"user1".to_owned()));
        assert!(s.view_member_profile(&mut srv, "member-a"));
        assert!(!s.view_member_profile(&mut srv, "ghost"));
    }

    #[test]
    fn searching_a_missing_group_returns_none_but_costs_time() {
        let mut srv = server();
        let mut s = session(SiteProfile::hi5(), AccessDevice::nokia_n95(), 2);
        assert!(s.search_group(&mut srv, "curling").is_none());
        assert!(s.elapsed() > Duration::from_secs(5));
    }

    #[test]
    fn n95_session_is_slower_than_n810() {
        let mut t810 = Duration::ZERO;
        let mut t95 = Duration::ZERO;
        for seed in 0..10 {
            let mut srv = server();
            let mut a = session(SiteProfile::facebook(), AccessDevice::nokia_n810(), seed);
            a.search_group(&mut srv, "football");
            t810 += a.elapsed();
            let mut srv = server();
            let mut b = session(SiteProfile::facebook(), AccessDevice::nokia_n95(), seed);
            b.search_group(&mut srv, "football");
            t95 += b.elapsed();
        }
        assert!(t95 > t810, "{t95:?} vs {t810:?}");
    }

    #[test]
    fn stopwatch_resets_between_tasks() {
        let mut srv = server();
        let mut s = session(SiteProfile::facebook(), AccessDevice::nokia_n810(), 3);
        s.search_group(&mut srv, "football");
        assert!(s.elapsed() > Duration::ZERO);
        s.reset_stopwatch();
        assert_eq!(s.elapsed(), Duration::ZERO);
    }

    #[test]
    fn join_on_hi5_costs_more_than_on_facebook() {
        let mut fb_total = Duration::ZERO;
        let mut hi5_total = Duration::ZERO;
        for seed in 0..10 {
            let mut srv = server();
            let mut fb = session(SiteProfile::facebook(), AccessDevice::nokia_n810(), seed);
            fb.join_group(&mut srv, "user1", "England Football");
            fb_total += fb.elapsed();
            let mut srv = server();
            let mut h5 = session(SiteProfile::hi5(), AccessDevice::nokia_n810(), seed);
            h5.join_group(&mut srv, "user1", "England Football");
            hi5_total += h5.elapsed();
        }
        assert!(hi5_total > fb_total);
    }
}
