//! The cellular data link between a 2008 phone and the SNS.

use std::time::Duration;

use netsim::SimRng;

/// A cellular (GPRS/3G-era) data link model.
///
/// A page load issues several HTTP requests; each pays round-trip latency,
/// and the total payload is serialized at the link's effective bandwidth.
#[derive(Clone, Debug, PartialEq)]
pub struct CellularLink {
    /// Mean round-trip time per HTTP request.
    pub rtt: Duration,
    /// Symmetric uniform jitter on the RTT.
    pub rtt_jitter: Duration,
    /// Effective downlink bandwidth in bits per second.
    pub bandwidth_bps: f64,
}

impl CellularLink {
    /// The operator data service used in the thesis's 2008 experiments:
    /// a loaded 3G/EDGE mix with ~600 ms RTTs and ~140 kbit/s effective
    /// throughput.
    pub fn operator_2008() -> Self {
        CellularLink {
            rtt: Duration::from_millis(600),
            rtt_jitter: Duration::from_millis(200),
            bandwidth_bps: 140_000.0,
        }
    }

    /// Samples the network time to fetch `bytes` over `requests` HTTP
    /// round trips.
    pub fn fetch_time(&self, requests: u32, bytes: usize, rng: &mut SimRng) -> Duration {
        let mut total = Duration::ZERO;
        for _ in 0..requests {
            total += rng.jittered(self.rtt, self.rtt_jitter);
        }
        total + Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

impl Default for CellularLink {
    fn default() -> Self {
        CellularLink::operator_2008()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_time_scales_with_requests_and_bytes() {
        let link = CellularLink::operator_2008();
        let mut rng = SimRng::from_seed(1);
        let small = link.fetch_time(1, 10_000, &mut rng);
        let many_requests = link.fetch_time(8, 10_000, &mut rng);
        let big_payload = link.fetch_time(1, 200_000, &mut rng);
        assert!(many_requests > small * 3);
        assert!(big_payload > small * 3);
    }

    #[test]
    fn a_2008_page_takes_seconds() {
        let link = CellularLink::operator_2008();
        let mut rng = SimRng::from_seed(2);
        // 6 requests, 90 kB — a typical mobile page of the era.
        let t = link.fetch_time(6, 90_000, &mut rng);
        assert!(t > Duration::from_secs(5), "{t:?}");
        assert!(t < Duration::from_secs(20), "{t:?}");
    }
}
