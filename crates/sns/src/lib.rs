//! # ph-sns — the centralized social-networking-site baseline
//!
//! Table 8 of the thesis compares PeerHood Community against *accessing a
//! traditional SNS (Facebook, Hi5) from a mobile device* (Nokia N810 / N95)
//! over the cellular network. This crate is that baseline, rebuilt as a
//! simulator:
//!
//! * [`central::CentralServer`] — an actual centralized SNS backend with
//!   users, interest groups, search, join, member listings and profiles
//!   (the centralized infrastructure the thesis says SNSs need and
//!   PeerHood does not);
//! * [`network::CellularLink`] — a 2008 cellular data link (RTT, bandwidth);
//! * [`device::AccessDevice`] — browser/input characteristics of the two
//!   Nokia devices used in the thesis experiments;
//! * [`site::SiteProfile`] — page weights and flow lengths of a Facebook- or
//!   Hi5-class mobile site of 2008;
//! * [`session::SnsSession`] — scripted user sessions executing the four
//!   Table 8 tasks against the central server while accumulating virtual
//!   time.
//!
//! ## Example
//!
//! ```rust
//! use ph_sns::central::CentralServer;
//! use ph_sns::device::AccessDevice;
//! use ph_sns::session::SnsSession;
//! use ph_sns::site::SiteProfile;
//! use netsim::SimRng;
//!
//! let mut server = CentralServer::new();
//! server.register("user1");
//! server.create_group("England Football");
//! let mut session = SnsSession::new(
//!     SiteProfile::facebook(),
//!     AccessDevice::nokia_n810(),
//!     SimRng::from_seed(1),
//! );
//! let found = session.search_group(&mut server, "england football").expect("group exists");
//! session.join_group(&mut server, "user1", &found);
//! assert!(session.elapsed().as_secs() > 10, "2008 mobile SNS use is slow");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod central;
pub mod device;
pub mod network;
pub mod session;
pub mod site;

pub use central::CentralServer;
pub use device::AccessDevice;
pub use network::CellularLink;
pub use session::SnsSession;
pub use site::SiteProfile;
