//! Static literature tables from the thesis, reproduced as data.
//!
//! Tables 1 and 2 of the thesis carry no measurable system behaviour (they
//! survey WLAN standards and SNS user counts as of 2008); they are kept
//! here as documented constants so `repro tables-static` can reprint them
//! and so the numbers the text cites stay source-controlled.

/// One row of Table 1 (WLAN standards).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WlanStandard {
    /// Standard name.
    pub standard: &'static str,
    /// Claimed data rate.
    pub data_rate: &'static str,
    /// Security mechanisms listed by the thesis.
    pub security: &'static str,
}

/// Table 1: WLAN standards (source: the thesis, after WLANA).
pub const WLAN_STANDARDS: &[WlanStandard] = &[
    WlanStandard {
        standard: "IEEE 802.11",
        data_rate: "up to 2 Mbps in the 2.4 GHz band",
        security: "WEP, WPA",
    },
    WlanStandard {
        standard: "IEEE 802.11a (Wi-Fi)",
        data_rate: "up to 54 Mbps in the 5 GHz band",
        security: "WEP and WPA",
    },
    WlanStandard {
        standard: "IEEE 802.11b (Wi-Fi)",
        data_rate: "up to 11 Mbps in the 2.4 GHz band",
        security: "WEP and WPA",
    },
    WlanStandard {
        standard: "IEEE 802.11g (Wi-Fi)",
        data_rate: "up to 54 Mbps in the 2.4 GHz band",
        security: "WEP and WPA",
    },
    WlanStandard {
        standard: "IEEE 802.16/a (WiMAX)",
        data_rate: "10 to 66 GHz range",
        security: "DES3 and AES",
    },
];

/// One row of Table 2 (social networking sites and registered users,
/// 2008).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnsCatalogEntry {
    /// Site name.
    pub name: &'static str,
    /// Site URL.
    pub url: &'static str,
    /// The thesis's description of its focus.
    pub focus: &'static str,
    /// Registered users as reported in 2008.
    pub registered_users: u64,
}

/// Table 2: social networking sites and their registered users (2008).
pub const SNS_CATALOG: &[SnsCatalogEntry] = &[
    SnsCatalogEntry {
        name: "MySpace",
        url: "myspace.com",
        focus: "Videos, movies, IM, news, blogs, chat",
        registered_users: 217_000_000,
    },
    SnsCatalogEntry {
        name: "Facebook",
        url: "facebook.com",
        focus: "Upload photos, post videos, get news, tag friends",
        registered_users: 58_000_000,
    },
    SnsCatalogEntry {
        name: "Friendster",
        url: "friendster.com",
        focus: "Search for and connect with friends and classmates",
        registered_users: 50_000_000,
    },
    SnsCatalogEntry {
        name: "Classmates",
        url: "classmates.com",
        focus: "School, college, work and military groups",
        registered_users: 40_000_000,
    },
    SnsCatalogEntry {
        name: "Windows Live Spaces",
        url: "spaces.live.com",
        focus: "Blogging",
        registered_users: 40_000_000,
    },
    SnsCatalogEntry {
        name: "Broadcaster",
        url: "broadcaster.com",
        focus: "Video sharing and webcam chat",
        registered_users: 26_000_000,
    },
    SnsCatalogEntry {
        name: "Fotolog",
        url: "fotolog.com",
        focus: "338 million photos around the world",
        registered_users: 12_695_007,
    },
    SnsCatalogEntry {
        name: "Flickr",
        url: "flickr.com",
        focus: "Photo sharing",
        registered_users: 4_000_000,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_sorted_by_user_count_like_the_thesis() {
        let users: Vec<u64> = SNS_CATALOG.iter().map(|e| e.registered_users).collect();
        let mut sorted = users.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(users, sorted);
    }

    #[test]
    fn myspace_tops_the_2008_list() {
        assert_eq!(SNS_CATALOG[0].name, "MySpace");
        assert_eq!(SNS_CATALOG[0].registered_users, 217_000_000);
    }

    #[test]
    fn table1_has_five_standards() {
        assert_eq!(WLAN_STANDARDS.len(), 5);
        assert!(WLAN_STANDARDS.iter().any(|w| w.standard.contains("WiMAX")));
    }
}
