//! The centralized SNS backend.
//!
//! "SNS needs a centralized server and a centralized database system. Users'
//! registration and all other essential information are stored in the
//! centralized database and users access the centralized server through a
//! web page" (thesis §3.2). This is that server: a user directory and an
//! interest-group database with the operations the Table 8 tasks exercise —
//! search, join, member listing, profile view. Note what it demonstrates by
//! existing: without dynamic group discovery, groups must be created and
//! joined *explicitly*.

use std::collections::{BTreeMap, BTreeSet};

/// A user profile stored in the central database.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnsProfile {
    /// Free-form profile fields.
    pub fields: BTreeMap<String, String>,
    /// Wall comments, oldest first, as `(author, text)`.
    pub comments: Vec<(String, String)>,
}

/// The centralized social-networking-site server.
#[derive(Clone, Debug, Default)]
pub struct CentralServer {
    users: BTreeMap<String, SnsProfile>,
    groups: BTreeMap<String, BTreeSet<String>>,
}

impl CentralServer {
    /// Creates an empty site.
    pub fn new() -> Self {
        CentralServer::default()
    }

    /// Registers a user; idempotent.
    pub fn register(&mut self, user: impl Into<String>) {
        self.users.entry(user.into()).or_default();
    }

    /// Creates an interest group; idempotent. (On an SNS somebody must do
    /// this by hand — there is no dynamic discovery.)
    pub fn create_group(&mut self, name: impl Into<String>) {
        self.groups.entry(name.into()).or_default();
    }

    /// Case-insensitive substring search over group names, returning
    /// matches in name order.
    pub fn search_groups(&self, query: &str) -> Vec<String> {
        let q = query.to_lowercase();
        self.groups
            .keys()
            .filter(|g| g.to_lowercase().contains(&q))
            .cloned()
            .collect()
    }

    /// Adds a registered user to a group; returns `false` for an unknown
    /// user or group.
    pub fn join_group(&mut self, user: &str, group: &str) -> bool {
        if !self.users.contains_key(user) {
            return false;
        }
        match self.groups.get_mut(group) {
            Some(members) => {
                members.insert(user.to_owned());
                true
            }
            None => false,
        }
    }

    /// The member list of a group.
    pub fn member_list(&self, group: &str) -> Option<Vec<String>> {
        self.groups.get(group).map(|m| m.iter().cloned().collect())
    }

    /// A user's profile.
    pub fn profile(&self, user: &str) -> Option<&SnsProfile> {
        self.users.get(user)
    }

    /// Posts a wall comment on a user's profile.
    pub fn post_comment(&mut self, user: &str, author: &str, text: &str) -> bool {
        match self.users.get_mut(user) {
            Some(p) => {
                p.comments.push((author.to_owned(), text.to_owned()));
                true
            }
            None => false,
        }
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_profile() {
        let mut s = CentralServer::new();
        s.register("alice");
        s.register("alice"); // idempotent
        assert_eq!(s.user_count(), 1);
        assert!(s.profile("alice").is_some());
        assert!(s.profile("ghost").is_none());
    }

    #[test]
    fn search_is_case_insensitive_substring() {
        let mut s = CentralServer::new();
        s.create_group("England Football");
        s.create_group("Finnish Football");
        s.create_group("Chess Club");
        assert_eq!(
            s.search_groups("football"),
            vec!["England Football", "Finnish Football"]
        );
        assert_eq!(s.search_groups("ENGLAND"), vec!["England Football"]);
        assert!(s.search_groups("sauna").is_empty());
    }

    #[test]
    fn join_requires_registration_and_existing_group() {
        let mut s = CentralServer::new();
        s.create_group("g");
        assert!(!s.join_group("alice", "g"), "unregistered user");
        s.register("alice");
        assert!(!s.join_group("alice", "nope"), "missing group");
        assert!(s.join_group("alice", "g"));
        assert_eq!(s.member_list("g").unwrap(), vec!["alice"]);
        assert!(s.member_list("nope").is_none());
    }

    #[test]
    fn comments_append_in_order() {
        let mut s = CentralServer::new();
        s.register("bob");
        assert!(s.post_comment("bob", "alice", "hi"));
        assert!(s.post_comment("bob", "carol", "yo"));
        assert!(!s.post_comment("ghost", "alice", "x"));
        let p = s.profile("bob").unwrap();
        assert_eq!(p.comments.len(), 2);
        assert_eq!(p.comments[0].0, "alice");
    }
}
