//! Site profiles: the page weights and flow lengths of 2008 mobile SNSs.

/// The kind of page a task step loads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PageKind {
    /// The search form.
    SearchForm,
    /// A search-results listing.
    SearchResults,
    /// A group's landing page.
    GroupPage,
    /// The confirmation page after joining a group.
    JoinConfirmation,
    /// A group's member listing.
    MemberList,
    /// A member's profile page (the heaviest page of the era: photos,
    /// wall, widgets).
    ProfilePage,
}

/// Weight of one page kind on a given site.
#[derive(Clone, Debug, PartialEq)]
pub struct PageWeight {
    /// HTTP requests needed (HTML + scripts + images).
    pub requests: u32,
    /// Total bytes transferred.
    pub bytes: usize,
    /// Rendering complexity relative to an average page.
    pub complexity: f64,
    /// How long the user scans this page relative to the device's scan
    /// base (reading a search-result listing takes far longer than
    /// glancing at a confirmation page).
    pub scan: f64,
}

/// A 2008 mobile-SNS site profile.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteProfile {
    /// Site name as it appears in Table 8.
    pub name: String,
    /// Whether joining a group needs an extra confirmation page (Hi5's
    /// flow did; Facebook joined in one step).
    pub join_needs_confirmation: bool,
    /// Per-kind page weights.
    weights: Vec<(PageKind, PageWeight)>,
}

impl SiteProfile {
    /// A Facebook-class site: heavier pages, tighter flows.
    pub fn facebook() -> Self {
        SiteProfile {
            name: "Facebook".to_owned(),
            join_needs_confirmation: false,
            weights: vec![
                (
                    PageKind::SearchForm,
                    PageWeight {
                        requests: 4,
                        bytes: 45_000,
                        complexity: 0.6,
                        scan: 1.5,
                    },
                ),
                (
                    PageKind::SearchResults,
                    PageWeight {
                        requests: 6,
                        bytes: 85_000,
                        complexity: 1.0,
                        scan: 5.5,
                    },
                ),
                (
                    PageKind::GroupPage,
                    PageWeight {
                        requests: 7,
                        bytes: 110_000,
                        complexity: 1.2,
                        scan: 3.5,
                    },
                ),
                (
                    PageKind::JoinConfirmation,
                    PageWeight {
                        requests: 3,
                        bytes: 40_000,
                        complexity: 0.5,
                        scan: 1.0,
                    },
                ),
                (
                    PageKind::MemberList,
                    PageWeight {
                        requests: 4,
                        bytes: 60_000,
                        complexity: 0.7,
                        scan: 1.0,
                    },
                ),
                (
                    PageKind::ProfilePage,
                    PageWeight {
                        requests: 8,
                        bytes: 130_000,
                        complexity: 1.4,
                        scan: 1.5,
                    },
                ),
            ],
        }
    }

    /// A Hi5-class site: lighter pages, but longer flows (an extra join
    /// confirmation, busier listing pages).
    pub fn hi5() -> Self {
        SiteProfile {
            name: "Hi5".to_owned(),
            join_needs_confirmation: true,
            weights: vec![
                (
                    PageKind::SearchForm,
                    PageWeight {
                        requests: 3,
                        bytes: 40_000,
                        complexity: 0.6,
                        scan: 1.3,
                    },
                ),
                (
                    PageKind::SearchResults,
                    PageWeight {
                        requests: 5,
                        bytes: 70_000,
                        complexity: 0.9,
                        scan: 4.8,
                    },
                ),
                (
                    PageKind::GroupPage,
                    PageWeight {
                        requests: 6,
                        bytes: 95_000,
                        complexity: 1.1,
                        scan: 3.0,
                    },
                ),
                (
                    PageKind::JoinConfirmation,
                    PageWeight {
                        requests: 4,
                        bytes: 55_000,
                        complexity: 0.7,
                        scan: 1.0,
                    },
                ),
                (
                    PageKind::MemberList,
                    PageWeight {
                        requests: 5,
                        bytes: 80_000,
                        complexity: 1.0,
                        scan: 3.2,
                    },
                ),
                (
                    PageKind::ProfilePage,
                    PageWeight {
                        requests: 9,
                        bytes: 150_000,
                        complexity: 1.6,
                        scan: 4.5,
                    },
                ),
            ],
        }
    }

    /// The weight of one page kind.
    ///
    /// # Panics
    ///
    /// Panics if the profile is missing the kind (all constructors define
    /// every kind).
    pub fn weight(&self, kind: PageKind) -> &PageWeight {
        self.weights
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, w)| w)
            .expect("site profiles define every page kind")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_define_every_page_kind() {
        for site in [SiteProfile::facebook(), SiteProfile::hi5()] {
            for kind in [
                PageKind::SearchForm,
                PageKind::SearchResults,
                PageKind::GroupPage,
                PageKind::JoinConfirmation,
                PageKind::MemberList,
                PageKind::ProfilePage,
            ] {
                let w = site.weight(kind);
                assert!(w.requests > 0 && w.bytes > 0, "{} {kind:?}", site.name);
            }
        }
    }

    #[test]
    fn profile_pages_are_the_heaviest() {
        for site in [SiteProfile::facebook(), SiteProfile::hi5()] {
            assert!(
                site.weight(PageKind::ProfilePage).bytes > site.weight(PageKind::SearchForm).bytes
            );
        }
    }

    #[test]
    fn hi5_join_flow_is_longer() {
        assert!(SiteProfile::hi5().join_needs_confirmation);
        assert!(!SiteProfile::facebook().join_needs_confirmation);
    }
}
