//! Access-device profiles: the two Nokia devices of Table 8.
//!
//! The same SNS task takes visibly longer on the N95 than on the N810 in
//! the thesis's measurements (e.g. viewing the member list: 8 s vs 31 s on
//! Facebook). The N810 internet tablet had a larger screen, a hardware
//! keyboard and a desktop-class browser; the N95's S60 browser rendered the
//! same pages much more slowly and text entry on its keypad was slower.
//! These profiles capture that as render and input multipliers.

use std::time::Duration;

use netsim::SimRng;

/// Browser/input characteristics of one access device, including the data
/// link it reaches the internet over (the N810 had no cellular modem — it
/// browsed over WLAN/operator hotspots — while the N95 used the 3G/EDGE
/// network; a large part of Table 8's device gap is this link difference).
#[derive(Clone, Debug, PartialEq)]
pub struct AccessDevice {
    /// Device name as it appears in Table 8.
    pub name: String,
    /// The data link this device browses over.
    pub link: crate::network::CellularLink,
    /// Base time to lay out and render an average page.
    pub render_base: Duration,
    /// Multiplier on page complexity (heavier pages scale with this).
    pub render_factor: f64,
    /// Base time the user spends scanning a rendered page before acting
    /// (small screens take longer to read).
    pub scan_base: Duration,
    /// Time to type one character of user input.
    pub per_char_input: Duration,
    /// Time to locate and activate a link/button on the rendered page.
    pub click_time: Duration,
    /// Jitter applied to interaction times.
    pub jitter: Duration,
}

impl AccessDevice {
    /// The Nokia N810 internet tablet (Maemo, hardware keyboard,
    /// desktop-class browser, WLAN connectivity).
    pub fn nokia_n810() -> Self {
        AccessDevice {
            name: "Nokia N810".to_owned(),
            link: crate::network::CellularLink {
                rtt: Duration::from_millis(180),
                rtt_jitter: Duration::from_millis(60),
                bandwidth_bps: 900_000.0,
            },
            render_base: Duration::from_millis(1_600),
            render_factor: 1.0,
            scan_base: Duration::from_millis(3_200),
            per_char_input: Duration::from_millis(350),
            click_time: Duration::from_millis(1_500),
            jitter: Duration::from_millis(400),
        }
    }

    /// The Nokia N95 smartphone (S60 browser, numeric keypad text entry,
    /// 3G/EDGE cellular data).
    pub fn nokia_n95() -> Self {
        AccessDevice {
            name: "Nokia N95".to_owned(),
            link: crate::network::CellularLink {
                rtt: Duration::from_millis(650),
                rtt_jitter: Duration::from_millis(200),
                bandwidth_bps: 150_000.0,
            },
            render_base: Duration::from_millis(3_400),
            render_factor: 1.0,
            scan_base: Duration::from_millis(3_600),
            per_char_input: Duration::from_millis(750),
            click_time: Duration::from_millis(2_800),
            jitter: Duration::from_millis(800),
        }
    }

    /// Samples the time to render a page of the given relative
    /// `complexity` (1.0 = average page).
    pub fn render_time(&self, complexity: f64, rng: &mut SimRng) -> Duration {
        let base = self.render_base.as_secs_f64() * complexity.max(0.1) * self.render_factor;
        rng.jittered(Duration::from_secs_f64(base), self.jitter)
    }

    /// Samples the time the user spends scanning a page of the given
    /// complexity before their next action.
    pub fn scan_time(&self, complexity: f64, rng: &mut SimRng) -> Duration {
        let base = self.scan_base.as_secs_f64() * complexity.max(0.2);
        rng.jittered(Duration::from_secs_f64(base), self.jitter)
    }

    /// Samples the time to type `chars` characters.
    pub fn typing_time(&self, chars: usize, rng: &mut SimRng) -> Duration {
        rng.jittered(self.per_char_input * chars as u32, self.jitter)
    }

    /// Samples the time to find and click one control.
    pub fn click(&self, rng: &mut SimRng) -> Duration {
        rng.jittered(self.click_time, self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n95_is_slower_than_n810_at_everything() {
        let mut rng = SimRng::from_seed(1);
        let n810 = AccessDevice::nokia_n810();
        let n95 = AccessDevice::nokia_n95();
        let avg = |f: &mut dyn FnMut(&mut SimRng) -> Duration, rng: &mut SimRng| -> f64 {
            (0..50).map(|_| f(rng).as_secs_f64()).sum::<f64>() / 50.0
        };
        let r810 = avg(&mut |r| n810.render_time(1.0, r), &mut rng);
        let r95 = avg(&mut |r| n95.render_time(1.0, r), &mut rng);
        assert!(r95 > 2.0 * r810, "render {r95} vs {r810}");
        let t810 = avg(&mut |r| n810.typing_time(10, r), &mut rng);
        let t95 = avg(&mut |r| n95.typing_time(10, r), &mut rng);
        assert!(t95 > 1.5 * t810, "typing {t95} vs {t810}");
    }

    #[test]
    fn render_time_scales_with_complexity() {
        let mut rng = SimRng::from_seed(2);
        let dev = AccessDevice::nokia_n810();
        let light: f64 = (0..50)
            .map(|_| dev.render_time(0.5, &mut rng).as_secs_f64())
            .sum();
        let heavy: f64 = (0..50)
            .map(|_| dev.render_time(2.0, &mut rng).as_secs_f64())
            .sum();
        assert!(heavy > light * 2.0);
    }

    #[test]
    fn typing_time_is_roughly_linear() {
        let mut rng = SimRng::from_seed(3);
        let dev = AccessDevice::nokia_n95();
        let short = dev.typing_time(2, &mut rng);
        let long = dev.typing_time(30, &mut rng);
        assert!(long > short * 5);
    }
}
