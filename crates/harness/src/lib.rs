//! # ph-harness — the experiment harness
//!
//! Regenerates every table and figure of the thesis evaluation (see
//! `DESIGN.md` for the experiment index) plus the ablations. The `repro`
//! binary is the command-line entry point; each module is also a library
//! API the benches and tests reuse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod bubbles;
pub mod crowd;
pub mod functionality;
pub mod live;
pub mod msc;
pub mod report;
pub mod scenario;
pub mod table8;
pub mod user;

pub use bubbles::{BubblesConfig, BubblesReport};
pub use report::TextTable;
pub use scenario::{fault_profile, lab, LabConfig, LabScenario};
pub use table8::Table8Report;
