//! Table 8: time records for searching an interest group, joining, and
//! viewing the member list and one member's profile — SNS baselines vs the
//! PeerHood Community reference application.
//!
//! Five arms, exactly as in the thesis: Facebook and Hi5 accessed from the
//! Nokia N810 and N95 over their respective data links, and PeerHood
//! Community on laptops/PCs over Bluetooth. Every arm runs the same four
//! tasks end-to-end under scripted users; paper values ride along in the
//! report for side-by-side comparison.

use std::time::Duration;

use codec::json::Json;

use netsim::stats::Summary;
use netsim::{SimRng, SimTime};

use sns::central::CentralServer;
use sns::device::AccessDevice;
use sns::session::SnsSession;
use sns::site::SiteProfile;

use community::OpResult;

use crate::report::TextTable;
use crate::scenario::{lab, LabConfig};
use crate::user::VirtualUser;

/// Number of peer devices around the observer in the PeerHood arm (the
/// thesis used 2 desktop PCs + laptops in room 6604).
const PEERHOOD_PEERS: usize = 3;

/// The four timed tasks of Table 8 (plus the total row).
pub const TASKS: [&str; 5] = [
    "Average group search time",
    "Average group join time",
    "Viewing member list",
    "Viewing one member profile",
    "Total time taken",
];

/// The thesis's published averages (seconds) for one arm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperColumn {
    /// Group search.
    pub search: f64,
    /// Group join.
    pub join: f64,
    /// Member list.
    pub list: f64,
    /// One member profile.
    pub profile: f64,
    /// Total.
    pub total: f64,
}

/// Measured results of one arm.
#[derive(Clone, Debug)]
pub struct ArmResult {
    /// Arm label (e.g. `"SNS (Facebook) / Nokia N810"`).
    pub arm: String,
    /// Per-task summaries, in [`TASKS`] order.
    pub summaries: [Summary; 5],
    /// The thesis's numbers for this arm.
    pub paper: PaperColumn,
}

/// The full Table 8 reproduction.
#[derive(Clone, Debug)]
pub struct Table8Report {
    /// Trials per arm.
    pub trials: usize,
    /// All five arms, SNS first, PeerHood last.
    pub arms: Vec<ArmResult>,
}

impl Table8Report {
    /// Renders the report as a text table with paper values inline.
    pub fn render(&self) -> String {
        let mut headers = vec!["Task".to_owned()];
        headers.extend(self.arms.iter().map(|a| a.arm.clone()));
        let mut table = TextTable::new(headers);
        for (row, task) in TASKS.iter().enumerate() {
            let mut cells = vec![(*task).to_owned()];
            for arm in &self.arms {
                let paper = [
                    arm.paper.search,
                    arm.paper.join,
                    arm.paper.list,
                    arm.paper.profile,
                    arm.paper.total,
                ][row];
                cells.push(format!(
                    "{:>5.1} s (paper {:>3.0})",
                    arm.summaries[row].mean, paper
                ));
            }
            table.add_row(cells);
        }
        format!(
            "Table 8 — task times, {} trials per arm (measured vs paper)\n{}",
            self.trials,
            table.render()
        )
    }

    /// The PeerHood arm (last).
    pub fn peerhood(&self) -> &ArmResult {
        self.arms.last().expect("report always has five arms")
    }

    /// Machine-readable form of the report.
    pub fn to_json(&self) -> String {
        Json::obj()
            .field("trials", self.trials)
            .field(
                "arms",
                Json::Arr(self.arms.iter().map(ArmResult::to_json_value).collect()),
            )
            .to_string_pretty()
    }
}

impl ArmResult {
    fn to_json_value(&self) -> Json {
        Json::obj()
            .field("arm", self.arm.as_str())
            .field(
                "summaries",
                Json::Arr(self.summaries.iter().map(summary_json).collect()),
            )
            .field(
                "paper",
                Json::obj()
                    .field("search", self.paper.search)
                    .field("join", self.paper.join)
                    .field("list", self.paper.list)
                    .field("profile", self.paper.profile)
                    .field("total", self.paper.total),
            )
    }
}

fn summary_json(s: &Summary) -> Json {
    Json::obj()
        .field("n", s.n)
        .field("mean", s.mean)
        .field("std_dev", s.std_dev)
        .field("min", s.min)
        .field("max", s.max)
        .field("p50", s.p50)
        .field("p90", s.p90)
}

/// Runs the complete Table 8 experiment.
///
/// # Panics
///
/// Panics if any PeerHood trial fails to form a group or complete an
/// operation within its deadline — that would mean the middleware is
/// broken, not slow.
pub fn run(trials: usize, base_seed: u64) -> Table8Report {
    let mut arms = Vec::new();
    let sns_arms: [(SiteProfile, AccessDevice, PaperColumn); 4] = [
        (
            SiteProfile::facebook(),
            AccessDevice::nokia_n810(),
            PaperColumn {
                search: 58.0,
                join: 17.0,
                list: 8.0,
                profile: 11.0,
                total: 94.0,
            },
        ),
        (
            SiteProfile::facebook(),
            AccessDevice::nokia_n95(),
            PaperColumn {
                search: 75.0,
                join: 24.0,
                list: 31.0,
                profile: 27.0,
                total: 157.0,
            },
        ),
        (
            SiteProfile::hi5(),
            AccessDevice::nokia_n810(),
            PaperColumn {
                search: 50.0,
                join: 25.0,
                list: 18.0,
                profile: 27.0,
                total: 120.0,
            },
        ),
        (
            SiteProfile::hi5(),
            AccessDevice::nokia_n95(),
            PaperColumn {
                search: 69.0,
                join: 40.0,
                list: 32.0,
                profile: 40.0,
                total: 181.0,
            },
        ),
    ];
    for (site, device, paper) in sns_arms {
        arms.push(run_sns_arm(site, device, paper, trials, base_seed));
    }
    arms.push(run_peerhood_arm(trials, base_seed));
    Table8Report { trials, arms }
}

/// Populates the central SNS database the tasks run against.
fn seeded_site() -> CentralServer {
    let mut server = CentralServer::new();
    server.register("user1");
    for i in 1..=PEERHOOD_PEERS {
        server.register(format!("member{i}"));
    }
    // The target group plus enough distractors that search is meaningful.
    server.create_group("England Football");
    for name in [
        "Finnish Football",
        "Champions League Fans",
        "Chess Club",
        "Sauna Society",
        "Mobile P2P Research",
    ] {
        server.create_group(name);
    }
    for i in 1..=PEERHOOD_PEERS {
        server.join_group(&format!("member{i}"), "England Football");
    }
    server
}

fn run_sns_arm(
    site: SiteProfile,
    device: AccessDevice,
    paper: PaperColumn,
    trials: usize,
    base_seed: u64,
) -> ArmResult {
    let arm = format!("SNS ({}) / {}", site.name, device.name);
    let mut per_task: [Vec<Duration>; 5] = Default::default();
    for t in 0..trials {
        let mut server = seeded_site();
        let rng = SimRng::from_seed(base_seed ^ (0xC0FFEE + t as u64));
        let mut session = SnsSession::new(site.clone(), device.clone(), rng);

        let group = session
            .search_group(&mut server, "england football")
            .expect("seeded group must be found");
        per_task[0].push(session.elapsed());
        session.reset_stopwatch();

        assert!(session.join_group(&mut server, "user1", &group));
        per_task[1].push(session.elapsed());
        session.reset_stopwatch();

        let members = session
            .view_member_list(&mut server, &group)
            .expect("group exists");
        per_task[2].push(session.elapsed());
        session.reset_stopwatch();

        let first = members
            .iter()
            .find(|m| m.as_str() != "user1")
            .expect("peers joined the group");
        assert!(session.view_member_profile(&mut server, first));
        per_task[3].push(session.elapsed());

        let total: Duration = per_task[..4].iter().map(|v| *v.last().unwrap()).sum();
        per_task[4].push(total);
    }
    ArmResult {
        arm,
        summaries: summarize(per_task),
        paper,
    }
}

fn run_peerhood_arm(trials: usize, base_seed: u64) -> ArmResult {
    let mut per_task: [Vec<Duration>; 5] = Default::default();
    for t in 0..trials {
        let seed = base_seed ^ (0xBEEF + t as u64);
        let mut user = VirtualUser::at_laptop(SimRng::from_seed(seed ^ 0xA11CE));
        let mut s = lab(&LabConfig {
            seed,
            peer_count: PEERHOOD_PEERS,
            ..LabConfig::default()
        });

        // Task 1 — group search: application start until the first group
        // containing the user has formed (dynamic group discovery).
        let deadline = SimTime::from_secs(120);
        let observer = s.observer;
        let found = s
            .cluster
            .run_until_condition(deadline, |c| c.app(observer).first_group_at().is_some());
        let formed_at = found.expect("group must form within two minutes");
        let started = s.cluster.app(observer).started_at().expect("started");
        per_task[0].push(formed_at.saturating_since(started));

        // Task 2 — group join: the user is *already in* the group the
        // instant it forms; joining costs nothing.
        assert!(
            !s.cluster.app(observer).my_groups().is_empty(),
            "observer must be a member of the discovered group"
        );
        per_task[1].push(Duration::ZERO);

        // Task 3 — viewing the member list: menu selection plus the
        // Figure 11 operation (fresh inquiry + sequential connections, as
        // the reference client did).
        let menu = user.menu();
        s.cluster.run_for(menu);
        let op = s
            .cluster
            .with_app(observer, |app, ctx| app.get_member_list(ctx));
        let op_deadline = s.cluster.now() + Duration::from_secs(90);
        s.cluster
            .run_until_condition(op_deadline, |c| c.app(observer).outcome(op).is_some())
            .expect("member list must complete");
        let outcome = s.cluster.app(observer).outcome(op).unwrap().clone();
        match &outcome.result {
            OpResult::Members(names) => {
                assert_eq!(names.len(), PEERHOOD_PEERS, "all peers must answer")
            }
            other => panic!("unexpected member-list result {other:?}"),
        }
        per_task[2].push(menu + outcome.duration());

        // Task 4 — viewing one member profile: menu + typing the member id
        // plus the Figure 13 operation.
        let input = user.menu() + user.type_text("member1");
        s.cluster.run_for(input);
        let op = s
            .cluster
            .with_app(observer, |app, ctx| app.view_profile("member1", ctx));
        let op_deadline = s.cluster.now() + Duration::from_secs(90);
        s.cluster
            .run_until_condition(op_deadline, |c| c.app(observer).outcome(op).is_some())
            .expect("profile view must complete");
        let outcome = s.cluster.app(observer).outcome(op).unwrap().clone();
        assert!(
            matches!(&outcome.result, OpResult::Profile(Some(v)) if v.member == "member1"),
            "profile must be served: {:?}",
            outcome.result
        );
        per_task[3].push(input + outcome.duration());

        let total: Duration = per_task[..4].iter().map(|v| *v.last().unwrap()).sum();
        per_task[4].push(total);
    }
    ArmResult {
        arm: "PeerHood Community / Bluetooth".to_owned(),
        summaries: summarize(per_task),
        paper: PaperColumn {
            search: 11.0,
            join: 0.0,
            list: 15.0,
            profile: 19.0,
            total: 45.0,
        },
    }
}

fn summarize(per_task: [Vec<Duration>; 5]) -> [Summary; 5] {
    per_task.map(|v| Summary::from_durations(&v).expect("at least one trial"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crowd::fault_profile;

    /// Satellite: under the thesis's hostile-radio conditions (10%
    /// Bluetooth frame loss plus Gilbert burst episodes) every sampled
    /// user still completes all four Table 8 tasks — daemon recovery and
    /// idempotent client retries absorb the loss, and nothing panics.
    #[test]
    fn faulted_lab_completes_all_four_tasks_for_every_seed() {
        let mut swept_retries = 0u64;
        for seed in [1u64, 2008, 77] {
            let mut s = lab(&LabConfig {
                seed,
                peer_count: PEERHOOD_PEERS,
                faults: fault_profile("lossy").expect("named profile"),
                ..LabConfig::default()
            });
            let observer = s.observer;

            // Task 1 — group search: discovery despite lost SDP frames.
            let formed = s.cluster.run_until_condition(SimTime::from_secs(180), |c| {
                c.app(observer).first_group_at().is_some()
            });
            assert!(formed.is_some(), "seed {seed}: group never formed");

            // Task 2 — group join: membership is implicit on formation.
            assert!(
                !s.cluster.app(observer).my_groups().is_empty(),
                "seed {seed}: observer not in its own group"
            );

            // Task 3 — member list: every peer must answer eventually.
            let op = s
                .cluster
                .with_app(observer, |app, ctx| app.get_member_list(ctx));
            let deadline = s.cluster.now() + Duration::from_secs(150);
            s.cluster
                .run_until_condition(deadline, |c| c.app(observer).outcome(op).is_some())
                .unwrap_or_else(|| panic!("seed {seed}: member list never completed"));
            let outcome = s.cluster.app(observer).outcome(op).unwrap().clone();
            match &outcome.result {
                OpResult::Members(names) => {
                    assert!(!names.is_empty(), "seed {seed}: empty member list")
                }
                other => panic!("seed {seed}: unexpected member-list result {other:?}"),
            }

            // Task 4 — one member profile, served over a lossy link.
            let op = s
                .cluster
                .with_app(observer, |app, ctx| app.view_profile("member1", ctx));
            let deadline = s.cluster.now() + Duration::from_secs(150);
            s.cluster
                .run_until_condition(deadline, |c| c.app(observer).outcome(op).is_some())
                .unwrap_or_else(|| panic!("seed {seed}: profile view never completed"));
            let outcome = s.cluster.app(observer).outcome(op).unwrap().clone();
            assert!(
                matches!(&outcome.result, OpResult::Profile(Some(v)) if v.member == "member1"),
                "seed {seed}: profile not served: {:?}",
                outcome.result
            );

            // Bounded attempts: recovery is capped (3 daemon retries per
            // op, 2 client retries per request), so the retry count must
            // stay a small multiple of the handful of operations above —
            // a runaway retry storm fails here long before it times out.
            let stats = *s.cluster.stats();
            assert!(
                stats.retries <= 200,
                "seed {seed}: retry storm ({} retries)",
                stats.retries
            );
            swept_retries += stats.retries;
        }
        assert!(
            swept_retries > 0,
            "the lossy profile should force at least one recovery retry across the sweep"
        );
    }

    #[test]
    fn table8_shape_holds() {
        let report = run(3, 7);
        assert_eq!(report.arms.len(), 5);
        let ph = report.peerhood();
        // PeerHood joins instantly.
        assert_eq!(ph.summaries[1].mean, 0.0);
        // PeerHood total beats every SNS arm's total — the headline claim.
        for sns_arm in &report.arms[..4] {
            assert!(
                ph.summaries[4].mean < sns_arm.summaries[4].mean,
                "PeerHood {:.1}s not faster than {} {:.1}s",
                ph.summaries[4].mean,
                sns_arm.arm,
                sns_arm.summaries[4].mean
            );
        }
        // The N95 is slower than the N810 on the same site.
        assert!(report.arms[1].summaries[4].mean > report.arms[0].summaries[4].mean);
        assert!(report.arms[3].summaries[4].mean > report.arms[2].summaries[4].mean);
        // The render mentions every arm.
        let text = report.render();
        for arm in &report.arms {
            assert!(text.contains(&arm.arm));
        }
    }
}
