//! Standard experiment scenarios.
//!
//! The thesis evaluated in ComLab room 6604: a handful of stationary PCs
//! and laptops within one Bluetooth cell ([`lab`]). The concept chapter also
//! motivates mobile communities — a bus ride, a campus walk — which the
//! examples and ablations build from the same pieces.

use netsim::geometry::Point2;
use netsim::world::{NodeBuilder, NodeId};
use netsim::{FaultPlan, FaultProfile, RadioEnv, Technology};
use peerhood::gossip::GossipConfig;
use peerhood::sim::Cluster;
use peerhood::RecoveryPolicy;

use community::node::{CommunityApp, OpMode, RetryPolicy};
use community::profile::Profile;

/// Resolves a named fault profile — the shared `--faults <name>`
/// vocabulary of `repro lab`, `repro crowd` and `repro bubbles`, and the
/// presets [`LabConfig`], [`crate::crowd::CrowdConfig`] and
/// [`crate::bubbles::BubblesConfig`] accept as a [`FaultPlan`].
///
/// * `"none"` — the inert plan (the default).
/// * `"lossy"` — the thesis's hostile-radio conditions: 10% independent
///   Bluetooth frame loss plus Gilbert burst episodes (enter 0.02, exit
///   0.25, loss 0.60 while bursting).
pub fn fault_profile(name: &str) -> Option<FaultPlan> {
    match name {
        "none" => Some(FaultPlan::none()),
        "lossy" => Some(FaultPlan::none().with_profile(
            Technology::Bluetooth,
            FaultProfile {
                frame_loss: 0.10,
                burst_enter: 0.02,
                burst_exit: 0.25,
                burst_loss: 0.60,
                ..FaultProfile::NONE
            },
        )),
        _ => None,
    }
}

/// A built lab scenario: one observer device plus peer devices, all within
/// Bluetooth range.
pub struct LabScenario {
    /// The running cluster.
    pub cluster: Cluster<CommunityApp>,
    /// The device whose user drives the measured tasks.
    pub observer: NodeId,
    /// The other devices, in creation order (members `member1`,
    /// `member2`, …).
    pub peers: Vec<NodeId>,
}

/// Configuration for [`lab`].
#[derive(Clone, Debug)]
pub struct LabConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Number of peer devices besides the observer.
    pub peer_count: usize,
    /// Connection mode for every app.
    pub op_mode: OpMode,
    /// Whether user operations block on a fresh inquiry first (the thesis
    /// client behaviour; see
    /// [`CommunityApp::with_fresh_inquiry_per_op`]).
    pub fresh_inquiry_per_op: bool,
    /// The interest every peer shares with the observer.
    pub shared_interest: String,
    /// Extra distinct interests given to each peer (`extra-1`, …).
    pub extra_interests_per_peer: usize,
    /// Number of interests on the observer (the shared one plus
    /// `own-1`, …).
    pub observer_interests: usize,
    /// Fault plan injected into the radio environment. When not inert,
    /// every daemon runs with the default [`RecoveryPolicy`] and every
    /// app with the default client [`RetryPolicy`] (idempotent retried
    /// requests); an inert plan reproduces the fault-free run
    /// bit-for-bit.
    pub faults: FaultPlan,
    /// When set, every app runs the epidemic gossip layer with this
    /// configuration (see [`GossipConfig`]); `None` reproduces the
    /// gossip-free lab bit-for-bit.
    pub gossip: Option<GossipConfig>,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            seed: 1,
            peer_count: 3,
            op_mode: OpMode::PerOperation,
            fresh_inquiry_per_op: true,
            shared_interest: "Football".to_owned(),
            extra_interests_per_peer: 2,
            observer_interests: 1,
            faults: FaultPlan::none(),
            gossip: None,
        }
    }
}

/// Builds and starts the ComLab-room scenario: `peer_count + 1` stationary
/// devices in a circle of radius 3 m (all within one Bluetooth cell), each
/// logged in as its member, every peer sharing `shared_interest` with the
/// observer (`user1`).
pub fn lab(config: &LabConfig) -> LabScenario {
    let faulted = !config.faults.is_inert();
    let mut cluster = Cluster::with_env(
        config.seed,
        RadioEnv::default().with_faults(config.faults.clone()),
    );
    let add = |cluster: &mut Cluster<CommunityApp>, builder, app: CommunityApp| {
        let app = match &config.gossip {
            Some(g) => app.with_gossip(g.clone()),
            None => app,
        };
        if faulted {
            cluster.add_node_with(
                builder,
                |c| c.with_recovery(RecoveryPolicy::default()),
                app.with_fault_tolerance(RetryPolicy::default()),
            )
        } else {
            cluster.add_node(builder, app)
        }
    };

    let mut observer_profile =
        Profile::new("User One").with_interests([config.shared_interest.as_str()]);
    for i in 1..config.observer_interests {
        observer_profile.interests.add(format!("own-{i}"));
    }
    let observer_app = CommunityApp::with_member("user1", "pw", observer_profile)
        .with_op_mode(config.op_mode)
        .with_fresh_inquiry_per_op(config.fresh_inquiry_per_op);
    let observer = add(
        &mut cluster,
        NodeBuilder::new("user1-laptop").at(Point2::ORIGIN),
        observer_app,
    );

    let mut peers = Vec::new();
    for i in 1..=config.peer_count {
        let angle = i as f64 / config.peer_count as f64 * std::f64::consts::TAU;
        let pos = Point2::new(3.0 * angle.cos(), 3.0 * angle.sin());
        let name = format!("member{i}");
        let mut profile =
            Profile::new(format!("Member {i}")).with_interests([config.shared_interest.as_str()]);
        for j in 1..=config.extra_interests_per_peer {
            profile.interests.add(format!("extra-{i}-{j}"));
        }
        let app = CommunityApp::with_member(&name, "pw", profile)
            .with_op_mode(config.op_mode)
            .with_fresh_inquiry_per_op(config.fresh_inquiry_per_op);
        peers.push(add(
            &mut cluster,
            NodeBuilder::new(format!("{name}-pc")).at(pos),
            app,
        ));
    }

    cluster.start();
    LabScenario {
        cluster,
        observer,
        peers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    #[test]
    fn lab_scenario_forms_the_shared_group() {
        let mut s = lab(&LabConfig {
            seed: 3,
            peer_count: 2,
            ..LabConfig::default()
        });
        s.cluster.run_until(SimTime::from_secs(60));
        let groups = s.cluster.app(s.observer).groups();
        assert_eq!(groups.len(), 1, "{groups:?}");
        assert_eq!(groups[0].key, "football");
        assert_eq!(groups[0].members.len(), 3);
    }

    #[test]
    fn named_fault_profiles_resolve() {
        assert!(fault_profile("none").expect("known").is_inert());
        let lossy = fault_profile("lossy").expect("known");
        assert!(!lossy.is_inert());
        assert_eq!(lossy.profile(Technology::Bluetooth).frame_loss, 0.10);
        assert!(lossy.profile(Technology::Wlan).is_inert());
        assert!(fault_profile("chaos-monkey").is_none());
    }

    #[test]
    fn lab_scenario_runs_with_gossip_enabled() {
        let mut s = lab(&LabConfig {
            seed: 5,
            peer_count: 2,
            gossip: Some(GossipConfig::default().rng_salt(5)),
            ..LabConfig::default()
        });
        s.cluster.run_until(SimTime::from_secs(60));
        // The shared group still forms, and every node actually runs the
        // gossip layer (in one radio cell it is pure overhead, but the
        // runtime must be live and announcing members).
        assert_eq!(s.cluster.app(s.observer).groups().len(), 1);
        let rt = s.cluster.app(s.observer).gossip().expect("gossip enabled");
        assert!(
            !rt.remote_members().is_empty() || rt.stats().eager > 0,
            "gossip layer produced no traffic at all"
        );
    }

    #[test]
    fn lab_scenario_respects_persistent_mode() {
        let mut s = lab(&LabConfig {
            seed: 4,
            peer_count: 2,
            op_mode: OpMode::Persistent,
            fresh_inquiry_per_op: false,
            ..LabConfig::default()
        });
        s.cluster.run_until(SimTime::from_secs(60));
        assert_eq!(s.cluster.app(s.observer).op_mode(), OpMode::Persistent);
        assert_eq!(s.cluster.app(s.observer).groups().len(), 1);
    }
}
