//! The multi-bubble scenario — epidemic dissemination across disjoint
//! radio cells.
//!
//! The thesis evaluates one Bluetooth cell ([`crate::scenario::lab`]) and
//! the crowd pass evaluates one contiguous campus ([`crate::crowd`]).
//! This module builds the setting the epidemic gossip layer exists for:
//! `k` **bubbles** of stationary devices placed so far apart that no two
//! bubbles ever share a radio link, bridged only by a few **ferry**
//! devices that shuttle between bubble centres on a scripted walk,
//! dwelling long enough at each stop to exchange gossip. Membership
//! (interest profiles) and shared content (blobs) published in one
//! bubble must reach every other bubble purely store-and-forward.
//!
//! [`run`] executes one such scenario and reports the gossip acceptance
//! metrics: delivery ratio of a blob published in bubble 0, hop-count
//! and latency distributions, duplicate overhead per delivered payload,
//! and membership convergence of the interest group spanning all
//! bubbles — plus the usual order-sensitive trace digest, which must be
//! bit-identical for any worker or lane count (`repro bubbles` and the
//! `ci.sh` gossip smoke gate on this).

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use codec::json::Json;
use netsim::geometry::Point2;
use netsim::mobility::ScriptedPath;
use netsim::world::{NodeBuilder, NodeId};
use netsim::{FaultPlan, RadioEnv, SimTime, Technology, TraceStats};
use peerhood::gossip::GossipConfig;
use peerhood::sim::Cluster;
use peerhood::RecoveryPolicy;

use community::node::{CommunityApp, RetryPolicy};
use community::profile::Profile;

/// The interest every member shares, forming the group that must span
/// all bubbles.
pub const SHARED_INTEREST: &str = "Football";
/// Name of the blob published in bubble 0.
pub const BLOB_NAME: &str = "bubble-photo.jpg";
/// Ferry walking speed between bubble centres, m/s.
const FERRY_SPEED_MPS: f64 = 1.5;

/// A pathological [`BubblesConfig`] rejected by
/// [`BubblesConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum BubblesError {
    /// `bubbles == 0` — nothing to bridge.
    NoBubbles,
    /// `nodes_per_bubble == 0` — empty bubbles measure nothing.
    NoMembers,
    /// `ferries == 0` — without ferries the bubbles stay partitioned
    /// forever and every delivery metric is trivially zero.
    NoFerries,
    /// `spacing_m` too small: bubbles must be radio-disjoint (member
    /// circles of radius 3 m plus the 10 m Bluetooth range demand well
    /// over 26 m between centres).
    BubblesOverlap {
        /// The rejected spacing.
        spacing_m: f64,
    },
    /// `publish_at` is not strictly before `horizon`.
    PublishAfterHorizon,
    /// `dwell` is zero — a ferry that never stops can still pass radio
    /// range too quickly to exchange anything, and a zero dwell breaks
    /// the strictly-increasing waypoint schedule.
    ZeroDwell,
}

impl std::fmt::Display for BubblesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BubblesError::NoBubbles => write!(f, "need at least one bubble"),
            BubblesError::NoMembers => write!(f, "need at least one member per bubble"),
            BubblesError::NoFerries => write!(f, "need at least one ferry to bridge bubbles"),
            BubblesError::BubblesOverlap { spacing_m } => write!(
                f,
                "bubble spacing {spacing_m} m cannot keep Bluetooth cells disjoint (need >= 30 m)"
            ),
            BubblesError::PublishAfterHorizon => {
                write!(f, "publish_at must fall strictly before the horizon")
            }
            BubblesError::ZeroDwell => write!(f, "ferry dwell must be positive"),
        }
    }
}

impl std::error::Error for BubblesError {}

/// Configuration for one multi-bubble run.
#[derive(Clone, Debug)]
pub struct BubblesConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Number of disjoint radio bubbles (the acceptance run uses 3).
    pub bubbles: usize,
    /// Stationary member devices per bubble.
    pub nodes_per_bubble: usize,
    /// Ferry devices shuttling between bubble centres.
    pub ferries: usize,
    /// Distance between adjacent bubble centres, metres. Must keep the
    /// bubbles radio-disjoint (Bluetooth reaches 10 m).
    pub spacing_m: f64,
    /// How long a ferry dwells at each bubble centre.
    pub dwell: Duration,
    /// Virtual duration of the run.
    pub horizon: Duration,
    /// When bubble 0's first member publishes the blob.
    pub publish_at: Duration,
    /// Size of the published blob, bytes.
    pub blob_bytes: usize,
    /// Worker count for the parallel epoch engine (`1` = serial, `0` =
    /// auto). Any value produces a bit-identical trace digest.
    pub threads: usize,
    /// Region event lanes (`0` = engine default) — a pure sharding knob,
    /// digests never depend on it.
    pub region_lanes: usize,
    /// Fault plan injected into the radio environment (named presets in
    /// [`crate::scenario::fault_profile`]). When not inert every daemon
    /// runs with the default [`RecoveryPolicy`] and every app with the
    /// default client [`RetryPolicy`].
    pub faults: FaultPlan,
    /// Gossip layer configuration applied to every app.
    pub gossip: GossipConfig,
}

impl Default for BubblesConfig {
    fn default() -> Self {
        BubblesConfig {
            seed: 2008,
            bubbles: 3,
            nodes_per_bubble: 4,
            ferries: 2,
            spacing_m: 60.0,
            dwell: Duration::from_secs(40),
            horizon: Duration::from_secs(600),
            publish_at: Duration::from_secs(30),
            blob_bytes: 512,
            threads: 1,
            region_lanes: 0,
            faults: FaultPlan::none(),
            gossip: GossipConfig::default(),
        }
    }
}

impl BubblesConfig {
    /// Rejects pathological inputs with a typed [`BubblesError`].
    pub fn validate(&self) -> Result<(), BubblesError> {
        if self.bubbles == 0 {
            return Err(BubblesError::NoBubbles);
        }
        if self.nodes_per_bubble == 0 {
            return Err(BubblesError::NoMembers);
        }
        if self.ferries == 0 {
            return Err(BubblesError::NoFerries);
        }
        if !self.spacing_m.is_finite() || self.spacing_m < 30.0 {
            return Err(BubblesError::BubblesOverlap {
                spacing_m: self.spacing_m,
            });
        }
        if self.publish_at >= self.horizon {
            return Err(BubblesError::PublishAfterHorizon);
        }
        if self.dwell.is_zero() {
            return Err(BubblesError::ZeroDwell);
        }
        Ok(())
    }
}

/// A built (started) multi-bubble scenario.
pub struct BubblesScenario {
    /// The running cluster.
    pub cluster: Cluster<CommunityApp>,
    /// Member nodes, bubble-major order (`b0n0`, `b0n1`, …).
    pub members: Vec<NodeId>,
    /// Ferry nodes.
    pub ferries: Vec<NodeId>,
    /// The member that publishes the blob (`b0n0`).
    pub origin: NodeId,
}

/// Centre of bubble `i`.
fn bubble_centre(i: usize, spacing_m: f64) -> Point2 {
    Point2::new(i as f64 * spacing_m, 0.0)
}

/// The scripted bounce of ferry `f`: dwell at each bubble centre, walk to
/// the adjacent one, reverse at the ends. Ferries start spread across
/// the bubbles with alternating directions so coverage is not lockstep.
fn ferry_path(f: usize, config: &BubblesConfig) -> ScriptedPath {
    let travel = Duration::from_secs_f64(config.spacing_m / FERRY_SPEED_MPS);
    let end = SimTime::ZERO
        .saturating_add(config.horizon)
        .saturating_add(travel);
    let mut idx = f % config.bubbles;
    let mut dir: isize = if f.is_multiple_of(2) { 1 } else { -1 };
    let mut t = SimTime::ZERO;
    let mut waypoints = vec![(t, bubble_centre(idx, config.spacing_m))];
    while t < end && config.bubbles > 1 {
        t = t.saturating_add(config.dwell);
        waypoints.push((t, bubble_centre(idx, config.spacing_m)));
        if idx == 0 {
            dir = 1;
        } else if idx == config.bubbles - 1 {
            dir = -1;
        }
        idx = (idx as isize + dir) as usize;
        t = t.saturating_add(travel);
        waypoints.push((t, bubble_centre(idx, config.spacing_m)));
    }
    ScriptedPath::new(waypoints)
}

/// Builds and starts a multi-bubble scenario (without advancing time).
pub fn build(config: &BubblesConfig) -> Result<BubblesScenario, BubblesError> {
    config.validate()?;
    let faulted = !config.faults.is_inert();
    let mut cluster = Cluster::with_env(
        config.seed,
        RadioEnv::default().with_faults(config.faults.clone()),
    );
    if config.region_lanes > 0 {
        cluster.set_region_lanes(config.region_lanes);
    }
    let gossip = config.gossip.clone().rng_salt(config.seed);

    let add = |cluster: &mut Cluster<CommunityApp>, builder, app: CommunityApp| {
        let app = app.with_gossip(gossip.clone());
        if faulted {
            cluster.add_node_with(
                builder,
                |c| c.with_recovery(RecoveryPolicy::default()),
                app.with_fault_tolerance(RetryPolicy::default()),
            )
        } else {
            cluster.add_node(builder, app)
        }
    };

    let mut members = Vec::new();
    for b in 0..config.bubbles {
        let centre = bubble_centre(b, config.spacing_m);
        for n in 0..config.nodes_per_bubble {
            let angle = n as f64 / config.nodes_per_bubble as f64 * std::f64::consts::TAU;
            let pos = Point2::new(centre.x + 3.0 * angle.cos(), centre.y + 3.0 * angle.sin());
            let name = format!("b{b}n{n}");
            let profile = Profile::new(&name).with_interests([SHARED_INTEREST]);
            let app = CommunityApp::with_member(&name, "pw", profile);
            members.push(add(
                &mut cluster,
                NodeBuilder::new(format!("{name}-dev"))
                    .at(pos)
                    .with_technologies([Technology::Bluetooth]),
                app,
            ));
        }
    }

    let mut ferries = Vec::new();
    for f in 0..config.ferries {
        let name = format!("ferry{f}");
        let profile = Profile::new(&name).with_interests(["ferry-duty"]);
        let app = CommunityApp::with_member(&name, "pw", profile);
        ferries.push(add(
            &mut cluster,
            NodeBuilder::new(format!("{name}-n810"))
                .moving(ferry_path(f, config))
                .with_technologies([Technology::Bluetooth]),
            app,
        ));
    }

    cluster.set_threads(config.threads);
    cluster.start();
    let origin = members[0];
    Ok(BubblesScenario {
        cluster,
        members,
        ferries,
        origin,
    })
}

/// Result of one multi-bubble run.
#[derive(Clone, Debug)]
pub struct BubblesReport {
    /// Bubble count.
    pub bubbles: usize,
    /// Members per bubble.
    pub nodes_per_bubble: usize,
    /// Ferry count.
    pub ferries: usize,
    /// Total member devices (excluding ferries).
    pub members: usize,
    /// Seed the run used.
    pub seed: u64,
    /// Epoch-engine worker count the run used.
    pub threads: usize,
    /// Region event lanes the run used (actual, after defaulting).
    pub region_lanes: usize,
    /// Human-readable fault plan (`"no faults"` when inert).
    pub faults: String,
    /// Virtual duration, seconds.
    pub virtual_secs: f64,
    /// Wall-clock cost of the run, milliseconds.
    pub wall_ms: f64,
    /// Members (excluding the origin) the blob was addressed to.
    pub audience: usize,
    /// Members (excluding the origin) the blob actually reached.
    pub delivered: usize,
    /// `delivered / audience` — 1.0 means the payload published in
    /// bubble 0 reached every member in every bubble.
    pub delivery_ratio: f64,
    /// Members whose shared-interest group contains the full membership
    /// of every bubble.
    pub converged_members: usize,
    /// `converged_members / members`.
    pub convergence_ratio: f64,
    /// Blob deliveries per radio-hop count.
    pub hops_histogram: BTreeMap<u8, usize>,
    /// Largest hop count observed.
    pub hops_max: u8,
    /// Mean hop count over deliveries.
    pub hops_mean: f64,
    /// Mean publish-to-delivery latency, seconds.
    pub latency_mean_s: f64,
    /// Largest publish-to-delivery latency, seconds.
    pub latency_max_s: f64,
    /// Duplicate gossip payload receipts per delivered blob copy — the
    /// epidemic overhead metric.
    pub duplicates_per_delivery: f64,
    /// Daemon/trace counters with the gossip counters folded in.
    pub stats: TraceStats,
    /// Order-sensitive digest of the retained trace + counters
    /// (bit-identical for any `threads`/`region_lanes`).
    pub digest: u64,
}

impl BubblesReport {
    /// The report as a JSON object.
    pub fn to_json(&self) -> Json {
        let hops: Vec<Json> = self
            .hops_histogram
            .iter()
            .map(|(&hops, &count)| {
                Json::obj()
                    .field("hops", u64::from(hops))
                    .field("count", count)
            })
            .collect();
        Json::obj()
            .field("bubbles", self.bubbles)
            .field("nodes_per_bubble", self.nodes_per_bubble)
            .field("ferries", self.ferries)
            .field("members", self.members)
            .field("seed", self.seed)
            .field("threads", self.threads)
            .field("region_lanes", self.region_lanes)
            .field("faults", self.faults.as_str())
            .field("virtual_secs", self.virtual_secs)
            .field("wall_ms", self.wall_ms)
            .field("audience", self.audience)
            .field("delivered", self.delivered)
            .field("delivery_ratio", self.delivery_ratio)
            .field("converged_members", self.converged_members)
            .field("convergence_ratio", self.convergence_ratio)
            .field("hops_histogram", hops)
            .field("hops_max", u64::from(self.hops_max))
            .field("hops_mean", self.hops_mean)
            .field("latency_mean_s", self.latency_mean_s)
            .field("latency_max_s", self.latency_max_s)
            .field("duplicates_per_delivery", self.duplicates_per_delivery)
            .field(
                "gossip",
                Json::obj()
                    .field("eager", self.stats.gossip_eager)
                    .field("lazy", self.stats.gossip_lazy)
                    .field("graft", self.stats.gossip_graft)
                    .field("prune", self.stats.gossip_prune)
                    .field("duplicate", self.stats.gossip_duplicate),
            )
            .field("digest", format!("{:016x}", self.digest))
    }

    /// The report as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Multi-bubble scenario — {} bubbles x {} members, {} ferries, \
             {:.0}s virtual, {}\n\n",
            self.bubbles, self.nodes_per_bubble, self.ferries, self.virtual_secs, self.faults,
        );
        out.push_str(&format!(
            "blob delivery:  {}/{} members ({:.0}%), hops mean {:.1} max {}, \
             latency mean {:.0}s max {:.0}s\n",
            self.delivered,
            self.audience,
            self.delivery_ratio * 100.0,
            self.hops_mean,
            self.hops_max,
            self.latency_mean_s,
            self.latency_max_s,
        ));
        out.push_str(&format!(
            "membership:     {}/{} members see the full {:?} group\n",
            self.converged_members, self.members, SHARED_INTEREST,
        ));
        out.push_str(&format!(
            "overhead:       {:.2} duplicate payloads per delivery \
             (eager {} lazy {} graft {} prune {} dup {})\n",
            self.duplicates_per_delivery,
            self.stats.gossip_eager,
            self.stats.gossip_lazy,
            self.stats.gossip_graft,
            self.stats.gossip_prune,
            self.stats.gossip_duplicate,
        ));
        out.push_str(&format!(
            "digest:         {:016x} (threads={} lanes={})\nhops histogram:",
            self.digest, self.threads, self.region_lanes,
        ));
        for (hops, count) in &self.hops_histogram {
            out.push_str(&format!("\n  {hops} hops: {count}"));
        }
        out.push('\n');
        out
    }
}

/// Runs one multi-bubble scenario to its horizon: bubble 0's first
/// member publishes a blob at `publish_at`, and at the horizon the
/// delivery, convergence and overhead metrics are collected. The
/// per-node gossip counters are folded into the cluster's [`TraceStats`]
/// before the digest is taken, so the digest covers the epidemic
/// traffic too.
pub fn run(config: &BubblesConfig) -> Result<BubblesReport, BubblesError> {
    let wall = Instant::now();
    let mut s = build(config)?;
    let publish_at = SimTime::ZERO.saturating_add(config.publish_at);
    let deadline = SimTime::ZERO.saturating_add(config.horizon);
    s.cluster.run_until(publish_at);
    let payload = codec::Bytes::from(vec![0x5A; config.blob_bytes]);
    s.cluster.with_app(s.origin, |app, ctx| {
        app.publish_blob(BLOB_NAME, payload, ctx)
            .expect("origin is logged in with gossip enabled")
    });
    s.cluster.run_until(deadline);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let member_names: BTreeSet<String> = (0..config.bubbles)
        .flat_map(|b| (0..config.nodes_per_bubble).map(move |n| format!("b{b}n{n}")))
        .collect();

    let mut delivered = Vec::new();
    let mut converged_members = 0usize;
    for &id in &s.members {
        let rt = s.cluster.app(id).gossip().expect("gossip enabled");
        if id != s.origin {
            if let Some(d) = rt.blob_log().iter().find(|d| d.name == BLOB_NAME) {
                delivered.push((d.hops, d.at.saturating_since(publish_at).as_secs_f64()));
            }
        }
        let groups = s.cluster.app(id).groups();
        let full = groups.iter().any(|g| {
            g.key == SHARED_INTEREST.to_lowercase()
                && g.members.iter().cloned().collect::<BTreeSet<_>>() == member_names
        });
        if full {
            converged_members += 1;
        }
    }

    // Fold the app-side gossip counters into the trace stats so the
    // digest (and the JSON) covers the epidemic traffic. Summed in node
    // order — a deterministic reduction for any worker count.
    let mut gossip_sum = peerhood::gossip::GossipStats::default();
    for &id in s.members.iter().chain(&s.ferries) {
        let st = s.cluster.app(id).gossip().expect("gossip enabled").stats();
        gossip_sum.eager += st.eager;
        gossip_sum.lazy += st.lazy;
        gossip_sum.graft += st.graft;
        gossip_sum.prune += st.prune;
        gossip_sum.duplicate += st.duplicate;
    }
    {
        let stats = s.cluster.trace_mut().stats_mut();
        stats.gossip_eager += gossip_sum.eager;
        stats.gossip_lazy += gossip_sum.lazy;
        stats.gossip_graft += gossip_sum.graft;
        stats.gossip_prune += gossip_sum.prune;
        stats.gossip_duplicate += gossip_sum.duplicate;
    }
    let stats = *s.cluster.stats();
    let digest = s.cluster.trace().digest();

    let members_total = s.members.len();
    let audience = members_total - 1;
    let mut hops_histogram = BTreeMap::new();
    for &(hops, _) in &delivered {
        *hops_histogram.entry(hops).or_insert(0usize) += 1;
    }
    let n = delivered.len();
    let hops_mean = delivered.iter().map(|&(h, _)| f64::from(h)).sum::<f64>() / n.max(1) as f64;
    let latency_mean_s = delivered.iter().map(|&(_, l)| l).sum::<f64>() / n.max(1) as f64;
    Ok(BubblesReport {
        bubbles: config.bubbles,
        nodes_per_bubble: config.nodes_per_bubble,
        ferries: config.ferries,
        members: members_total,
        seed: config.seed,
        threads: config.threads,
        region_lanes: s.cluster.region_lanes(),
        faults: config.faults.to_string(),
        virtual_secs: config.horizon.as_secs_f64(),
        wall_ms,
        audience,
        delivered: n,
        delivery_ratio: n as f64 / audience.max(1) as f64,
        converged_members,
        convergence_ratio: converged_members as f64 / members_total.max(1) as f64,
        hops_max: hops_histogram.keys().next_back().copied().unwrap_or(0),
        hops_histogram,
        hops_mean,
        latency_mean_s,
        latency_max_s: delivered.iter().map(|&(_, l)| l).fold(0.0, f64::max),
        duplicates_per_delivery: stats.gossip_duplicate as f64 / n.max(1) as f64,
        stats,
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::fault_profile;

    fn small() -> BubblesConfig {
        BubblesConfig {
            seed: 11,
            nodes_per_bubble: 2,
            horizon: Duration::from_secs(600),
            ..BubblesConfig::default()
        }
    }

    /// Tentpole acceptance: a group spanning 3 disjoint radio bubbles
    /// converges — every member sees the full membership, and a payload
    /// published in bubble 0 reaches every member everywhere, at >= 2
    /// radio hops for the far bubble.
    #[test]
    fn three_disjoint_bubbles_converge_via_ferries() {
        let report = run(&small()).expect("valid config");
        assert_eq!(
            report.delivery_ratio, 1.0,
            "blob must reach every member: {report:?}"
        );
        assert_eq!(
            report.convergence_ratio, 1.0,
            "every member must see the full group: {report:?}"
        );
        assert!(
            report.hops_max >= 2,
            "far-bubble deliveries need at least two hops: {report:?}"
        );
        assert!(report.latency_max_s > 0.0);
        assert!(
            report.stats.gossip_eager > 0,
            "epidemic traffic must be counted: {report:?}"
        );
    }

    /// Satellite: the multi-bubble digest is a function of seed and fault
    /// profile only — worker count and lane count never move it, with or
    /// without a live lossy fault plan.
    #[test]
    fn bubble_digests_survive_threads_lanes_and_faults() {
        for faults in ["none", "lossy"] {
            let base = BubblesConfig {
                horizon: Duration::from_secs(300),
                faults: fault_profile(faults).expect("named profile"),
                ..small()
            };
            let serial = run(&base).expect("valid config");
            for &(threads, lanes) in &[(4usize, 0usize), (2, 3)] {
                let par = run(&BubblesConfig {
                    threads,
                    region_lanes: lanes,
                    ..base.clone()
                })
                .expect("valid config");
                assert_eq!(
                    format!("{:016x}", serial.digest),
                    format!("{:016x}", par.digest),
                    "digest diverged: faults={faults} threads={threads} lanes={lanes}"
                );
                assert_eq!(
                    serial.stats, par.stats,
                    "faults={faults} threads={threads} lanes={lanes}"
                );
            }
        }
    }

    #[test]
    fn pathological_configs_are_rejected() {
        let base = BubblesConfig::default();
        assert_eq!(
            BubblesConfig {
                bubbles: 0,
                ..base.clone()
            }
            .validate()
            .err(),
            Some(BubblesError::NoBubbles)
        );
        assert_eq!(
            BubblesConfig {
                ferries: 0,
                ..base.clone()
            }
            .validate()
            .err(),
            Some(BubblesError::NoFerries)
        );
        assert!(matches!(
            BubblesConfig {
                spacing_m: 12.0,
                ..base.clone()
            }
            .validate()
            .err(),
            Some(BubblesError::BubblesOverlap { .. })
        ));
        assert_eq!(
            BubblesConfig {
                publish_at: Duration::from_secs(600),
                ..base.clone()
            }
            .validate()
            .err(),
            Some(BubblesError::PublishAfterHorizon)
        );
        assert!(base.validate().is_ok());
    }

    #[test]
    fn ferry_paths_bounce_across_all_bubbles() {
        let config = BubblesConfig::default();
        // Ferry 0 starts in bubble 0 heading outward; its scripted walk
        // must visit the far bubble within the horizon.
        use netsim::mobility::Mobility;
        let mut path = ferry_path(0, &config);
        let far = bubble_centre(config.bubbles - 1, config.spacing_m);
        let mut seen_far = false;
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO.saturating_add(config.horizon) {
            let p = path.position(t);
            if (p.x - far.x).abs() < 1.0 && (p.y - far.y).abs() < 1.0 {
                seen_far = true;
                break;
            }
            t = t.saturating_add(Duration::from_secs(5));
        }
        assert!(seen_far, "ferry 0 never reached the far bubble");
    }
}
