//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```rust
/// use ph_harness::report::TextTable;
///
/// let mut t = TextTable::new(["task", "measured", "paper"]);
/// t.add_row(["search", "12.1 s", "11 s"]);
/// let out = t.render();
/// assert!(out.contains("search"));
/// assert!(out.contains("paper"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn add_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        row.truncate(self.headers.len());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a duration in seconds with one decimal.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.1} s", d.as_secs_f64())
}

/// Formats a mean ± standard deviation in seconds.
pub fn mean_sd(summary: &netsim::stats::Summary) -> String {
    format!("{:.1} ± {:.1} s", summary.mean, summary.std_dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header", "c"]);
        t.add_row(["xxxxxxxx", "1", "2"]);
        t.add_row(["y", "2", "3"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        // Column alignment: '1' and '2' start at the same offset.
        let pos1 = lines[2].find('1').unwrap();
        let pos2 = lines[3].find('2').unwrap();
        assert_eq!(pos1, pos2);
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.add_row(["only-one"]);
        t.add_row(["1", "2", "3-extra"]);
        let out = t.render();
        assert!(out.contains("only-one"));
        assert!(!out.contains("3-extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(std::time::Duration::from_millis(12_340)), "12.3 s");
    }
}
