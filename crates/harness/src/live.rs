//! Live-serving load harness: thousands of concurrent TCP clients against
//! a [`LiveServer`], with latency histograms.
//!
//! This is the measurement half of the production serving path: it boots a
//! real [`LiveServer`] around a [`CommunityApp`], connects
//! [`LiveLoadConfig::clients`] thin TCP clients (spread over a few worker
//! threads, each multiplexing its share over non-blocking sockets), runs a
//! closed loop of community requests per client, and reports p50/p99/p999
//! request latency plus throughput. Optionally some clients **stall**
//! (send but never read) to exercise the reactor's backpressure shedding.
//!
//! `repro live` is the command-line entry point; `ci.sh` runs a small
//! smoke configuration and merges the JSON report into `BENCH_live.json`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use codec::json::Json;
use codec::Wire;

use community::node::CommunityApp;
use community::profile::Profile;
use community::protocol::{Request, Response};
use peerhood::error::ErrorKind;
use peerhood::live::wire::{frame, parse_farewell, FrameBuf, Handshake, VERDICT_ACCEPT};
use peerhood::live::{LiveConfig, LiveStats};
use peerhood::types::DeviceId;

/// A log-linear latency histogram over microsecond values.
///
/// Values below 64 µs get exact buckets; above that, each power-of-two
/// octave is split into 32 sub-buckets, bounding the relative quantile
/// error at ~3% while covering the full `u64` range in ~2 KB.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

const LINEAR_CUTOFF: u64 = 64;
const SUB_BUCKETS: u64 = 32;
const BUCKETS: usize = 64 + 58 * 32;

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < LINEAR_CUTOFF {
            value as usize
        } else {
            let msb = 63 - u64::from(value.leading_zeros());
            let sub = (value >> (msb - 5)) & (SUB_BUCKETS - 1);
            (LINEAR_CUTOFF + (msb - 6) * SUB_BUCKETS + sub) as usize
        }
    }

    /// The representative (midpoint) value of bucket `idx`.
    fn midpoint(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < LINEAR_CUTOFF {
            idx
        } else {
            let octave = (idx - LINEAR_CUTOFF) / SUB_BUCKETS + 6;
            let sub = (idx - LINEAR_CUTOFF) % SUB_BUCKETS;
            let width = 1u64 << (octave - 5);
            (1u64 << octave) + sub * width + width / 2
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::midpoint(idx).min(self.max);
            }
        }
        self.max
    }
}

/// Configuration of one live load run (builder style, like
/// [`LiveConfig`]).
#[derive(Clone, Debug)]
pub struct LiveLoadConfig {
    /// Concurrent responsive clients.
    pub clients: usize,
    /// Requests each responsive client completes (closed loop).
    pub requests_per_client: usize,
    /// Client worker threads (each multiplexes `clients / workers` sockets).
    pub workers: usize,
    /// Reactor I/O shards.
    pub shards: usize,
    /// Reactor per-connection queue cap in bytes.
    pub queue_cap: usize,
    /// Additional clients that send [`Request::GetProfile`] but never read
    /// — backpressure victims.
    pub stalled: usize,
    /// Requests each stalled client pumps before resting.
    pub stalled_requests: usize,
    /// Hard wall-clock cap on the measurement phase.
    pub deadline: Duration,
}

impl Default for LiveLoadConfig {
    fn default() -> Self {
        LiveLoadConfig {
            clients: 1000,
            requests_per_client: 20,
            workers: 4,
            shards: 2,
            queue_cap: LiveConfig::default().queue_cap,
            stalled: 0,
            stalled_requests: 4000,
            deadline: Duration::from_secs(120),
        }
    }
}

impl LiveLoadConfig {
    /// Overrides the client count (builder style).
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients.max(1);
        self
    }

    /// Overrides the per-client request count (builder style).
    pub fn with_requests_per_client(mut self, requests: usize) -> Self {
        self.requests_per_client = requests.max(1);
        self
    }

    /// Overrides the worker thread count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the reactor shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the reactor queue cap (builder style).
    pub fn with_queue_cap(mut self, bytes: usize) -> Self {
        self.queue_cap = bytes;
        self
    }

    /// Adds stalled (never-reading) clients (builder style).
    pub fn with_stalled(mut self, stalled: usize) -> Self {
        self.stalled = stalled;
        self
    }
}

/// The outcome of one live load run.
#[derive(Clone, Debug)]
pub struct LiveLoadReport {
    /// Responsive clients driven.
    pub clients: usize,
    /// Stalled clients driven.
    pub stalled: usize,
    /// Responses completed by responsive clients.
    pub responses: u64,
    /// Request/response failures (decode errors, dead sockets, deadline).
    pub errors: u64,
    /// Measurement wall time in seconds.
    pub duration_secs: f64,
    /// Completed responses per second.
    pub throughput_rps: f64,
    /// Latency quantiles in microseconds.
    pub p50_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th percentile latency (µs).
    pub p999_us: u64,
    /// Largest observed latency (µs).
    pub max_us: u64,
    /// `Overloaded` farewells observed by stalled clients.
    pub shed_observed: u64,
    /// The server's own counters at the end of the run.
    pub server: LiveStats,
}

impl LiveLoadReport {
    /// Human-readable report.
    pub fn render(&self) -> String {
        format!(
            "live load — {} clients ({} stalled), {} responses in {:.2}s ({:.0} req/s)\n\
             latency  p50 {} µs · p99 {} µs · p999 {} µs · max {} µs\n\
             server   accepted {} · shed {} · idle-closed {} · frames in/out {}/{}\n\
             errors {} · overloaded farewells observed {}",
            self.clients,
            self.stalled,
            self.responses,
            self.duration_secs,
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
            self.server.accepted,
            self.server.shed,
            self.server.idle_closed,
            self.server.frames_in,
            self.server.frames_out,
            self.errors,
            self.shed_observed,
        )
    }

    /// Machine-readable report (one JSON object).
    pub fn to_json(&self) -> String {
        Json::obj()
            .field("clients", self.clients as u64)
            .field("stalled", self.stalled as u64)
            .field("responses", self.responses)
            .field("errors", self.errors)
            .field("duration_secs", self.duration_secs)
            .field("throughput_rps", self.throughput_rps)
            .field("p50_us", self.p50_us)
            .field("p99_us", self.p99_us)
            .field("p999_us", self.p999_us)
            .field("max_us", self.max_us)
            .field("shed_observed", self.shed_observed)
            .field(
                "server",
                Json::obj()
                    .field("accepted", self.server.accepted)
                    .field("shed", self.server.shed)
                    .field("idle_closed", self.server.idle_closed)
                    .field("rejected", self.server.rejected)
                    .field("handshake_failures", self.server.handshake_failures)
                    .field("frames_in", self.server.frames_in)
                    .field("frames_out", self.server.frames_out),
            )
            .to_string_pretty()
    }
}

/// One worker's accumulated results.
#[derive(Default)]
struct WorkerResult {
    hist: Histogram,
    responses: u64,
    errors: u64,
    shed_observed: u64,
}

enum ClientState {
    AwaitVerdict,
    Idle,
    AwaitResponse { sent_at: Instant },
    Done,
    Dead,
}

struct Client {
    stream: TcpStream,
    inbuf: FrameBuf,
    out: Vec<u8>,
    out_off: usize,
    state: ClientState,
    completed: usize,
    sent: usize,
    stalled: bool,
}

impl Client {
    /// Connects (with retries around listen-backlog overflow under the
    /// initial storm) and queues the handshake.
    fn connect(addr: SocketAddr, id: u64, stalled: bool) -> io::Result<Client> {
        let mut last_err = None;
        for _ in 0..50 {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_nonblocking(true)?;
                    let hs = Handshake {
                        from: DeviceId::new(id),
                        service: community::SERVICE_NAME.into(),
                        resume: None,
                    };
                    return Ok(Client {
                        stream,
                        inbuf: FrameBuf::new(),
                        out: frame(&hs.encode()),
                        out_off: 0,
                        state: ClientState::AwaitVerdict,
                        completed: 0,
                        sent: 0,
                        stalled,
                    });
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::ErrorKind::ConnectionRefused.into()))
    }

    /// Flushes pending output; false means the socket died.
    fn flush(&mut self) -> bool {
        while self.out_off < self.out.len() {
            match self.stream.write(&self.out[self.out_off..]) {
                Ok(0) => return false,
                Ok(n) => self.out_off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.out.clear();
        self.out_off = 0;
        true
    }

    /// Reads whatever is available; false means the socket died (EOF or
    /// error).
    fn pump(&mut self) -> bool {
        let mut tmp = [0u8; 4096];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => return false,
                Ok(n) => self.inbuf.extend(&tmp[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }
}

/// Drives one worker's clients through the closed request loop.
fn run_worker(
    mut clients: Vec<Client>,
    requests_per_client: usize,
    stalled_requests: usize,
    deadline: Instant,
) -> WorkerResult {
    let mut result = WorkerResult::default();
    let request = frame(&Request::GetOnlineMemberList.encode());
    loop {
        let mut pending = false;
        let mut activity = false;
        for (i, c) in clients.iter_mut().enumerate() {
            match c.state {
                ClientState::Done | ClientState::Dead => continue,
                _ => {}
            }
            pending = true;

            if !c.flush() {
                // A dead socket is expected for stalled clients (they get
                // shed); for responsive ones it is a failure.
                if !c.stalled {
                    result.errors += 1;
                }
                c.state = ClientState::Dead;
                continue;
            }

            // Stalled clients write, never read.
            if c.stalled {
                if matches!(c.state, ClientState::AwaitVerdict) {
                    // Even a stalled client must finish the handshake read.
                    if !c.pump() {
                        c.state = ClientState::Dead;
                        continue;
                    }
                    match c.inbuf.pop() {
                        Ok(Some(f)) => {
                            if f.first() == Some(&VERDICT_ACCEPT) {
                                c.state = ClientState::Idle;
                            } else {
                                result.errors += 1;
                                c.state = ClientState::Dead;
                            }
                            activity = true;
                        }
                        Ok(None) => {}
                        Err(_) => {
                            result.errors += 1;
                            c.state = ClientState::Dead;
                        }
                    }
                } else if c.sent < stalled_requests {
                    if c.out.is_empty() {
                        let req = Request::GetProfile {
                            member: "bob".into(),
                            requester: format!("visitor-{i}"),
                        };
                        c.out = frame(&req.encode());
                        c.out_off = 0;
                        c.sent += 1;
                        activity = true;
                    }
                } else {
                    c.state = ClientState::Done;
                }
                continue;
            }

            if !c.pump() {
                // EOF before finishing: shed/idle/server-side close.
                result.errors += 1;
                c.state = ClientState::Dead;
                continue;
            }
            loop {
                let f = match c.inbuf.pop() {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(_) => {
                        result.errors += 1;
                        c.state = ClientState::Dead;
                        break;
                    }
                };
                activity = true;
                match &c.state {
                    ClientState::AwaitVerdict => {
                        if f.first() == Some(&VERDICT_ACCEPT) {
                            c.state = ClientState::Idle;
                        } else {
                            result.errors += 1;
                            c.state = ClientState::Dead;
                        }
                    }
                    ClientState::AwaitResponse { sent_at } => {
                        if let Some(kind) = parse_farewell(&f) {
                            if kind == ErrorKind::Overloaded {
                                result.shed_observed += 1;
                            }
                            result.errors += 1;
                            c.state = ClientState::Dead;
                        } else if Response::decode_exact(&f).is_ok() {
                            let us = sent_at.elapsed().as_micros() as u64;
                            result.hist.record(us);
                            result.responses += 1;
                            c.completed += 1;
                            c.state = if c.completed >= requests_per_client {
                                ClientState::Done
                            } else {
                                ClientState::Idle
                            };
                        } else {
                            result.errors += 1;
                            c.state = ClientState::Dead;
                        }
                    }
                    _ => {}
                }
            }
            if matches!(c.state, ClientState::Idle) && c.out.is_empty() {
                c.out.clone_from(&request);
                c.out_off = 0;
                c.state = ClientState::AwaitResponse {
                    sent_at: Instant::now(),
                };
                activity = true;
            }
        }

        if !pending {
            break;
        }
        if Instant::now() >= deadline {
            // Whatever is still in flight counts as an error.
            for c in &clients {
                if !matches!(c.state, ClientState::Done | ClientState::Dead) {
                    result.errors += 1;
                }
            }
            break;
        }
        if !activity {
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    // Give stalled clients one short read pass to observe their farewell
    // (buffered responses drain first; the farewell is the last frame, so
    // keep popping even after EOF).
    for c in clients.iter_mut().filter(|c| c.stalled) {
        let t0 = Instant::now();
        'drain: while t0.elapsed() < Duration::from_millis(800) {
            let alive = c.pump();
            loop {
                match c.inbuf.pop() {
                    Ok(Some(f)) => {
                        if parse_farewell(&f) == Some(ErrorKind::Overloaded) {
                            result.shed_observed += 1;
                            break 'drain;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => break 'drain,
                }
            }
            if !alive {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    result
}

/// Runs one live load experiment end to end (server + clients in this
/// process).
///
/// # Errors
///
/// Returns any socket error from booting the server or connecting clients.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_live_load(config: &LiveLoadConfig) -> io::Result<LiveLoadReport> {
    let app = CommunityApp::with_member(
        "bob",
        "pw",
        Profile::new("Bob").with_interests(["rust", "sauna", "football"]),
    );
    let server = LiveConfig::default()
        .with_listen_shards(config.shards)
        .with_queue_cap(config.queue_cap)
        .with_auto_service_discovery(false)
        .serve("live-daemon", app)?;
    let addr = server.addr();

    let workers = config.workers.min(config.clients + config.stalled).max(1);
    let total = config.clients + config.stalled;
    let barrier = Arc::new(Barrier::new(workers + 1));
    let mut handles = Vec::new();
    for w in 0..workers {
        // Client i runs on worker i % workers; ids are 1-based (the server
        // itself is device 0). The last `config.stalled` ids stall.
        let my_ids: Vec<(u64, bool)> = (0..total)
            .filter(|i| i % workers == w)
            .map(|i| (i as u64 + 1, i >= config.clients))
            .collect();
        let barrier = Arc::clone(&barrier);
        let requests_per_client = config.requests_per_client;
        let stalled_requests = config.stalled_requests;
        let deadline_len = config.deadline;
        handles.push(
            std::thread::Builder::new()
                .name(format!("ph-live-load-{w}"))
                .spawn(move || {
                    let clients: Vec<Client> = my_ids
                        .into_iter()
                        .filter_map(|(id, stalled)| Client::connect(addr, id, stalled).ok())
                        .collect();
                    barrier.wait();
                    run_worker(
                        clients,
                        requests_per_client,
                        stalled_requests,
                        Instant::now() + deadline_len,
                    )
                })?,
        );
    }

    barrier.wait();
    let t0 = Instant::now();
    let mut hist = Histogram::new();
    let mut responses = 0;
    let mut errors = 0;
    let mut shed_observed = 0;
    for h in handles {
        let r = h.join().expect("load worker panicked");
        hist.merge(&r.hist);
        responses += r.responses;
        errors += r.errors;
        shed_observed += r.shed_observed;
    }
    let duration = t0.elapsed();
    let stats = server.stats();
    server.shutdown();

    let expected = (config.clients * config.requests_per_client) as u64;
    errors += expected.saturating_sub(responses + errors);
    let duration_secs = duration.as_secs_f64().max(1e-9);
    Ok(LiveLoadReport {
        clients: config.clients,
        stalled: config.stalled,
        responses,
        errors,
        duration_secs,
        throughput_rps: responses as f64 / duration_secs,
        p50_us: hist.quantile(0.50),
        p99_us: hist.quantile(0.99),
        p999_us: hist.quantile(0.999),
        max_us: hist.max(),
        shed_observed,
        server: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone_and_exhaustive() {
        // Every index must be reachable and midpoints must not decrease.
        let mut last = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 1_000_000, u64::MAX] {
            let idx = Histogram::index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let mid = Histogram::midpoint(idx);
            assert!(mid >= last || v < LINEAR_CUTOFF, "midpoints regress at {v}");
            last = mid;
        }
    }

    #[test]
    fn histogram_quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        for (q, expect) in [(0.5, 5_000.0), (0.99, 9_900.0), (0.999, 9_990.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.04, "q{q}: got {got}, want ~{expect} ({rel:.3})");
        }
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn small_live_load_round_trips() {
        let report = run_live_load(
            &LiveLoadConfig::default()
                .with_clients(24)
                .with_requests_per_client(4)
                .with_workers(2)
                .with_shards(1),
        )
        .expect("load run");
        assert_eq!(report.responses, 24 * 4, "errors: {}", report.errors);
        assert_eq!(report.errors, 0);
        assert_eq!(report.server.shed, 0);
        assert!(report.p50_us > 0);
        assert!(report.p99_us >= report.p50_us);
    }
}
