//! `repro` — regenerate every table and figure of the thesis evaluation.
//!
//! Run `repro help` for the experiment list; `repro all` runs everything.
//! Each subcommand prints a paper-vs-measured report to stdout.

use std::process::ExitCode;

use ph_harness::{ablations, bubbles, crowd, functionality, live, msc, scenario, table8};

/// Counts heap allocations so `repro crowd` can prove the interned trace
/// path allocates nothing in steady state (see
/// [`crowd::trace_alloc_burst`]). Deallocation is uncounted: only the
/// allocation delta matters.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: delegates every operation to `System` unchanged; the only
    // addition is a relaxed counter increment.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let trials = flag_value(&args, "--trials").unwrap_or(30) as usize;
    let seed = flag_value(&args, "--seed").unwrap_or(2008);

    match cmd {
        "table3" => run_table3(seed),
        "table6" => run_table6(),
        "table7" => run_table7(seed),
        "table8" if args.iter().any(|a| a == "--json") => {
            println!("{}", table8::run(trials, seed).to_json());
        }
        "table8" => run_table8(trials, seed),
        "tables-static" => run_tables_static(),
        "fig6" => run_fig6(),
        "fig7" => run_msc(msc::MscOp::WorkingPrinciple, seed),
        "msc" => {
            let Some(op) = flag_str(&args, "--op").and_then(|s| msc::MscOp::parse(&s)) else {
                eprintln!(
                    "msc needs --op <member-list|interest-list|view-profile|put-comment|\
                     trusted-friends|shared-content|send-message|working-principle>"
                );
                return ExitCode::FAILURE;
            };
            run_msc(op, seed)
        }
        "msc-all" => {
            for op in msc::MscOp::ALL {
                run_msc(op, seed);
                println!();
            }
        }
        "lab" => {
            let faults = flag_str(&args, "--faults").unwrap_or_else(|| "none".to_owned());
            let Some(plan) = scenario::fault_profile(&faults) else {
                eprintln!("unknown fault profile {faults:?}; known profiles: none, lossy");
                return ExitCode::FAILURE;
            };
            let peers = flag_value(&args, "--peers").unwrap_or(3) as usize;
            let horizon = flag_value(&args, "--horizon").unwrap_or(120);
            let gossip = args.iter().any(|a| a == "--gossip");
            run_lab(seed, peers, horizon, plan, gossip);
        }
        "bubbles" => {
            let faults = flag_str(&args, "--faults").unwrap_or_else(|| "none".to_owned());
            let Some(plan) = scenario::fault_profile(&faults) else {
                eprintln!("unknown fault profile {faults:?}; known profiles: none, lossy");
                return ExitCode::FAILURE;
            };
            let config = bubbles::BubblesConfig {
                seed,
                bubbles: flag_value(&args, "--bubbles").unwrap_or(3) as usize,
                nodes_per_bubble: flag_value(&args, "--per-bubble").unwrap_or(4) as usize,
                ferries: flag_value(&args, "--ferries").unwrap_or(2) as usize,
                horizon: std::time::Duration::from_secs(
                    flag_value(&args, "--horizon").unwrap_or(600),
                ),
                threads: flag_value(&args, "--threads").unwrap_or(1) as usize,
                region_lanes: flag_value(&args, "--regions").unwrap_or(0) as usize,
                faults: plan,
                ..bubbles::BubblesConfig::default()
            };
            match bubbles::run(&config) {
                Ok(report) => {
                    if args.iter().any(|a| a == "--json") {
                        println!("{}", report.to_json().to_string_pretty());
                    } else {
                        print!("{}", report.render());
                    }
                }
                Err(e) => {
                    eprintln!("bubbles config rejected: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "crowd" => {
            let sizes: Vec<usize> = flag_str(&args, "--nodes")
                .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
                .unwrap_or_else(|| vec![30, 100, 300, 1000]);
            if sizes.is_empty() {
                eprintln!("crowd needs --nodes N[,N,...] (or omit for the default sweep)");
                return ExitCode::FAILURE;
            }
            let horizon = flag_value(&args, "--horizon").unwrap_or(60);
            let threads = flag_value(&args, "--threads").unwrap_or(1) as usize;
            let regions = flag_value(&args, "--regions").unwrap_or(0) as usize;
            let region_edge = flag_str(&args, "--region-edge")
                .map(|s| s.parse::<f64>().unwrap_or(-1.0))
                .unwrap_or(0.0);
            let faults = flag_str(&args, "--faults").unwrap_or_else(|| "none".to_owned());
            if scenario::fault_profile(&faults).is_none() {
                eprintln!("unknown fault profile {faults:?}; known profiles: none, lossy");
                return ExitCode::FAILURE;
            }
            let ok = run_crowd(
                &sizes,
                horizon,
                seed,
                threads,
                regions,
                region_edge,
                &faults,
                args.iter().any(|a| a == "--json"),
                args.iter().any(|a| a == "--selfcheck"),
            );
            if !ok {
                return ExitCode::FAILURE;
            }
        }
        "live" => {
            let config = live::LiveLoadConfig::default()
                .with_clients(flag_value(&args, "--clients").unwrap_or(1000) as usize)
                .with_requests_per_client(flag_value(&args, "--requests").unwrap_or(20) as usize)
                .with_workers(flag_value(&args, "--workers").unwrap_or(4) as usize)
                .with_shards(flag_value(&args, "--shards").unwrap_or(2) as usize)
                .with_stalled(flag_value(&args, "--stalled").unwrap_or(0) as usize);
            let config = match flag_value(&args, "--queue-cap") {
                Some(cap) => config.with_queue_cap(cap as usize),
                None => config,
            };
            match live::run_live_load(&config) {
                Ok(report) => {
                    if args.iter().any(|a| a == "--json") {
                        println!("{}", report.to_json());
                    } else {
                        println!("{}", report.render());
                    }
                }
                Err(e) => {
                    eprintln!("live load failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "ablation-tech" => run_ablation_tech(trials.min(20), seed),
        "ablation-scaling" => run_ablation_scaling(seed),
        "ablation-semantics" => run_ablation_semantics(seed),
        "ablation-handover" => run_ablation_handover(trials.min(10), seed),
        "ablation-churn" => run_ablation_churn(seed),
        "all" => {
            run_tables_static();
            run_table3(seed);
            run_table6();
            run_table7(seed);
            run_table8(trials, seed);
            run_fig6();
            for op in msc::MscOp::ALL {
                run_msc(op, seed);
                println!();
            }
            run_ablation_tech(10, seed);
            run_ablation_scaling(seed);
            run_ablation_semantics(seed);
            run_ablation_handover(8, seed);
            run_ablation_churn(seed);
        }
        "help" | "--help" | "-h" => print_help(),
        other => {
            eprintln!("unknown command {other:?}; run `repro help`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run_table3(seed: u64) {
    let checks = functionality::table3(seed);
    println!(
        "{}",
        functionality::render_checks("Table 3 — functionality of PeerHood (executed)", &checks)
    );
}

fn run_table6() {
    let checks = functionality::table6();
    println!(
        "{}",
        functionality::render_checks(
            "Table 6 — client requests and corresponding server functions (executed)",
            &checks
        )
    );
}

fn run_table7(seed: u64) {
    let checks = functionality::table7(seed);
    println!(
        "{}",
        functionality::render_checks(
            "Table 7 — features of the reference implementation (executed)",
            &checks
        )
    );
}

fn run_table8(trials: usize, seed: u64) {
    println!("{}", table8::run(trials, seed).render());
}

fn run_tables_static() {
    println!("Table 1 — WLAN standards (as surveyed by the thesis)");
    for w in sns::catalog::WLAN_STANDARDS {
        println!("  {:<22} {:<42} {}", w.standard, w.data_rate, w.security);
    }
    println!("\nTable 2 — social networking sites and registered users (2008)");
    for e in sns::catalog::SNS_CATALOG {
        println!(
            "  {:<20} {:<18} {:>12}  {}",
            e.name, e.url, e.registered_users, e.focus
        );
    }
    println!();
}

fn run_fig6() {
    use community::discovery::Discovery;
    use community::semantics::MatchPolicy;
    use community::Interest;

    println!("Figure 6 — dynamic group discovery algorithm (worked example)");
    let own: Vec<Interest> = ["Football", "Mobile P2P", "Sauna"]
        .into_iter()
        .map(Interest::new)
        .collect();
    let neighbors: Vec<(String, Vec<Interest>)> = vec![
        (
            "arto".into(),
            vec![Interest::new("football"), Interest::new("guitar")],
        ),
        (
            "jari".into(),
            vec![Interest::new("Mobile P2P"), Interest::new("sauna")],
        ),
        ("petri".into(), vec![Interest::new("chess")]),
    ];
    println!("  active user 'bishal' interests: {own:?}");
    for (name, interests) in &neighbors {
        println!("  nearby member {name}: {interests:?}");
    }
    println!("  comparing each personal interest with each nearby member's interests...");
    let groups = Discovery::new("bishal", &MatchPolicy::Exact).groups(&own, &neighbors);
    for group in groups.values() {
        println!(
            "  -> group {:?} formed with members {:?}",
            group.label, group.members
        );
    }
    println!();
}

fn run_msc(op: msc::MscOp, seed: u64) {
    let run = msc::run(op, seed);
    println!("{}", run.render());
}

fn run_ablation_tech(trials: usize, seed: u64) {
    let rows = ablations::discovery_by_technology(trials.max(3), seed);
    println!("{}", ablations::render_discovery_by_technology(&rows));
}

fn run_ablation_scaling(seed: u64) {
    let points = ablations::scaling(&[1, 2, 4, 8], 3, seed);
    println!("{}", ablations::render_scaling(&points));
}

fn run_ablation_semantics(seed: u64) {
    let rows: Vec<_> = [1usize, 2, 3, 4, 6]
        .into_iter()
        .map(|spellings| ablations::semantics(40, 5, spellings, seed))
        .collect();
    println!("{}", ablations::render_semantics(&rows));
}

fn run_ablation_handover(trials: usize, seed: u64) {
    let rows = ablations::handover(trials.max(2), seed);
    println!("{}", ablations::render_handover(&rows));
}

fn run_ablation_churn(seed: u64) {
    let rows: Vec<_> = [4usize, 8, 16]
        .into_iter()
        .map(|members| ablations::churn(members, 8, seed))
        .collect();
    println!("{}", ablations::render_churn(&rows));
}

fn run_lab(seed: u64, peers: usize, horizon_secs: u64, faults: netsim::FaultPlan, gossip: bool) {
    use netsim::SimTime;
    use peerhood::gossip::GossipConfig;

    let mut s = scenario::lab(&scenario::LabConfig {
        seed,
        peer_count: peers,
        faults,
        gossip: gossip.then(|| GossipConfig::default().rng_salt(seed)),
        ..scenario::LabConfig::default()
    });
    s.cluster.run_until(SimTime::from_secs(horizon_secs));
    let groups = s.cluster.app(s.observer).groups();
    if gossip {
        // Same node-order fold as `harness::bubbles::run`: the digest and
        // the printed stats then cover the epidemic traffic.
        let mut sum = peerhood::gossip::GossipStats::default();
        for &id in std::iter::once(&s.observer).chain(&s.peers) {
            if let Some(rt) = s.cluster.app(id).gossip() {
                let st = rt.stats();
                sum.eager += st.eager;
                sum.lazy += st.lazy;
                sum.graft += st.graft;
                sum.prune += st.prune;
                sum.duplicate += st.duplicate;
            }
        }
        let stats = s.cluster.trace_mut().stats_mut();
        stats.gossip_eager += sum.eager;
        stats.gossip_lazy += sum.lazy;
        stats.gossip_graft += sum.graft;
        stats.gossip_prune += sum.prune;
        stats.gossip_duplicate += sum.duplicate;
    }
    println!(
        "Lab scenario — {peers} peers, {horizon_secs}s horizon, gossip {}",
        if gossip { "on" } else { "off" }
    );
    for g in &groups {
        println!("  group {:?}: {:?}", g.key, g.members);
    }
    println!("  trace digest {:016x}", s.cluster.trace().digest());
    println!("  {}", s.cluster.stats());
}

#[allow(clippy::too_many_arguments)]
fn run_crowd(
    sizes: &[usize],
    horizon_secs: u64,
    seed: u64,
    threads: usize,
    regions: usize,
    region_edge: f64,
    faults: &str,
    json: bool,
    selfcheck: bool,
) -> bool {
    use std::sync::atomic::Ordering;

    let base = crowd::CrowdConfig {
        seed,
        horizon: std::time::Duration::from_secs(horizon_secs),
        threads,
        region_lanes: regions,
        region_edge_m: region_edge,
        faults: scenario::fault_profile(faults).expect("profile validated by the caller"),
        ..crowd::CrowdConfig::default()
    };
    let reports = match crowd::sweep(&base, sizes) {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("crowd config rejected: {e}");
            return false;
        }
    };

    // Sharding self-check: rerun each size with the epoch engine disabled
    // (one worker, one lane, default grid) and require byte-identical
    // trace digests — proving the fork/join merge and the region sharding
    // are pure performance transforms. Up to 10k nodes a third run with a
    // deliberately different lane count and region edge double-checks the
    // grid knobs too.
    let mut selfcheck_ok = true;
    let mut selfcheck_lines = Vec::new();
    if selfcheck {
        let serial_base = crowd::CrowdConfig {
            threads: 1,
            region_lanes: 1,
            region_edge_m: 0.0,
            compare_naive: false,
            ..base.clone()
        };
        for report in &reports {
            let serial = match crowd::run(&crowd::CrowdConfig {
                nodes: report.nodes,
                ..serial_base.clone()
            }) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("crowd selfcheck config rejected: {e}");
                    return false;
                }
            };
            let mut ok = serial.digest == report.digest && serial.stats == report.stats;
            if report.nodes <= 10_000 {
                let resharded = match crowd::run(&crowd::CrowdConfig {
                    nodes: report.nodes,
                    region_lanes: 3,
                    region_edge_m: 40.0,
                    ..serial_base.clone()
                }) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("crowd selfcheck config rejected: {e}");
                        return false;
                    }
                };
                ok &= resharded.digest == report.digest && resharded.stats == report.stats;
            }
            selfcheck_ok &= ok;
            selfcheck_lines.push(format!(
                "selfcheck nodes={} threads={} lanes={} vs serial-merge: {} \
                 (digest {:016x} vs {:016x})",
                report.nodes,
                report.threads,
                report.region_lanes,
                if ok { "MATCH" } else { "MISMATCH" },
                report.digest,
                serial.digest,
            ));
        }
    }

    let (burst_events, burst_allocs) =
        crowd::trace_alloc_burst(&|| counting_alloc::ALLOCS.load(Ordering::Relaxed));
    if json {
        let runs: Vec<_> = reports.iter().map(crowd::CrowdReport::to_json).collect();
        let mut doc = codec::json::Json::obj()
            .field("scenario", "crowd")
            .field("seed", seed)
            .field("horizon_secs", horizon_secs)
            .field("threads", threads)
            .field("faults", faults)
            .field("runs", runs)
            .field(
                "trace_alloc_burst",
                codec::json::Json::obj()
                    .field("events", burst_events)
                    .field("allocations", burst_allocs)
                    .field(
                        "allocs_per_event",
                        burst_allocs as f64 / burst_events as f64,
                    ),
            );
        if selfcheck {
            doc = doc.field("selfcheck", if selfcheck_ok { "match" } else { "mismatch" });
        }
        println!("{}", doc.to_string_pretty());
    } else {
        print!("{}", crowd::render(&reports));
        println!(
            "\ninterned trace burst: {burst_events} events, {burst_allocs} heap allocations \
             ({:.4}/event)",
            burst_allocs as f64 / burst_events as f64
        );
        for line in &selfcheck_lines {
            println!("{line}");
        }
    }
    if !selfcheck_ok {
        eprintln!("crowd selfcheck FAILED: parallel trace digest diverged from serial");
    }
    selfcheck_ok
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn print_help() {
    println!(
        "repro — regenerate the thesis evaluation (tables and figures)\n\
         \n\
         usage: repro <command> [--trials N] [--seed S]\n\
         \n\
         paper artifacts:\n\
           table3              PeerHood functionality, each row executed\n\
           table6              client requests vs server functions, each opcode executed\n\
           table7              reference-application features, each exercised\n\
           table8              task times: SNS (Facebook/Hi5 x N810/N95) vs PeerHood\n\
           tables-static       tables 1 & 2 (literature survey data)\n\
           fig6                dynamic group discovery algorithm, worked example\n\
           fig7                working-principle trace (register/discover/connect/exchange)\n\
           msc --op <name>     one MSC figure (11-17) as an ASCII chart\n\
           msc-all             all MSC figures\n\
         \n\
         ablations (beyond the thesis):\n\
           ablation-tech       discovery latency per technology\n\
           ablation-scaling    group discovery & op cost vs neighborhood size\n\
           ablation-semantics  group fragmentation vs taught synonyms\n\
           ablation-handover   seamless connectivity on/off under mobility\n\
           ablation-churn      group-view accuracy with wandering members\n\
         \n\
         scenarios (beyond the thesis):\n\
           lab                 the ComLab-room scenario as a directly runnable\n\
                               experiment [--peers N] [--horizon SECS]\n\
                               [--faults none|lossy] [--gossip]\n\
           bubbles             k disjoint radio bubbles bridged by ferry nodes;\n\
                               epidemic gossip carries membership and a blob\n\
                               across all bubbles; reports delivery ratio, hop\n\
                               and latency distributions, duplicate overhead\n\
                               [--bubbles K] [--per-bubble N] [--ferries F]\n\
                               [--horizon SECS] [--threads N] [--regions N]\n\
                               [--faults none|lossy] [--json]\n\
         \n\
         scale (beyond the thesis):\n\
           crowd               random-waypoint campus crowd; reports wall-clock,\n\
                               events/s, trace memory and group formation\n\
                               [--nodes N[,N,...]] [--horizon SECS] [--json]\n\
                               [--threads N]   epoch-engine workers (1 = serial,\n\
                                               0 = auto); digests are identical\n\
                               [--regions N]   region event lanes (0 = default);\n\
                                               pure sharding, digests identical\n\
                               [--region-edge M] spatial region edge in metres\n\
                                               (0 = default 80); digests identical\n\
                               [--selfcheck]   rerun on the serial-merge engine\n\
                                               (and resharded, <=10k nodes); fail\n\
                                               on any digest drift\n\
                               [--faults P]    inject a named fault profile\n\
                                               (none | lossy: 10% BT frame loss +\n\
                                               burst episodes, recovery enabled)\n\
         \n\
           live                live-serving load: real TCP clients against the\n\
                               reactor; p50/p99/p999 latency + throughput\n\
                               [--clients N] [--requests N] [--workers N]\n\
                               [--shards N] [--queue-cap BYTES] [--stalled N]\n\
                               [--json]\n\
         \n\
           all                 everything above (crowd/live excluded; run directly)"
    );
}
