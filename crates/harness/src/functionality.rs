//! Tables 3, 6 and 7: functionality and feature verification.
//!
//! These tables are checklists in the thesis; here every row is *executed*
//! against the real stack and reported with a pass/fail verdict:
//!
//! * Table 3 — the seven PeerHood middleware functionalities, each driven
//!   through the simulated radio environment;
//! * Table 6 — every client request opcode dispatched against a live
//!   member store, with the observed response;
//! * Table 7 — every feature of the reference application exercised
//!   end-to-end in a lab scenario.

use std::time::Duration;

use netsim::geometry::Point2;
use netsim::mobility::ScriptedPath;
use netsim::world::NodeBuilder;
use netsim::{SimTime, Technology};

use peerhood::api::AppEvent;
use peerhood::app::{AppCtx, Application};
use peerhood::service::ServiceInfo;
use peerhood::sim::Cluster;
use peerhood::types::{ConnId, DeviceId};

use community::node::OpMode;
use community::profile::Profile;
use community::protocol::{Request, Response};
use community::semantics::MatchPolicy;
use community::server::handle_request;
use community::store::MemberStore;
use community::{OpResult, SharedOutcome};

use crate::report::TextTable;
use crate::scenario::{lab, LabConfig};

/// One verified checklist row.
#[derive(Clone, Debug)]
pub struct Check {
    /// Row name as it appears in the thesis table.
    pub name: String,
    /// Whether the behaviour was observed.
    pub passed: bool,
    /// What was observed.
    pub note: String,
}

fn check(name: &str, passed: bool, note: impl Into<String>) -> Check {
    Check {
        name: name.to_owned(),
        passed,
        note: note.into(),
    }
}

/// Renders a checklist as a table.
pub fn render_checks(title: &str, checks: &[Check]) -> String {
    let mut t = TextTable::new(["Functionality", "Verified", "Observation"]);
    for c in checks {
        t.add_row([
            c.name.clone(),
            if c.passed { "yes".into() } else { "NO".into() },
            c.note.clone(),
        ]);
    }
    format!("{title}\n{}", t.render())
}

// ---------------------------------------------------------------------
// Table 3 — PeerHood functionality
// ---------------------------------------------------------------------

/// Minimal event recorder used to observe raw PeerHood behaviour.
#[derive(Default)]
struct Probe {
    serve: bool,
    appeared: Vec<DeviceId>,
    service_lists: Vec<(DeviceId, Vec<String>)>,
    connected: Vec<ConnId>,
    incoming: Vec<ConnId>,
    data: Vec<codec::Bytes>,
    monitor_alerts: Vec<(DeviceId, bool)>,
    handovers: Vec<(Technology, Technology)>,
    closed: usize,
}

impl Application for Probe {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        if self.serve {
            ctx.peerhood()
                .register_service(ServiceInfo::new("probe-svc"));
        }
    }

    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
        match event {
            AppEvent::DeviceAppeared(info) => {
                self.appeared.push(info.id);
                ctx.peerhood().monitor(info.id);
                ctx.peerhood().request_service_list(info.id);
            }
            AppEvent::ServiceList {
                device, services, ..
            } => self.service_lists.push((
                device,
                services.iter().map(|s| s.name().to_owned()).collect(),
            )),
            AppEvent::Connected { conn, .. } => self.connected.push(conn),
            AppEvent::Incoming { conn, .. } => self.incoming.push(conn),
            AppEvent::Data { payload, .. } => self.data.push(payload),
            AppEvent::MonitorAlert { device, appeared } => {
                self.monitor_alerts.push((device.id, appeared))
            }
            AppEvent::Handover { from, to, .. } => self.handovers.push((from, to)),
            AppEvent::Closed { .. } => self.closed += 1,
            _ => {}
        }
    }
}

/// Executes every row of Table 3 and reports the verdicts.
pub fn table3(seed: u64) -> Vec<Check> {
    let mut checks = Vec::new();

    // Rows 1–5 in one scenario: two stationary devices in Bluetooth range.
    let mut c: Cluster<Probe> = Cluster::new(seed);
    let a = c.add_node(NodeBuilder::new("a").at(Point2::ORIGIN), Probe::default());
    let b = c.add_node(
        NodeBuilder::new("b").at(Point2::new(4.0, 0.0)),
        Probe {
            serve: true,
            ..Probe::default()
        },
    );
    c.start();
    c.run_until(SimTime::from_secs(20));

    let b_dev = c.device_id(b);
    checks.push(check(
        "Device Discovery",
        c.app(a).appeared.contains(&b_dev),
        "device b discovered at node a within 20 s of startup".to_string(),
    ));
    let saw_service = c
        .app(a)
        .service_lists
        .iter()
        .any(|(d, svcs)| *d == b_dev && svcs.iter().any(|s| s == "probe-svc"));
    checks.push(check(
        "Service Discovery",
        saw_service,
        "remote service list contains the registered probe-svc",
    ));
    checks.push(check(
        "Service Sharing",
        c.daemon(b).services().contains("probe-svc"),
        "probe-svc registered in node b's daemon registry",
    ));

    c.with_app(a, |_, ctx| ctx.peerhood().connect(b_dev, "probe-svc"));
    c.run_until(SimTime::from_secs(25));
    let conn_ok = c.app(a).connected.len() == 1 && c.app(b).incoming.len() == 1;
    checks.push(check(
        "Connection Establishment",
        conn_ok,
        "client Connected and server Incoming events observed",
    ));

    if conn_ok {
        let conn = c.app(a).connected[0];
        c.with_app(a, |_, ctx| {
            ctx.peerhood()
                .send(conn, codec::Bytes::from_static(b"hello peerhood"))
        });
        c.run_until(SimTime::from_secs(26));
    }
    checks.push(check(
        "Data Transmission between Devices",
        c.app(b).data.first().map(|d| &d[..]) == Some(b"hello peerhood".as_ref()),
        "payload delivered intact over the simulated Bluetooth link",
    ));

    // Row 6 — active monitoring: departure raises an alert.
    let mut c: Cluster<Probe> = Cluster::new(seed ^ 0x11);
    let a = c.add_node(
        NodeBuilder::new("watcher").at(Point2::ORIGIN),
        Probe::default(),
    );
    let _walker = c.add_node(
        NodeBuilder::new("walker")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(4.0, 0.0)),
                (SimTime::from_secs(30), Point2::new(4.0, 0.0)),
                (SimTime::from_secs(50), Point2::new(900.0, 0.0)),
            ]))
            .with_technologies([Technology::Bluetooth]),
        Probe::default(),
    );
    c.start();
    c.run_until(SimTime::from_secs(180));
    let alerts = &c.app(a).monitor_alerts;
    checks.push(check(
        "Active monitoring of a device",
        alerts.iter().any(|(_, appeared)| !appeared),
        format!("{} monitor alerts, including a disappearance", alerts.len()),
    ));

    // Row 7 — seamless connectivity: Bluetooth link breaks, connection
    // migrates to WLAN.
    let mut c: Cluster<Probe> = Cluster::new(seed ^ 0x22);
    let a = c.add_node(
        NodeBuilder::new("a")
            .at(Point2::ORIGIN)
            .with_technologies([Technology::Bluetooth, Technology::Wlan]),
        Probe::default(),
    );
    let b = c.add_node(
        NodeBuilder::new("b")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(4.0, 0.0)),
                (SimTime::from_secs(30), Point2::new(4.0, 0.0)),
                (SimTime::from_secs(45), Point2::new(40.0, 0.0)),
            ]))
            .with_technologies([Technology::Bluetooth, Technology::Wlan]),
        Probe {
            serve: true,
            ..Probe::default()
        },
    );
    c.start();
    c.run_until(SimTime::from_secs(20));
    let b_dev = c.device_id(b);
    c.with_app(a, |_, ctx| ctx.peerhood().connect(b_dev, "probe-svc"));
    c.run_until(SimTime::from_secs(25));
    if let Some(&conn) = c.app(a).connected.first() {
        for t in (26..70).step_by(2) {
            c.run_until(SimTime::from_secs(t));
            c.with_app(a, |_, ctx| {
                ctx.peerhood()
                    .send(conn, codec::Bytes::from_static(b"chunk"))
            });
        }
    }
    c.run_until(SimTime::from_secs(80));
    let survived = c.app(a).closed == 0
        && c.app(a)
            .handovers
            .contains(&(Technology::Bluetooth, Technology::Wlan));
    checks.push(check(
        "Seamless Connectivity",
        survived,
        format!(
            "connection migrated {:?} without closing; {} frames delivered",
            c.app(a).handovers,
            c.app(b).data.len()
        ),
    ));

    checks
}

// ---------------------------------------------------------------------
// Table 6 — client requests and corresponding server functions
// ---------------------------------------------------------------------

/// Executes every Table 6 request against a prepared store and reports the
/// observed server function.
pub fn table6() -> Vec<Check> {
    let mut store = MemberStore::new();
    store
        .create_account(
            "bob",
            "pw",
            Profile::new("Bob").with_interests(["football"]),
        )
        .expect("fresh store");
    store.login("bob", "pw").expect("valid credentials");
    store
        .require_active()
        .expect("logged in")
        .trusted
        .insert("alice".to_owned());
    store
        .require_active()
        .expect("logged in")
        .shared
        .share("song.mp3", "music", vec![1, 2, 3]);
    let policy = MatchPolicy::Exact;
    let now = SimTime::from_secs(1);

    type Verify = fn(&Response) -> bool;
    let cases: Vec<(Request, &str, Verify)> = vec![
        (
            Request::GetOnlineMemberList,
            "identifies list of online members and transmits it",
            |r| matches!(r, Response::MemberList(v) if v == &["bob"]),
        ),
        (
            Request::GetInterestList,
            "identifies list of local interests and transmits it",
            |r| matches!(r, Response::InterestList(v) if !v.is_empty()),
        ),
        (
            Request::GetInterestedMemberList {
                interest: "football".into(),
            },
            "lists online members holding a common interest",
            |r| matches!(r, Response::InterestedMembers(v) if v == &["bob"]),
        ),
        (
            Request::GetProfile {
                member: "bob".into(),
                requester: "alice".into(),
            },
            "transmits the local user profile (and logs the visitor)",
            |r| matches!(r, Response::Profile(v) if v.member == "bob"),
        ),
        (
            Request::AddProfileComment {
                member: "bob".into(),
                author: "alice".into(),
                comment: "hi".into(),
            },
            "writes the received comment into the local profile",
            |r| matches!(r, Response::CommentWritten),
        ),
        (
            Request::CheckMemberId {
                member: "bob".into(),
            },
            "compares the member id with the local user's id",
            |r| matches!(r, Response::CheckMemberResult(true)),
        ),
        (
            Request::Message {
                to: "bob".into(),
                from: "alice".into(),
                subject: "s".into(),
                body: "b".into(),
            },
            "writes the message into the local inbox",
            |r| matches!(r, Response::MessageWritten),
        ),
        (
            Request::GetSharedContent {
                member: "bob".into(),
                requester: "alice".into(),
            },
            "transmits the shared-content list to trusted requesters",
            |r| matches!(r, Response::SharedContent(v) if v.len() == 1),
        ),
        (
            Request::GetTrustedFriends {
                member: "bob".into(),
            },
            "transmits the trusted-friends list",
            |r| matches!(r, Response::TrustedFriends(v) if v == &["alice"]),
        ),
        (
            Request::CheckTrusted {
                member: "bob".into(),
                requester: "alice".into(),
            },
            "answers whether the requester is trusted",
            |r| matches!(r, Response::Trusted),
        ),
        (
            Request::FetchContent {
                member: "bob".into(),
                requester: "alice".into(),
                name: "song.mp3".into(),
            },
            "transmits the bytes of one shared item to trusted requesters",
            |r| matches!(r, Response::Content { data, .. } if data.as_slice() == [1, 2, 3]),
        ),
    ];

    cases
        .into_iter()
        .map(|(req, function, verify)| {
            let label = req.label();
            let resp = handle_request(&mut store, &policy, &req, now);
            check(
                label,
                verify(&resp),
                format!("{function} -> {}", resp.label()),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 7 — features of the reference implementation
// ---------------------------------------------------------------------

/// Exercises every Table 7 feature end-to-end in one lab scenario.
pub fn table7(seed: u64) -> Vec<Check> {
    let mut checks = Vec::new();
    let mut s = lab(&LabConfig {
        seed,
        peer_count: 2,
        op_mode: OpMode::Persistent,
        fresh_inquiry_per_op: false,
        ..LabConfig::default()
    });
    let observer = s.observer;
    s.cluster.run_until(SimTime::from_secs(40));

    // Profiles: Add/Edit Profile.
    s.cluster.with_app(observer, |app, _| {
        let account = app.store_mut().require_active().expect("logged in");
        account
            .profile_mut()
            .fields
            .insert("city".into(), "Lappeenranta".into());
    });
    let edited = s
        .cluster
        .app(observer)
        .store()
        .active_account()
        .is_some_and(|a| {
            a.profile().fields.get("city").map(String::as_str) == Some("Lappeenranta")
        });
    checks.push(check(
        "Add/Edit Profile",
        edited,
        "profile field edited locally",
    ));

    // Add/Edit Personal Interest.
    s.cluster.with_app(observer, |app, ctx| {
        app.add_interest("ice hockey", ctx).expect("logged in");
    });
    let has_interest = s
        .cluster
        .app(observer)
        .store()
        .active_account()
        .is_some_and(|a| {
            a.profile()
                .interests
                .contains(&community::Interest::new("Ice Hockey"))
        });
    checks.push(check(
        "Add/Edit Personal Interest",
        has_interest,
        "interest added and group discovery re-run",
    ));

    // View All Members (Figure 11).
    let op = s
        .cluster
        .with_app(observer, |app, ctx| app.get_member_list(ctx));
    s.cluster.run_for(Duration::from_secs(10));
    let members_ok = matches!(
        s.cluster.app(observer).outcome(op).map(|o| &o.result),
        Some(OpResult::Members(v)) if v.len() == 2
    );
    checks.push(check("View All Members", members_ok, "both peers listed"));

    // View/Comment Other Members Profile.
    let op = s
        .cluster
        .with_app(observer, |app, ctx| app.view_profile("member1", ctx));
    s.cluster.run_for(Duration::from_secs(10));
    let viewed = matches!(
        s.cluster.app(observer).outcome(op).map(|o| &o.result),
        Some(OpResult::Profile(Some(v))) if v.member == "member1"
    );
    let op = s.cluster.with_app(observer, |app, ctx| {
        app.put_comment("member1", "hello!", ctx)
    });
    s.cluster.run_for(Duration::from_secs(10));
    let commented = matches!(
        s.cluster.app(observer).outcome(op).map(|o| &o.result),
        Some(OpResult::CommentResult { written: true })
    );
    checks.push(check(
        "View/Comment Other Members Profile",
        viewed && commented,
        "profile fetched and comment written",
    ));

    // View Own Viewers and Comments: member1 now has a visitor + comment.
    let peer1 = s.peers[0];
    let (visits, comments) = s.cluster.with_app(peer1, |app, _| {
        let account = app.store().active_account().expect("logged in");
        (
            account.profile().visitors.len(),
            account.profile().comments.len(),
        )
    });
    checks.push(check(
        "View Own Viewers and Comments",
        visits >= 1 && comments >= 1,
        format!("{visits} visitors, {comments} comments visible locally"),
    ));

    // Support for Multiple Profiles.
    let switched = s.cluster.with_app(observer, |app, _| {
        let account = app.store_mut().require_active().expect("logged in");
        let idx = account.add_profile(Profile::new("Work Me").with_interests(["databases"]));
        account.select_profile(idx).is_ok() && {
            let ok = account.profile().display_name == "Work Me";
            account.select_profile(0).expect("original profile");
            ok
        }
    });
    checks.push(check(
        "Support for Multiple Profiles",
        switched,
        "second profile created, selected and switched back",
    ));

    // Send/Receive Messages.
    let op = s.cluster.with_app(observer, |app, ctx| {
        app.send_message("member1", "hei", "kahville?", ctx)
    });
    s.cluster.run_for(Duration::from_secs(10));
    let sent = matches!(
        s.cluster.app(observer).outcome(op).map(|o| &o.result),
        Some(OpResult::MessageResult { written: true })
    );
    let received = s
        .cluster
        .app(peer1)
        .store()
        .active_account()
        .is_some_and(|a| a.mailbox.inbox().iter().any(|m| m.subject == "hei"));
    checks.push(check(
        "Send/Receive Messages",
        sent && received,
        "message written into member1's inbox",
    ));

    // View all Registered Services (via the daemon's neighbor cache).
    let services_seen = s
        .cluster
        .daemon(observer)
        .neighbors()
        .iter()
        .filter(|e| {
            e.services
                .as_ref()
                .is_some_and(|(_, svcs)| svcs.iter().any(|x| x.name() == "PeerHoodCommunity"))
        })
        .count();
    checks.push(check(
        "View all Registered Services",
        services_seen == 2,
        format!("PeerHoodCommunity service visible on {services_seen} neighbors"),
    ));

    // Dynamic Groups.
    let groups = s.cluster.app(observer).groups();
    checks.push(check(
        "Dynamic Discovery with Common Interest",
        groups
            .iter()
            .any(|g| g.key == "football" && g.members.len() == 3),
        format!("{} groups discovered automatically", groups.len()),
    ));
    checks.push(check(
        "View All Groups",
        !s.cluster.app(observer).groups().is_empty(),
        "group listing available",
    ));
    checks.push(check(
        "View Members of Group",
        s.cluster
            .app(observer)
            .groups()
            .first()
            .is_some_and(|g| g.members.contains(&"member1".to_owned())),
        "member roster readable per group",
    ));
    let joined_left = s.cluster.with_app(observer, |app, _| {
        app.leave_group("football") && app.my_groups().is_empty() && app.join_group("football")
    });
    checks.push(check(
        "Join/Leave Manually",
        joined_left,
        "left and re-joined the football group by hand",
    ));

    // Trusted Friends: Add/View/Remove Trusted.
    let trust_cycle = s.cluster.with_app(observer, |app, _| {
        app.add_trusted("member1").expect("logged in");
        let added = app
            .store()
            .active_account()
            .is_some_and(|a| a.trusted.contains("member1"));
        app.remove_trusted("member1").expect("logged in");
        let removed = app
            .store()
            .active_account()
            .is_some_and(|a| !a.trusted.contains("member1"));
        added && removed
    });
    checks.push(check(
        "Add/View/Remove Trusted",
        trust_cycle,
        "trusted list mutated and read back",
    ));

    // File Sharing (trusted-only, Figure 16 flow + transfer).
    s.cluster.with_app(peer1, |app, _| {
        app.add_trusted("user1").expect("logged in");
        app.store_mut()
            .require_active()
            .expect("logged in")
            .shared
            .share("thesis.pdf", "document", vec![9; 1024]);
    });
    let op = s
        .cluster
        .with_app(observer, |app, ctx| app.view_shared_content("member1", ctx));
    s.cluster.run_for(Duration::from_secs(10));
    let listed = matches!(
        s.cluster.app(observer).outcome(op).map(|o| &o.result),
        Some(OpResult::SharedContent(SharedOutcome::Listing(items))) if items.len() == 1
    );
    let op = s.cluster.with_app(observer, |app, ctx| {
        app.fetch_content("member1", "thesis.pdf", ctx)
    });
    s.cluster.run_for(Duration::from_secs(10));
    let fetched = matches!(
        s.cluster.app(observer).outcome(op).map(|o| &o.result),
        Some(OpResult::Content(Some((_, data)))) if data.len() == 1024
    );
    checks.push(check(
        "File Sharing",
        listed && fetched,
        "trusted listing and 1 kB transfer completed",
    ));

    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table3_row_passes() {
        for c in table3(2008) {
            assert!(c.passed, "{}: {}", c.name, c.note);
        }
    }

    #[test]
    fn every_table6_row_passes() {
        let checks = table6();
        assert_eq!(checks.len(), 11, "all opcodes covered");
        for c in &checks {
            assert!(c.passed, "{}: {}", c.name, c.note);
        }
    }

    #[test]
    fn every_table7_row_passes() {
        for c in table7(2008) {
            assert!(c.passed, "{}: {}", c.name, c.note);
        }
    }

    #[test]
    fn render_marks_failures() {
        let out = render_checks("t", &[check("row", false, "went wrong")]);
        assert!(out.contains("NO"));
        assert!(out.contains("went wrong"));
    }
}
