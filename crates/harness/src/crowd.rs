//! The crowd scenario — the scale pass beyond the ComLab room.
//!
//! The thesis evaluated PeerHood with a handful of devices in one room
//! (see [`crate::scenario::lab`]); the concept chapter motivates much
//! larger settings — a campus, a bus terminal — where hundreds of
//! pedestrians carry personal trusted devices. This module builds that
//! setting: `N` nodes performing a random-waypoint walk over a campus
//! whose area grows with `N` (constant crowd density), each carrying
//! Bluetooth (a fraction also WLAN) and a few interests drawn zipf-ishly
//! from a shared pool, so popular topics ("football") recur while the
//! tail stays fragmented.
//!
//! [`run`] executes one such crowd on the deterministic simulator and
//! reports wall-clock cost, simulation event throughput, trace memory
//! under the bounded ring, and the groups the crowd would form — the
//! numbers `repro crowd --json` and the `scale` bench emit. It also
//! times the spatial-index neighbor queries against the naive all-pairs
//! path (and cross-checks they agree), which is the evidence for the
//! near-linear scaling claim.

use std::time::{Duration, Instant};

use codec::json::Json;
use community::discovery::Discovery;
use community::semantics::MatchPolicy;
use community::Interest;
use netsim::geometry::{Point2, Rect};
use netsim::mobility::RandomWaypoint;
use netsim::world::NodeBuilder;
use netsim::{FaultPlan, RadioEnv, SimRng, SimTime, Technology, Trace, TraceStats};
use peerhood::gossip::GossipConfig;
use peerhood::sim::{Cluster, EpochTiming};
use peerhood::{AppCtx, AppEvent, Application, RecoveryPolicy};

pub use crate::scenario::fault_profile;

/// Pedestrian speed range (m/s) for the campus walk.
const SPEED_MPS: (f64, f64) = (0.5, 2.0);
/// Pause range at each waypoint.
const PAUSE: (Duration, Duration) = (Duration::ZERO, Duration::from_secs(20));
/// Largest crowd [`CrowdConfig::validate`] accepts. Leaves headroom over
/// the 1M-node acceptance run while still catching unit-typo inputs
/// (`--nodes 100000000`) before they allocate.
pub const MAX_NODES: usize = 2_000_000;
/// Above this size [`run`] skips the naive all-pairs cross-check even if
/// requested: O(N²) distance scans at crowd scale would dwarf the run
/// being measured.
pub const NAIVE_COMPARE_MAX: usize = 2_000;

/// A pathological [`CrowdConfig`] rejected by [`CrowdConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum CrowdError {
    /// `nodes == 0` — an empty crowd measures nothing.
    NoNodes,
    /// `nodes` exceeds [`MAX_NODES`].
    TooManyNodes {
        /// Requested crowd size.
        nodes: usize,
        /// The accepted maximum ([`MAX_NODES`]).
        max: usize,
    },
    /// `area_per_node_m2` is zero, negative, or not finite — a zero-area
    /// world puts the whole crowd in one point and infinite density.
    BadArea {
        /// The rejected density value.
        area_per_node_m2: f64,
    },
    /// `region_edge_m` is negative or not finite.
    BadRegionEdge {
        /// The rejected edge value.
        region_edge_m: f64,
    },
    /// `region_edge_m` exceeds the campus side: a region larger than the
    /// world is a sharding no-op and almost always a unit mistake.
    RegionLargerThanWorld {
        /// The rejected edge value.
        region_edge_m: f64,
        /// The campus side implied by `nodes` and `area_per_node_m2`.
        world_side_m: f64,
    },
    /// `interests_per_node` exceeds `interest_pool` — distinct picks are
    /// impossible and assignment would loop forever.
    InterestsExceedPool {
        /// Requested interests per node.
        interests_per_node: usize,
        /// Size of the shared pool.
        interest_pool: usize,
    },
}

impl std::fmt::Display for CrowdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrowdError::NoNodes => write!(f, "crowd needs at least one node"),
            CrowdError::TooManyNodes { nodes, max } => {
                write!(
                    f,
                    "crowd of {nodes} nodes exceeds the supported maximum {max}"
                )
            }
            CrowdError::BadArea { area_per_node_m2 } => write!(
                f,
                "area per node must be finite and positive, got {area_per_node_m2}"
            ),
            CrowdError::BadRegionEdge { region_edge_m } => write!(
                f,
                "region edge must be finite and positive, got {region_edge_m}"
            ),
            CrowdError::RegionLargerThanWorld {
                region_edge_m,
                world_side_m,
            } => write!(
                f,
                "region edge {region_edge_m} m exceeds the {world_side_m:.0} m campus side"
            ),
            CrowdError::InterestsExceedPool {
                interests_per_node,
                interest_pool,
            } => write!(
                f,
                "cannot draw {interests_per_node} distinct interests from a pool of {interest_pool}"
            ),
        }
    }
}

impl std::error::Error for CrowdError {}

/// Configuration for one crowd run.
#[derive(Clone, Debug)]
pub struct CrowdConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Number of devices in the crowd.
    pub nodes: usize,
    /// Virtual duration of the run.
    pub horizon: Duration,
    /// Campus area per node, m² (constant density as the crowd grows).
    pub area_per_node_m2: f64,
    /// Size of the shared interest pool.
    pub interest_pool: usize,
    /// Interests per node, drawn zipf-ishly from the pool.
    pub interests_per_node: usize,
    /// Trace ring capacity (events retained; older ones are evicted but
    /// still counted by [`TraceStats`]).
    pub trace_capacity: usize,
    /// Every `wlan_every`-th node also carries WLAN (0 disables WLAN).
    pub wlan_every: usize,
    /// Whether to also time the naive all-pairs neighbor queries (and
    /// cross-check the grid against them).
    pub compare_naive: bool,
    /// Worker count for the parallel epoch engine: `1` = serial, `0` =
    /// auto (one worker per hardware thread). Any value produces a
    /// bit-identical trace digest; see [`Cluster::set_threads`].
    pub threads: usize,
    /// Number of region event lanes (`0` = engine default). A pure
    /// sharding knob — any value produces a bit-identical trace digest;
    /// see [`Cluster::set_region_lanes`].
    pub region_lanes: usize,
    /// Spatial region edge in metres (`0.0` = engine default, 80 m).
    /// Another pure sharding knob: neighbor answers are exact for any
    /// edge, so digests never depend on it.
    pub region_edge_m: f64,
    /// Fault plan injected into the radio environment (see
    /// [`fault_profile`] for the named presets). An inert plan draws no
    /// randomness and reproduces the fault-free digest bit-for-bit. A
    /// non-inert plan also switches the workload: the per-sighting SDP
    /// round is kept on (so frame loss has traffic to act on) and every
    /// daemon runs with the default [`RecoveryPolicy`].
    pub faults: FaultPlan,
    /// When set, every daemon is configured with the epidemic gossip
    /// layer (see [`GossipConfig`]). The watch-only [`CrowdApp`] ignores
    /// the daemon's `GossipEnabled` announcement — the knob exists so
    /// crowd-scale configs share the same vocabulary as
    /// [`crate::scenario::LabConfig`] and
    /// [`crate::bubbles::BubblesConfig`], whose apps do speak gossip.
    pub gossip: Option<GossipConfig>,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            seed: 2008,
            nodes: 300,
            horizon: Duration::from_secs(60),
            area_per_node_m2: 200.0,
            interest_pool: 40,
            interests_per_node: 3,
            trace_capacity: 16_384,
            wlan_every: 8,
            compare_naive: true,
            threads: 1,
            region_lanes: 0,
            region_edge_m: 0.0,
            faults: FaultPlan::none(),
            gossip: None,
        }
    }
}

impl CrowdConfig {
    /// The campus side length (metres) this config implies: area grows
    /// with the crowd at constant density, floored at 60 m.
    pub fn world_side_m(&self) -> f64 {
        (self.nodes as f64 * self.area_per_node_m2).sqrt().max(60.0)
    }

    /// Rejects pathological inputs with a typed [`CrowdError`] instead of
    /// debug asserts or pathological behavior deep in the run: empty or
    /// oversized crowds, zero-area worlds, regions larger than the world,
    /// impossible interest draws.
    pub fn validate(&self) -> Result<(), CrowdError> {
        if self.nodes == 0 {
            return Err(CrowdError::NoNodes);
        }
        if self.nodes > MAX_NODES {
            return Err(CrowdError::TooManyNodes {
                nodes: self.nodes,
                max: MAX_NODES,
            });
        }
        if !self.area_per_node_m2.is_finite() || self.area_per_node_m2 <= 0.0 {
            return Err(CrowdError::BadArea {
                area_per_node_m2: self.area_per_node_m2,
            });
        }
        if self.region_edge_m != 0.0 {
            if !self.region_edge_m.is_finite() || self.region_edge_m < 0.0 {
                return Err(CrowdError::BadRegionEdge {
                    region_edge_m: self.region_edge_m,
                });
            }
            let side = self.world_side_m();
            if self.region_edge_m > side {
                return Err(CrowdError::RegionLargerThanWorld {
                    region_edge_m: self.region_edge_m,
                    world_side_m: side,
                });
            }
        }
        if self.interests_per_node > self.interest_pool {
            return Err(CrowdError::InterestsExceedPool {
                interests_per_node: self.interests_per_node,
                interest_pool: self.interest_pool,
            });
        }
        Ok(())
    }
}

/// The per-node application of the crowd: it only watches the
/// neighborhood (no connections, no SNS protocol), tracing appearances
/// and disappearances through the bounded interned trace — the cheapest
/// realistic workload for the discovery plane at scale.
#[derive(Default)]
pub struct CrowdApp {
    /// `DeviceAppeared` events seen.
    pub appeared: u64,
    /// `DeviceDisappeared` events seen.
    pub disappeared: u64,
}

impl Application for CrowdApp {
    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
        match event {
            AppEvent::DeviceAppeared(info) => {
                self.appeared += 1;
                ctx.trace(&info.name, "SEEN");
            }
            AppEvent::DeviceDisappeared(info) => {
                self.disappeared += 1;
                ctx.trace(&info.name, "LOST");
            }
            _ => {}
        }
    }
}

/// Result of one crowd run.
#[derive(Clone, Debug)]
pub struct CrowdReport {
    /// Number of devices.
    pub nodes: usize,
    /// Seed the run used.
    pub seed: u64,
    /// Epoch-engine worker count the run used (1 = serial, 0 = auto).
    pub threads: usize,
    /// Region event lanes the run used (actual, after defaulting).
    pub region_lanes: usize,
    /// Region edge in metres the run used (actual, after defaulting).
    pub region_edge_m: f64,
    /// Human-readable fault plan (`"no faults"` when inert).
    pub faults: String,
    /// Virtual duration, seconds.
    pub virtual_secs: f64,
    /// Wall-clock cost of the simulation, milliseconds.
    pub wall_ms: f64,
    /// Simulation events processed (discovery + frames + traced events).
    pub events: u64,
    /// `events` per wall-clock second.
    pub events_per_sec: f64,
    /// Trace events retained in the ring at the end.
    pub trace_retained: usize,
    /// Trace memory footprint (ring + string pool), bytes.
    pub trace_mem_bytes: usize,
    /// Daemon/trace counters.
    pub stats: TraceStats,
    /// Order-sensitive digest of the retained trace + counters.
    pub digest: u64,
    /// `DeviceAppeared` deliveries summed over apps.
    pub appeared: u64,
    /// `DeviceDisappeared` deliveries summed over apps.
    pub disappeared: u64,
    /// Groups each member would form with its final neighborhood, summed
    /// over members (Figure 6 run against every node's neighbor table).
    pub groups_observed: usize,
    /// Distinct group keys across the whole crowd.
    pub distinct_groups: usize,
    /// Nodes that end the run in at least one group.
    pub grouped_nodes: usize,
    /// Mean µs per `neighbors_any` query through the spatial grid.
    pub grid_query_us: f64,
    /// Mean µs per `neighbors_any` query through the naive all-pairs
    /// path; `None` when the comparison was skipped (past
    /// [`NAIVE_COMPARE_MAX`] or `compare_naive: false`), so a skipped
    /// measurement is never mistaken for an infinite speedup.
    pub naive_query_us: Option<f64>,
    /// Per-phase engine timing (drain / gather / execute / commit) and
    /// batch routing counters.
    pub timing: EpochTiming,
    /// Process peak RSS (`VmHWM`) after the run, bytes; `None` where
    /// `/proc/self/status` is unavailable.
    pub peak_rss_bytes: Option<u64>,
}

/// The process's high-water resident set (`VmHWM` from
/// `/proc/self/status`), in bytes. `None` off Linux or in sandboxes that
/// hide procfs. Note this is a process-lifetime high-water mark: in a
/// sweep it reflects the largest run so far, not the current one.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

impl CrowdReport {
    /// The report as a JSON object.
    pub fn to_json(&self) -> Json {
        let stats = Json::obj()
            .field("events_recorded", self.stats.events_recorded)
            .field("events_dropped", self.stats.events_dropped)
            .field("inquiries", self.stats.inquiries)
            .field("inquiry_responses", self.stats.inquiry_responses)
            .field("frames_sent", self.stats.frames_sent)
            .field("frames_delivered", self.stats.frames_delivered)
            .field("frames_dropped", self.stats.frames_dropped)
            .field("retries", self.stats.retries)
            .field("timeouts", self.stats.timeouts)
            .field("gave_up", self.stats.gave_up);
        // A skipped naive pass reports null, not 0 (and no speedup): a
        // bogus `speedup: 0` used to read as "the grid is slower".
        let (naive_us, speedup) = match self.naive_query_us {
            Some(us) if self.grid_query_us > 0.0 => {
                (Json::Num(us), Json::Num(us / self.grid_query_us))
            }
            Some(us) => (Json::Num(us), Json::Null),
            None => (Json::Null, Json::Null),
        };
        let timing = Json::obj()
            .field("drain_ms", self.timing.drain.as_secs_f64() * 1e3)
            .field("gather_ms", self.timing.gather.as_secs_f64() * 1e3)
            .field("execute_ms", self.timing.execute.as_secs_f64() * 1e3)
            .field("commit_ms", self.timing.commit.as_secs_f64() * 1e3)
            .field("par_batches", self.timing.par_batches)
            .field("par_events", self.timing.par_events)
            .field("serial_batches", self.timing.serial_batches)
            .field("serial_events", self.timing.serial_events);
        Json::obj()
            .field("nodes", self.nodes)
            .field("seed", self.seed)
            .field("threads", self.threads)
            .field("region_lanes", self.region_lanes)
            .field("region_edge_m", self.region_edge_m)
            .field("faults", self.faults.as_str())
            .field("virtual_secs", self.virtual_secs)
            .field("wall_ms", self.wall_ms)
            .field("events", self.events)
            .field("events_per_sec", self.events_per_sec)
            .field("trace_retained", self.trace_retained)
            .field("trace_mem_bytes", self.trace_mem_bytes)
            .field("stats", stats)
            .field("digest", format!("{:016x}", self.digest))
            .field("appeared", self.appeared)
            .field("disappeared", self.disappeared)
            .field("groups_observed", self.groups_observed)
            .field("distinct_groups", self.distinct_groups)
            .field("grouped_nodes", self.grouped_nodes)
            .field(
                "neighbor_query",
                Json::obj()
                    .field("grid_us", self.grid_query_us)
                    .field("naive_us", naive_us)
                    .field("speedup", speedup),
            )
            .field("timing", timing)
            .field(
                "peak_rss_bytes",
                self.peak_rss_bytes
                    .map_or(Json::Null, |b| Json::Num(b as f64)),
            )
    }
}

/// A built (started) crowd, before/after running.
pub struct CrowdScenario {
    /// The running cluster.
    pub cluster: Cluster<CrowdApp>,
    /// Interests per node, in node order (`p0`, `p1`, …).
    pub interests: Vec<Vec<Interest>>,
}

/// Draws `count` distinct pool indices, zipf-ishly (weight of topic `k`
/// ∝ 1/(k+1), so low indices are popular).
fn zipfish_picks(rng: &mut SimRng, pool: usize, count: usize) -> Vec<usize> {
    let total: f64 = (0..pool).map(|k| 1.0 / (k + 1) as f64).sum();
    let mut picks: Vec<usize> = Vec::with_capacity(count);
    while picks.len() < count.min(pool) {
        let mut x = rng.unit_f64() * total;
        let mut choice = pool - 1;
        for k in 0..pool {
            x -= 1.0 / (k + 1) as f64;
            if x <= 0.0 {
                choice = k;
                break;
            }
        }
        if !picks.contains(&choice) {
            picks.push(choice);
        }
    }
    picks
}

/// Builds and starts a crowd per `config` (without advancing time).
/// Rejects pathological configs with a typed [`CrowdError`].
pub fn build(config: &CrowdConfig) -> Result<CrowdScenario, CrowdError> {
    config.validate()?;
    let side = config.world_side_m();
    let campus = Rect::sized(side, side);
    let mut rng = SimRng::from_seed(config.seed);
    let mut placement = rng.fork(1);
    let mut topics = rng.fork(2);

    let faulted = !config.faults.is_inert();
    let mut cluster = Cluster::with_env(
        config.seed,
        RadioEnv::default().with_faults(config.faults.clone()),
    );
    if config.region_lanes > 0 {
        cluster.set_region_lanes(config.region_lanes);
    }
    if config.region_edge_m > 0.0 {
        cluster.set_region_edge(config.region_edge_m);
    }
    cluster.reserve_nodes(config.nodes);
    let mut interests = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let start = Point2::new(
            placement.range_f64(campus.min.x..campus.max.x),
            placement.range_f64(campus.min.y..campus.max.y),
        );
        let walk = RandomWaypoint::new(campus, start, SPEED_MPS, PAUSE, placement.fork(i as u64));
        let mut techs = vec![Technology::Bluetooth];
        if config.wlan_every > 0 && i % config.wlan_every == 0 {
            techs.push(Technology::Wlan);
        }
        let builder = NodeBuilder::new(format!("p{i}"))
            .with_technologies(techs)
            .moving(walk);
        // No SDP round per sighting: the crowd app only watches the
        // neighborhood, so automatic service discovery would just add
        // O(N · sightings) query traffic. Under a live fault plan the
        // round stays on — frame loss needs frames — and every daemon
        // runs with recovery enabled.
        cluster.add_node_with(
            builder,
            |c| {
                let c = c.with_auto_service_discovery(faulted);
                let c = if faulted {
                    c.with_recovery(RecoveryPolicy::default())
                } else {
                    c
                };
                match &config.gossip {
                    Some(g) => c.with_gossip(g.clone()),
                    None => c,
                }
            },
            CrowdApp::default(),
        );
        interests.push(
            zipfish_picks(&mut topics, config.interest_pool, config.interests_per_node)
                .into_iter()
                .map(|k| Interest::new(format!("topic-{k:02}")))
                .collect(),
        );
    }
    cluster.set_trace_capacity(config.trace_capacity);
    cluster.set_threads(config.threads);
    cluster.start();
    Ok(CrowdScenario { cluster, interests })
}

/// Runs one crowd to its horizon and measures it. Rejects pathological
/// configs with a typed [`CrowdError`].
pub fn run(config: &CrowdConfig) -> Result<CrowdReport, CrowdError> {
    let mut s = build(config)?;
    let deadline = SimTime::ZERO.saturating_add(config.horizon);

    s.cluster.set_collect_timing(true);
    let wall = Instant::now();
    s.cluster.run_until(deadline);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let timing = *s.cluster.timing();

    let stats = *s.cluster.stats();
    let events = stats.events_recorded
        + stats.inquiries
        + stats.inquiry_responses
        + stats.frames_sent
        + stats.frames_delivered;
    let events_per_sec = if wall_ms > 0.0 {
        events as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };

    let (mut appeared, mut disappeared) = (0u64, 0u64);
    let mut groups_observed = 0usize;
    let mut grouped_nodes = 0usize;
    let mut distinct = std::collections::BTreeSet::new();
    let node_ids: Vec<_> = (0..config.nodes)
        .map(netsim::world::NodeId::from_index)
        .collect();
    for &id in &node_ids {
        let app = s.cluster.app(id);
        appeared += app.appeared;
        disappeared += app.disappeared;

        let me = s.cluster.name(id).to_owned();
        let neighbors: Vec<(String, Vec<Interest>)> = s
            .cluster
            .daemon(id)
            .neighbors()
            .iter()
            .map(|entry| {
                let idx = entry.info.id.raw() as usize;
                (entry.info.name.to_string(), s.interests[idx].clone())
            })
            .collect();
        let groups =
            Discovery::new(&me, &MatchPolicy::Exact).groups(&s.interests[id.index()], &neighbors);
        if !groups.is_empty() {
            grouped_nodes += 1;
        }
        groups_observed += groups.len();
        distinct.extend(groups.keys().cloned());
    }

    let trace = s.cluster.trace();
    let trace_retained = trace.len();
    let trace_mem_bytes = trace.approx_mem_bytes();
    let digest = trace.digest();

    let now = s.cluster.now();
    let world = s.cluster.world_mut();
    let grid_t = Instant::now();
    let mut grid_results = Vec::with_capacity(node_ids.len());
    for &id in &node_ids {
        grid_results.push(world.neighbors_any(id, now));
    }
    let grid_query_us = grid_t.elapsed().as_secs_f64() * 1e6 / node_ids.len().max(1) as f64;

    // At crowd scale the O(N²) all-pairs reference would dwarf the run
    // being measured — silently skip it past NAIVE_COMPARE_MAX.
    let naive_query_us = if config.compare_naive && config.nodes <= NAIVE_COMPARE_MAX {
        let naive_t = Instant::now();
        let mut naive_results = Vec::with_capacity(node_ids.len());
        for &id in &node_ids {
            naive_results.push(world.neighbors_any_naive(id, now));
        }
        let us = naive_t.elapsed().as_secs_f64() * 1e6 / node_ids.len().max(1) as f64;
        assert_eq!(
            grid_results, naive_results,
            "spatial grid disagrees with the naive neighbor scan"
        );
        Some(us)
    } else {
        None
    };

    Ok(CrowdReport {
        nodes: config.nodes,
        seed: config.seed,
        threads: config.threads,
        region_lanes: s.cluster.region_lanes(),
        region_edge_m: s.cluster.world_mut().region_edge(),
        faults: config.faults.to_string(),
        virtual_secs: config.horizon.as_secs_f64(),
        wall_ms,
        events,
        events_per_sec,
        trace_retained,
        trace_mem_bytes,
        stats,
        digest,
        appeared,
        disappeared,
        groups_observed,
        distinct_groups: distinct.len(),
        grouped_nodes,
        grid_query_us,
        naive_query_us,
        timing,
        peak_rss_bytes: peak_rss_bytes(),
    })
}

/// Runs the crowd at each size in `sizes` (same seed and horizon).
/// Fails fast on the first pathological size.
pub fn sweep(base: &CrowdConfig, sizes: &[usize]) -> Result<Vec<CrowdReport>, CrowdError> {
    sizes
        .iter()
        .map(|&nodes| {
            run(&CrowdConfig {
                nodes,
                ..base.clone()
            })
        })
        .collect()
}

/// Renders a sweep as an aligned text table.
pub fn render(reports: &[CrowdReport]) -> String {
    let mut out = String::from(
        "Crowd scenario — random-waypoint campus, zipf-ish interests\n\
         \n\
         nodes    wall ms      events    events/s   trace KiB   groups   grid µs   naive µs\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{:>5} {:>10.1} {:>11} {:>11.0} {:>11.1} {:>8} {:>9.1} {:>10}\n",
            r.nodes,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.trace_mem_bytes as f64 / 1024.0,
            r.groups_observed,
            r.grid_query_us,
            r.naive_query_us
                .map_or_else(|| "      —".to_owned(), |us| format!("{us:>10.1}")),
        ));
    }
    out
}

/// Records a warmed burst of fully-interned trace events through a
/// bounded ring and reports `(events, allocations)` as observed by
/// `alloc_count` — a monotone counter of heap allocations, typically
/// backed by a counting `#[global_allocator]` in the calling binary.
/// On the steady-state interned path the allocation delta must be zero.
pub fn trace_alloc_burst(alloc_count: &dyn Fn() -> u64) -> (u64, u64) {
    let mut trace = Trace::with_capacity(1024);
    let a = trace.intern_actor("crowd-a");
    let b = trace.intern_actor("crowd-b");
    let label = trace.intern_label("CROWD_EVENT");
    // Warm: fill the ring so every further record evicts (the worst case).
    for i in 0..2048u64 {
        trace.record_ids(SimTime::from_micros(i), a, b, label);
    }
    let before = alloc_count();
    const BURST: u64 = 65_536;
    for i in 0..BURST {
        trace.record_ids(SimTime::from_micros(2048 + i), a, b, label);
    }
    (BURST, alloc_count() - before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::FaultProfile;

    fn small(nodes: usize, seed: u64) -> CrowdConfig {
        CrowdConfig {
            seed,
            nodes,
            horizon: Duration::from_secs(45),
            ..CrowdConfig::default()
        }
    }

    #[test]
    fn crowd_discovers_and_groups() {
        let report = run(&small(60, 7)).expect("valid config");
        assert_eq!(report.nodes, 60);
        assert!(report.stats.inquiries > 0, "{:?}", report.stats);
        assert!(report.appeared > 0, "nobody met anybody: {report:?}");
        assert!(
            report.groups_observed > 0,
            "zipf-ish interests should form at least one group: {report:?}"
        );
        assert!(report.grouped_nodes <= report.nodes);
        assert!(report.distinct_groups <= report.groups_observed);
    }

    #[test]
    fn crowd_trace_stays_bounded() {
        let config = CrowdConfig {
            trace_capacity: 64,
            ..small(50, 11)
        };
        let report = run(&config).expect("valid config");
        assert!(report.trace_retained <= 64, "{report:?}");
        assert_eq!(
            report.stats.events_recorded,
            report.trace_retained as u64 + report.stats.events_dropped
        );
    }

    /// Satellite: determinism at scale — two same-seed runs at 300 nodes
    /// must agree byte-for-byte on the trace digest and every counter.
    #[test]
    fn same_seed_crowds_are_identical_at_scale() {
        let config = CrowdConfig {
            compare_naive: false,
            horizon: Duration::from_secs(40),
            ..small(300, 2008)
        };
        let a = run(&config).expect("valid config");
        let b = run(&config).expect("valid config");
        assert_eq!(a.digest, b.digest, "trace digests diverged");
        assert_eq!(a.stats, b.stats, "counters diverged");
        assert_eq!(a.events, b.events);
        assert_eq!(
            (a.appeared, a.disappeared, a.groups_observed),
            (b.appeared, b.disappeared, b.groups_observed)
        );
    }

    /// Tentpole acceptance: the parallel epoch engine must be a pure
    /// performance transform. For every seed and crowd size the trace
    /// digest, counters, and app-observed event totals of a `--threads 4`
    /// run are byte-identical to the serial run. Horizons shrink as `N`
    /// grows to keep the cross product affordable in debug builds.
    #[test]
    fn serial_and_parallel_digests_match() {
        for &seed in &[2008u64, 7, 42] {
            for &(nodes, secs) in &[(30usize, 60u64), (300, 15), (1000, 4)] {
                let base = CrowdConfig {
                    seed,
                    nodes,
                    horizon: Duration::from_secs(secs),
                    compare_naive: false,
                    ..CrowdConfig::default()
                };
                let serial = run(&base).expect("valid config");
                for threads in [4, 0] {
                    let par = run(&CrowdConfig {
                        threads,
                        ..base.clone()
                    })
                    .expect("valid config");
                    assert_eq!(
                        format!("{:016x}", serial.digest),
                        format!("{:016x}", par.digest),
                        "digest diverged: seed={seed} nodes={nodes} threads={threads}"
                    );
                    assert_eq!(serial.stats, par.stats, "seed={seed} nodes={nodes}");
                    assert_eq!(
                        (serial.events, serial.appeared, serial.disappeared),
                        (par.events, par.appeared, par.disappeared),
                        "seed={seed} nodes={nodes} threads={threads}"
                    );
                }
            }
        }
    }

    /// Satellite: an explicitly-built all-zero [`FaultPlan`] draws no
    /// randomness and must reproduce the fault-free crowd bit-for-bit —
    /// digest, counters and app totals.
    #[test]
    fn zero_probability_fault_plan_is_digest_identical_to_fault_free() {
        for seed in [2008u64, 13] {
            let base = CrowdConfig {
                compare_naive: false,
                horizon: Duration::from_secs(30),
                ..small(120, seed)
            };
            let plain = run(&base).expect("valid config");
            let zeroed = run(&CrowdConfig {
                faults: FaultPlan::none()
                    .with_profile(Technology::Bluetooth, FaultProfile::NONE)
                    .with_profile(Technology::Wlan, FaultProfile::NONE),
                ..base.clone()
            })
            .expect("valid config");
            assert_eq!(
                format!("{:016x}", plain.digest),
                format!("{:016x}", zeroed.digest),
                "seed {seed}: inert plan perturbed the digest"
            );
            assert_eq!(plain.stats, zeroed.stats, "seed {seed}");
            assert_eq!(
                (plain.appeared, plain.disappeared),
                (zeroed.appeared, zeroed.disappeared)
            );
            assert_eq!(zeroed.faults, "no faults");
        }
    }

    /// Tentpole acceptance: a faulted crowd is still deterministic. The
    /// fault stream is drawn in serial dispatch order from its own seeded
    /// RNG, so a repeated same-seed run and a `--threads 4` run agree
    /// with the serial digest bit-for-bit — while the faults really fire.
    #[test]
    fn faulted_crowd_digests_survive_threads_and_reruns() {
        let base = CrowdConfig {
            compare_naive: false,
            horizon: Duration::from_secs(30),
            faults: fault_profile("lossy").expect("named profile"),
            ..small(200, 2008)
        };
        let serial = run(&base).expect("valid config");
        assert!(
            serial.stats.frames_dropped > 0,
            "the lossy plan must actually lose frames: {:?}",
            serial.stats
        );
        let again = run(&base).expect("valid config");
        assert_eq!(
            format!("{:016x}", serial.digest),
            format!("{:016x}", again.digest)
        );
        assert_eq!(serial.stats, again.stats);
        let par = run(&CrowdConfig {
            threads: 4,
            ..base.clone()
        })
        .expect("valid config");
        assert_eq!(
            format!("{:016x}", serial.digest),
            format!("{:016x}", par.digest),
            "faulted digest diverged under the epoch engine"
        );
        assert_eq!(serial.stats, par.stats);
        assert_eq!(
            (serial.appeared, serial.disappeared),
            (par.appeared, par.disappeared)
        );
    }

    #[test]
    fn interest_assignment_is_zipfish_and_distinct() {
        let mut rng = SimRng::from_seed(5);
        let mut counts = vec![0usize; 20];
        for _ in 0..400 {
            let picks = zipfish_picks(&mut rng, 20, 3);
            assert_eq!(picks.len(), 3);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "picks must be distinct");
            for p in picks {
                counts[p] += 1;
            }
        }
        assert!(
            counts[0] > counts[19] * 3,
            "topic 0 should dominate the tail: {counts:?}"
        );
    }

    /// Satellite: pathological configs come back as typed errors, not
    /// debug asserts or hangs deep inside the run.
    #[test]
    fn pathological_configs_are_rejected() {
        let base = CrowdConfig::default();
        assert_eq!(
            run(&CrowdConfig {
                nodes: 0,
                ..base.clone()
            })
            .err(),
            Some(CrowdError::NoNodes)
        );
        assert_eq!(
            run(&CrowdConfig {
                nodes: MAX_NODES + 1,
                ..base.clone()
            })
            .err(),
            Some(CrowdError::TooManyNodes {
                nodes: MAX_NODES + 1,
                max: MAX_NODES
            })
        );
        for area in [0.0, -4.0, f64::NAN, f64::INFINITY] {
            let err = run(&CrowdConfig {
                area_per_node_m2: area,
                ..base.clone()
            })
            .expect_err("zero/negative/non-finite area must be rejected");
            assert!(matches!(err, CrowdError::BadArea { .. }), "{area}: {err}");
        }
        let err = run(&CrowdConfig {
            region_edge_m: f64::NAN,
            ..base.clone()
        })
        .expect_err("non-finite region edge must be rejected");
        assert!(matches!(err, CrowdError::BadRegionEdge { .. }), "{err}");
        let err = run(&CrowdConfig {
            nodes: 100,
            region_edge_m: 1.0e6,
            ..base.clone()
        })
        .expect_err("a region larger than the world must be rejected");
        assert!(
            matches!(err, CrowdError::RegionLargerThanWorld { .. }),
            "{err}"
        );
        assert_eq!(
            run(&CrowdConfig {
                interest_pool: 2,
                interests_per_node: 3,
                ..base.clone()
            })
            .err(),
            Some(CrowdError::InterestsExceedPool {
                interests_per_node: 3,
                interest_pool: 2
            })
        );
        // The max-size config itself is accepted (validation only).
        assert!(CrowdConfig {
            nodes: MAX_NODES,
            ..base.clone()
        }
        .validate()
        .is_ok());
    }

    /// Tentpole acceptance (differential): the region-sharded engine must
    /// match the serial-merge baseline — one lane, one thread, default
    /// grid — bit-for-bit at 1k and 10k nodes for every combination of
    /// worker count, lane count, and region edge, including under a live
    /// lossy fault plan.
    #[test]
    fn region_sharding_matches_serial_merge_baseline() {
        let cases: &[(usize, u64, &str)] =
            &[(1000, 4, "none"), (10_000, 2, "none"), (1000, 3, "lossy")];
        for &(nodes, secs, faults) in cases {
            let base = CrowdConfig {
                nodes,
                horizon: Duration::from_secs(secs),
                compare_naive: false,
                faults: fault_profile(faults).expect("named profile"),
                ..CrowdConfig::default()
            };
            let baseline = run(&CrowdConfig {
                threads: 1,
                region_lanes: 1,
                ..base.clone()
            })
            .expect("valid config");
            if faults == "lossy" {
                assert!(
                    baseline.stats.frames_dropped > 0,
                    "the lossy plan must actually lose frames: {:?}",
                    baseline.stats
                );
            }
            for &(threads, lanes, edge) in &[
                (2usize, 3usize, 40.0f64),
                (4, 32, 250.0),
                (4, 7, 0.0),
                (1, 16, 120.0),
            ] {
                let sharded = run(&CrowdConfig {
                    threads,
                    region_lanes: lanes,
                    region_edge_m: edge,
                    ..base.clone()
                })
                .expect("valid config");
                assert_eq!(
                    format!("{:016x}", baseline.digest),
                    format!("{:016x}", sharded.digest),
                    "digest diverged: nodes={nodes} faults={faults} \
                     threads={threads} lanes={lanes} edge={edge}"
                );
                assert_eq!(
                    baseline.stats, sharded.stats,
                    "nodes={nodes} faults={faults} threads={threads} lanes={lanes} edge={edge}"
                );
                assert_eq!(
                    (baseline.events, baseline.appeared, baseline.disappeared),
                    (sharded.events, sharded.appeared, sharded.disappeared),
                );
            }
        }
    }

    /// Tentpole acceptance (differential): the lane-epoch engine — batch
    /// drain, concurrent node-local execution, canonical outbox commit —
    /// must match the *pure single-event dispatch loop*
    /// ([`Cluster::run_until_condition`]) bit-for-bit. This pins both
    /// engine paths (parallel epochs *and* the serial fallback routing)
    /// to the dispatch semantics for every worker count and lane count,
    /// including under a live lossy fault plan.
    /// One differential case: node count, horizon seconds, fault profile
    /// name, thread counts to sweep, lane counts to sweep.
    type EpochCase = (usize, u64, &'static str, &'static [usize], &'static [usize]);

    #[test]
    fn epoch_engine_matches_pure_dispatch_reference() {
        let cases: &[EpochCase] = &[
            (1000, 3, "none", &[1, 2, 4, 8], &[1, 7, 32]),
            (1000, 3, "lossy", &[1, 2, 4, 8], &[1, 7, 32]),
            (10_000, 2, "none", &[4], &[1, 32]),
            // Regression: lossy retries at this scale schedule inquiries
            // out of node order, which exposed a commit merge that
            // assumed node-grouped worker spans were batch-ordered.
            (3000, 6, "lossy", &[4], &[8]),
        ];
        for &(nodes, secs, faults, threads_set, lanes_set) in cases {
            let base = CrowdConfig {
                nodes,
                horizon: Duration::from_secs(secs),
                compare_naive: false,
                faults: fault_profile(faults).expect("named profile"),
                ..CrowdConfig::default()
            };
            let deadline = SimTime::ZERO.saturating_add(base.horizon);
            let mut reference = build(&base).expect("valid config");
            reference.cluster.run_until_condition(deadline, |_| false);
            let ref_digest = reference.cluster.trace().digest();
            let ref_stats = *reference.cluster.stats();
            if faults == "lossy" {
                assert!(
                    ref_stats.frames_dropped > 0,
                    "the lossy plan must actually lose frames: {ref_stats:?}"
                );
            }
            for &threads in threads_set {
                for &lanes in lanes_set {
                    let par = run(&CrowdConfig {
                        threads,
                        region_lanes: lanes,
                        ..base.clone()
                    })
                    .expect("valid config");
                    assert_eq!(
                        format!("{ref_digest:016x}"),
                        format!("{:016x}", par.digest),
                        "epoch engine diverged from pure dispatch: nodes={nodes} \
                         faults={faults} threads={threads} lanes={lanes}"
                    );
                    assert_eq!(
                        ref_stats, par.stats,
                        "nodes={nodes} faults={faults} threads={threads} lanes={lanes}"
                    );
                }
            }
        }
    }

    /// 100k leg of the differential matrix — minutes in a debug build, so
    /// `#[ignore]`d; `ci.sh` gates the release-build equivalent on every
    /// run via `repro crowd`.
    #[test]
    #[ignore = "release-scale: run with --ignored (ci.sh gates the release build)"]
    fn epoch_engine_matches_pure_dispatch_at_100k() {
        let base = CrowdConfig {
            nodes: 100_000,
            horizon: Duration::from_secs(2),
            compare_naive: false,
            ..CrowdConfig::default()
        };
        let deadline = SimTime::ZERO.saturating_add(base.horizon);
        let mut reference = build(&base).expect("valid config");
        reference.cluster.run_until_condition(deadline, |_| false);
        let ref_digest = reference.cluster.trace().digest();
        let ref_stats = *reference.cluster.stats();
        for threads in [2usize, 4] {
            let par = run(&CrowdConfig {
                threads,
                ..base.clone()
            })
            .expect("valid config");
            assert_eq!(
                format!("{ref_digest:016x}"),
                format!("{:016x}", par.digest),
                "threads={threads}"
            );
            assert_eq!(ref_stats, par.stats, "threads={threads}");
        }
    }

    #[test]
    fn alloc_burst_counts_against_the_probe() {
        // With a flat probe the delta is zero by construction; the repro
        // binary and the scale bench install a real counting allocator.
        let (events, allocs) = trace_alloc_burst(&|| 0);
        assert_eq!(events, 65_536);
        assert_eq!(allocs, 0);
    }
}
