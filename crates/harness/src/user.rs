//! The scripted user driving the PeerHood Community terminal UI.
//!
//! Table 8 was measured with a stopwatch on humans. The SNS sessions
//! already model their user's typing/clicking/scanning; this virtual user
//! supplies the equivalent interaction times for the PeerHood arm's
//! terminal interface (menu selections and typed member ids on a laptop
//! keyboard — Figure 10's menu UI).

use std::time::Duration;

use netsim::SimRng;

/// Interaction-time model of the laptop-terminal user.
#[derive(Debug)]
pub struct VirtualUser {
    rng: SimRng,
    menu_select: Duration,
    per_char: Duration,
    jitter: Duration,
}

impl VirtualUser {
    /// A user at the thesis's test laptop (hardware keyboard, text menu).
    pub fn at_laptop(rng: SimRng) -> Self {
        VirtualUser {
            rng,
            menu_select: Duration::from_millis(1_500),
            per_char: Duration::from_millis(220),
            jitter: Duration::from_millis(400),
        }
    }

    /// Samples the time to pick one entry from the main menu (Figure 10).
    pub fn menu(&mut self) -> Duration {
        let d = self.menu_select;
        self.rng.jittered(d, self.jitter)
    }

    /// Samples the time to type `text` (e.g. a member id).
    pub fn type_text(&mut self, text: &str) -> Duration {
        let d = self.per_char * text.chars().count() as u32;
        self.rng.jittered(d, self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn menu_times_are_seconds_scale() {
        let mut u = VirtualUser::at_laptop(SimRng::from_seed(1));
        for _ in 0..20 {
            let d = u.menu();
            assert!(d >= Duration::from_millis(1_100) && d <= Duration::from_millis(1_900));
        }
    }

    #[test]
    fn typing_scales_with_length() {
        let mut u = VirtualUser::at_laptop(SimRng::from_seed(2));
        let short = u.type_text("ab");
        let long = u.type_text("a-much-longer-member-name");
        assert!(long > short);
    }
}
