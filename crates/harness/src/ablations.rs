//! Ablation and extension experiments (DESIGN.md A1–A5).
//!
//! These go beyond the thesis's published evaluation, in the directions its
//! own analysis and future-work sections point:
//!
//! * **A1** — discovery latency per technology (the thesis only tested
//!   Bluetooth);
//! * **A2** — dynamic-group-discovery scaling with neighborhood size, and
//!   the per-operation vs persistent connection-mode cost (the named
//!   future work: "performance testing during the dynamic group
//!   discovery");
//! * **A3** — group fragmentation with and without semantics teaching (the
//!   §5.2.6 biking/cycling problem);
//! * **A4** — seamless connectivity under mobility (connection survival
//!   with handover on/off);
//! * **A5** — group-view accuracy under churn.

use std::time::Duration;

use netsim::geometry::Point2;
use netsim::mobility::{RandomWaypoint, ScriptedPath};
use netsim::stats::Summary;
use netsim::world::NodeBuilder;
use netsim::{SimRng, SimTime, Technology};

use peerhood::api::AppEvent;
use peerhood::app::{AppCtx, Application};
use peerhood::service::ServiceInfo;
use peerhood::sim::Cluster;
use peerhood::types::{CloseReason, ConnId};

use community::discovery::Discovery;
use community::node::{CommunityApp, OpMode};
use community::profile::Profile;
use community::semantics::MatchPolicy;
use community::{Interest, OpResult};

use crate::report::TextTable;
use crate::scenario::{lab, LabConfig};

// ---------------------------------------------------------------------
// A1 — discovery latency per technology
// ---------------------------------------------------------------------

/// Measures how long after startup a peer is discovered, per technology.
pub fn discovery_by_technology(trials: usize, base_seed: u64) -> Vec<(Technology, Summary)> {
    #[derive(Default)]
    struct Waiter {
        found_at: Option<SimTime>,
    }
    impl Application for Waiter {
        fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
            if matches!(event, AppEvent::DeviceAppeared(_)) && self.found_at.is_none() {
                self.found_at = Some(ctx.now());
            }
        }
    }

    Technology::ALL
        .into_iter()
        .map(|tech| {
            let samples: Vec<Duration> = (0..trials)
                .map(|t| {
                    let mut c: Cluster<Waiter> =
                        Cluster::new(base_seed ^ (t as u64) << 8 ^ tech as u64);
                    let a = c.add_node(
                        NodeBuilder::new("a")
                            .at(Point2::ORIGIN)
                            .with_technologies([tech]),
                        Waiter::default(),
                    );
                    let _b = c.add_node(
                        NodeBuilder::new("b")
                            .at(Point2::new(2.0, 0.0))
                            .with_technologies([tech]),
                        Waiter::default(),
                    );
                    c.start();
                    c.run_until(SimTime::from_secs(120));
                    c.app(a)
                        .found_at
                        .expect("in-range peer must be discovered within 2 minutes")
                        .saturating_since(SimTime::ZERO)
                })
                .collect();
            (tech, Summary::from_durations(&samples).expect("trials > 0"))
        })
        .collect()
}

/// Renders A1.
pub fn render_discovery_by_technology(rows: &[(Technology, Summary)]) -> String {
    let mut t = TextTable::new(["Technology", "Discovery latency (mean)", "p90", "max"]);
    for (tech, s) in rows {
        t.add_row([
            tech.name().to_owned(),
            format!("{:.2} s", s.mean),
            format!("{:.2} s", s.p90),
            format!("{:.2} s", s.max),
        ]);
    }
    format!(
        "A1 — time to discover an in-range peer, per technology\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// A2 — scaling with neighborhood size + connection-mode ablation
// ---------------------------------------------------------------------

/// One A2 measurement point.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Number of peer devices.
    pub peers: usize,
    /// Connection mode measured.
    pub mode: OpMode,
    /// Group-search time (start → first group).
    pub search: Summary,
    /// Member-list operation time.
    pub member_list: Summary,
}

/// Sweeps neighborhood size for both connection modes.
///
/// # Panics
///
/// Panics if any trial fails to form groups or complete operations.
pub fn scaling(peer_counts: &[usize], trials: usize, base_seed: u64) -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for &peers in peer_counts {
        for mode in [OpMode::PerOperation, OpMode::Persistent] {
            let mut search = Vec::new();
            let mut list = Vec::new();
            for t in 0..trials {
                let seed = base_seed ^ ((peers as u64) << 32) ^ ((t as u64) << 1) ^ (mode as u64);
                let mut s = lab(&LabConfig {
                    seed,
                    peer_count: peers,
                    op_mode: mode,
                    fresh_inquiry_per_op: mode == OpMode::PerOperation,
                    ..LabConfig::default()
                });
                let observer = s.observer;
                let formed = s
                    .cluster
                    .run_until_condition(SimTime::from_secs(600), |c| {
                        c.app(observer).first_group_at().is_some()
                    })
                    .expect("group must form");
                let started = s.cluster.app(observer).started_at().expect("started");
                search.push(formed.saturating_since(started));

                // Let the neighborhood settle before the operation.
                s.cluster.run_for(Duration::from_secs(60));
                let op = s
                    .cluster
                    .with_app(observer, |app, ctx| app.get_member_list(ctx));
                let deadline = s.cluster.now() + Duration::from_secs(600);
                s.cluster
                    .run_until_condition(deadline, |c| c.app(observer).outcome(op).is_some())
                    .expect("member list must complete");
                let outcome = s.cluster.app(observer).outcome(op).expect("completed");
                assert!(
                    matches!(&outcome.result, OpResult::Members(names) if !names.is_empty()),
                    "member list empty for {peers} peers"
                );
                list.push(outcome.duration());
            }
            out.push(ScalingPoint {
                peers,
                mode,
                search: Summary::from_durations(&search).expect("trials > 0"),
                member_list: Summary::from_durations(&list).expect("trials > 0"),
            });
        }
    }
    out
}

/// Renders A2.
pub fn render_scaling(points: &[ScalingPoint]) -> String {
    let mut t = TextTable::new(["Peers", "Mode", "Group search (mean)", "Member list (mean)"]);
    for p in points {
        t.add_row([
            p.peers.to_string(),
            format!("{:?}", p.mode),
            format!("{:.1} s", p.search.mean),
            format!("{:.1} s", p.member_list.mean),
        ]);
    }
    format!(
        "A2 — dynamic group discovery and operation cost vs neighborhood size\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// A3 — semantics teaching vs group fragmentation
// ---------------------------------------------------------------------

/// Result of the semantics ablation.
#[derive(Clone, Debug, PartialEq)]
pub struct SemanticsResult {
    /// Members in the synthetic neighborhood.
    pub members: usize,
    /// Synonym families in the vocabulary.
    pub families: usize,
    /// Spellings per family.
    pub spellings: usize,
    /// Groups formed under exact matching.
    pub exact_groups: usize,
    /// Groups formed after teaching all synonyms.
    pub semantic_groups: usize,
    /// Fraction of interest-sharing members my exact-matched groups
    /// actually capture (group count is bounded by my own interests, so
    /// fragmentation shows up as members *missing* from groups).
    pub exact_coverage: f64,
    /// The same fraction once all synonyms are taught (always 1.0).
    pub semantic_coverage: f64,
}

/// Runs the biking/cycling experiment at scale: members draw one random
/// spelling from each synonym family; exact matching fragments every family
/// into up-to-`spellings` groups, taught matching folds them back.
pub fn semantics(members: usize, families: usize, spellings: usize, seed: u64) -> SemanticsResult {
    let mut rng = SimRng::from_seed(seed);
    let spelling = |f: usize, s: usize| format!("family{f}-spelling{s}");

    // The observer holds one spelling per family.
    let own: Vec<Interest> = (0..families)
        .map(|f| Interest::new(spelling(f, rng.range_usize(0..spellings))))
        .collect();
    let neighbors: Vec<(String, Vec<Interest>)> = (0..members)
        .map(|m| {
            let interests = (0..families)
                .map(|f| Interest::new(spelling(f, rng.range_usize(0..spellings))))
                .collect();
            (format!("member{m}"), interests)
        })
        .collect();

    let exact = Discovery::new("me", &MatchPolicy::Exact).groups(&own, &neighbors);

    let mut taught = MatchPolicy::Exact;
    for f in 0..families {
        for s in 1..spellings {
            taught.teach(
                &Interest::new(spelling(f, 0)),
                &Interest::new(spelling(f, s)),
            );
        }
    }
    let semantic = Discovery::new("me", &taught).groups(&own, &neighbors);

    // Every member holds one spelling of every family, so under taught
    // matching each family group captures all `members`; under exact
    // matching only the same-spelling subset makes it in.
    let coverage = |groups: &community::GroupSet| -> f64 {
        if families == 0 || members == 0 {
            return 1.0;
        }
        let captured: usize = groups.values().map(|g| g.members.len() - 1).sum();
        captured as f64 / (families * members) as f64
    };

    SemanticsResult {
        members,
        families,
        spellings,
        exact_groups: exact.len(),
        semantic_groups: semantic.len(),
        exact_coverage: coverage(&exact),
        semantic_coverage: coverage(&semantic),
    }
}

/// Renders A3 for a sweep of spelling counts.
pub fn render_semantics(rows: &[SemanticsResult]) -> String {
    let mut t = TextTable::new([
        "Members",
        "Families",
        "Spellings/family",
        "Groups (exact)",
        "Groups (taught)",
        "Member coverage (exact)",
        "Member coverage (taught)",
    ]);
    for r in rows {
        t.add_row([
            r.members.to_string(),
            r.families.to_string(),
            r.spellings.to_string(),
            r.exact_groups.to_string(),
            r.semantic_groups.to_string(),
            format!("{:.0} %", r.exact_coverage * 100.0),
            format!("{:.0} %", r.semantic_coverage * 100.0),
        ]);
    }
    format!(
        "A3 — semantics teaching removes group fragmentation (§5.2.6)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// A4 — seamless connectivity under mobility
// ---------------------------------------------------------------------

/// Result of the handover ablation.
#[derive(Clone, Debug)]
pub struct HandoverResult {
    /// Whether seamless connectivity was enabled.
    pub seamless: bool,
    /// Fraction of trials whose connection survived the walk.
    pub survival_rate: f64,
    /// Mean fraction of the 30 chunks delivered.
    pub delivery_rate: f64,
}

/// A chunked transfer while the receiver walks out of Bluetooth range
/// (WLAN still covers it), with seamless connectivity on or off.
pub fn handover(trials: usize, base_seed: u64) -> Vec<HandoverResult> {
    #[derive(Default)]
    struct Mover {
        serve: bool,
        conn: Option<ConnId>,
        delivered: usize,
        lost: bool,
    }
    impl Application for Mover {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            if self.serve {
                ctx.peerhood().register_service(ServiceInfo::new("stream"));
            }
        }
        fn on_event(&mut self, event: AppEvent, _ctx: &mut AppCtx<'_>) {
            match event {
                AppEvent::Connected { conn, .. } => self.conn = Some(conn),
                AppEvent::Data { .. } => self.delivered += 1,
                AppEvent::Closed { reason, .. } if reason != CloseReason::LocalClose => {
                    self.lost = true;
                }
                _ => {}
            }
        }
    }

    [true, false]
        .into_iter()
        .map(|seamless| {
            let mut survived = 0usize;
            let mut delivered_total = 0usize;
            const CHUNKS: usize = 30;
            for t in 0..trials {
                let mut c: Cluster<Mover> =
                    Cluster::new(base_seed ^ (t as u64) << 4 ^ seamless as u64);
                let a = c.add_node_with(
                    NodeBuilder::new("sender")
                        .at(Point2::ORIGIN)
                        .with_technologies([Technology::Bluetooth, Technology::Wlan]),
                    |cfg| cfg.with_seamless_connectivity(seamless),
                    Mover::default(),
                );
                let b = c.add_node_with(
                    NodeBuilder::new("walker")
                        .moving(ScriptedPath::new(vec![
                            (SimTime::from_secs(0), Point2::new(4.0, 0.0)),
                            (SimTime::from_secs(30), Point2::new(4.0, 0.0)),
                            (SimTime::from_secs(50), Point2::new(50.0, 0.0)),
                        ]))
                        .with_technologies([Technology::Bluetooth, Technology::Wlan]),
                    |cfg| cfg.with_seamless_connectivity(seamless),
                    Mover {
                        serve: true,
                        ..Mover::default()
                    },
                );
                c.start();
                c.run_until(SimTime::from_secs(20));
                let b_dev = c.device_id(b);
                c.with_app(a, |_, ctx| ctx.peerhood().connect(b_dev, "stream"));
                c.run_until(SimTime::from_secs(24));
                if let Some(conn) = c.app(a).conn {
                    for i in 0..CHUNKS {
                        c.run_until(SimTime::from_secs(25 + 2 * i as u64));
                        c.with_app(a, |_, ctx| {
                            ctx.peerhood()
                                .send(conn, codec::Bytes::from_static(&[0u8; 512]))
                        });
                    }
                }
                c.run_until(SimTime::from_secs(120));
                if !c.app(a).lost && !c.app(b).lost {
                    survived += 1;
                }
                delivered_total += c.app(b).delivered.min(CHUNKS);
            }
            HandoverResult {
                seamless,
                survival_rate: survived as f64 / trials as f64,
                delivery_rate: delivered_total as f64 / (trials * CHUNKS) as f64,
            }
        })
        .collect()
}

/// Renders A4.
pub fn render_handover(rows: &[HandoverResult]) -> String {
    let mut t = TextTable::new([
        "Seamless connectivity",
        "Connection survival",
        "Chunks delivered",
    ]);
    for r in rows {
        t.add_row([
            if r.seamless { "on" } else { "off" }.to_owned(),
            format!("{:.0} %", r.survival_rate * 100.0),
            format!("{:.0} %", r.delivery_rate * 100.0),
        ]);
    }
    format!(
        "A4 — a Bluetooth connection walks out of range (WLAN still covers)\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// A5 — group-view accuracy under churn
// ---------------------------------------------------------------------

/// Result of the churn experiment.
#[derive(Clone, Debug)]
pub struct ChurnResult {
    /// Number of wandering members.
    pub members: usize,
    /// Mean Jaccard similarity between the observer's group view and the
    /// ground-truth in-range membership, sampled every 10 s.
    pub accuracy: f64,
    /// Group membership change events observed.
    pub events: usize,
}

/// Wandering members drift in and out of the observer's Bluetooth range;
/// the observer's football-group view is compared against ground truth.
pub fn churn(members: usize, minutes: u64, seed: u64) -> ChurnResult {
    let area = 60.0;
    // Fast-tracking configuration: a mobile neighborhood needs quicker
    // inquiries and a shorter TTL than the lab defaults, or the view lags
    // departures by more than a minute.
    let tune = |cfg: peerhood::DaemonConfig| {
        cfg.with_inquiry_interval(Technology::Bluetooth, Duration::from_secs(11))
            .with_neighbor_ttl(Duration::from_secs(25))
    };
    let mut c: Cluster<CommunityApp> = Cluster::new(seed);
    let observer = c.add_node_with(
        NodeBuilder::new("observer")
            .at(Point2::new(area / 2.0, area / 2.0))
            .with_technologies([Technology::Bluetooth]),
        tune,
        CommunityApp::with_member(
            "observer",
            "pw",
            Profile::new("Observer").with_interests(["football"]),
        )
        .with_refresh_interval(Duration::from_secs(10)),
    );
    let mut wanderers = Vec::new();
    let mut rng = SimRng::from_seed(seed ^ 0xD1CE);
    for i in 0..members {
        let start = Point2::new(
            rng.range_f64(5.0..area - 5.0),
            rng.range_f64(5.0..area - 5.0),
        );
        let mobility = RandomWaypoint::new(
            netsim::geometry::Rect::sized(area, area),
            start,
            (0.5, 1.2),
            (Duration::from_secs(15), Duration::from_secs(60)),
            rng.fork(i as u64),
        );
        wanderers.push(
            c.add_node_with(
                NodeBuilder::new(format!("wanderer{i}"))
                    .moving(mobility)
                    .with_technologies([Technology::Bluetooth]),
                tune,
                CommunityApp::with_member(
                    &format!("wanderer{i}"),
                    "pw",
                    Profile::new(format!("W{i}")).with_interests(["football"]),
                )
                .with_refresh_interval(Duration::from_secs(10)),
            ),
        );
    }
    c.start();

    let mut similarity = Vec::new();
    let end = SimTime::from_secs(minutes * 60);
    let mut t = SimTime::from_secs(60); // warm-up before sampling
    while t <= end {
        c.run_until(t);
        let now = c.now();
        // Ground truth: wanderers currently within Bluetooth range.
        let truth: std::collections::BTreeSet<String> = wanderers
            .iter()
            .enumerate()
            .filter(|(_, &w)| {
                c.world_mut()
                    .reachable(observer_node(observer), w, Technology::Bluetooth, now)
            })
            .map(|(i, _)| format!("wanderer{i}"))
            .collect();
        let view: std::collections::BTreeSet<String> = c
            .app(observer)
            .groups()
            .iter()
            .find(|g| g.key == "football")
            .map(|g| {
                g.members
                    .iter()
                    .filter(|m| *m != "observer")
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        let union = truth.union(&view).count();
        let inter = truth.intersection(&view).count();
        similarity.push(if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        });
        t += Duration::from_secs(10);
    }

    ChurnResult {
        members,
        accuracy: similarity.iter().sum::<f64>() / similarity.len() as f64,
        events: c.app(observer).group_events().len(),
    }
}

fn observer_node(n: netsim::world::NodeId) -> netsim::world::NodeId {
    n
}

/// Renders A5.
pub fn render_churn(rows: &[ChurnResult]) -> String {
    let mut t = TextTable::new(["Wanderers", "Mean view accuracy (Jaccard)", "Group events"]);
    for r in rows {
        t.add_row([
            r.members.to_string(),
            format!("{:.2}", r.accuracy),
            r.events.to_string(),
        ]);
    }
    format!(
        "A5 — group-view accuracy while members wander in and out of range\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_orders_technologies_by_discovery_speed() {
        let rows = discovery_by_technology(5, 11);
        let get = |tech: Technology| {
            rows.iter()
                .find(|(t, _)| *t == tech)
                .map(|(_, s)| s.mean)
                .expect("present")
        };
        // WLAN scans beat Bluetooth inquiries.
        assert!(get(Technology::Wlan) < get(Technology::Bluetooth));
        let text = render_discovery_by_technology(&rows);
        assert!(text.contains("Bluetooth"));
    }

    #[test]
    fn a2_member_list_grows_with_peers_in_per_operation_mode() {
        let points = scaling(&[1, 4], 2, 13);
        let get = |peers, mode| {
            points
                .iter()
                .find(|p| p.peers == peers && p.mode == mode)
                .expect("present")
        };
        let small = get(1, OpMode::PerOperation).member_list.mean;
        let big = get(4, OpMode::PerOperation).member_list.mean;
        assert!(
            big > small + 1.0,
            "sequential connects must add up: {small} -> {big}"
        );
        // Persistent mode barely grows.
        let p_small = get(1, OpMode::Persistent).member_list.mean;
        let p_big = get(4, OpMode::Persistent).member_list.mean;
        assert!(p_big - p_small < (big - small) / 2.0);
        assert!(!render_scaling(&points).is_empty());
    }

    #[test]
    fn a3_teaching_removes_fragmentation() {
        let r = semantics(40, 5, 4, 17);
        assert_eq!(r.semantic_groups, 5, "one group per family once taught");
        assert!(
            (r.semantic_coverage - 1.0).abs() < 1e-9,
            "taught matching captures everyone"
        );
        assert!(
            r.exact_coverage < 0.5,
            "4 spellings must fragment away >half the members, got {}",
            r.exact_coverage
        );
        // One spelling: no fragmentation at all.
        let r1 = semantics(40, 5, 1, 17);
        assert!((r1.exact_coverage - 1.0).abs() < 1e-9);
        assert!(render_semantics(&[r]).contains("taught"));
    }

    #[test]
    fn a4_seamless_saves_the_connection() {
        let rows = handover(4, 19);
        let on = rows.iter().find(|r| r.seamless).expect("present");
        let off = rows.iter().find(|r| !r.seamless).expect("present");
        assert!(
            on.survival_rate > 0.9,
            "seamless survival {}",
            on.survival_rate
        );
        assert!(
            off.survival_rate < 0.5,
            "without handover {}",
            off.survival_rate
        );
        assert!(on.delivery_rate > off.delivery_rate);
        assert!(!render_handover(&rows).is_empty());
    }

    #[test]
    fn a5_churn_view_tracks_truth_reasonably() {
        let r = churn(6, 5, 23);
        assert!(
            r.accuracy > 0.55,
            "group view should track ground truth, got {}",
            r.accuracy
        );
        assert!(r.events > 0, "churn must cause membership events");
        assert!(!render_churn(&[r]).is_empty());
    }
}
