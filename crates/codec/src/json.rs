//! A minimal JSON value model and writer.
//!
//! Harness reports (e.g. the Table 8 reproduction) are emitted as JSON for
//! external tooling. Only *writing* is needed — persistence inside the
//! workspace uses the binary [`crate::Wire`] format — so this module is a
//! value model plus a serializer with correct string escaping and both
//! compact and pretty output. Object keys keep insertion order so report
//! output is stable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (serialized via Rust's shortest-round-trip `f64`
    /// formatting; integers print without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object.
    #[must_use]
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends a key/value pair (builder style; objects keep insertion order).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        if let Json::Obj(pairs) = &mut self {
            pairs.push((key.to_owned(), value.into()));
        }
        self
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Num(f64::from(n))
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let j = Json::obj()
            .field("name", "ada")
            .field("age", 36u32)
            .field("admin", true)
            .field("score", 1.5f64);
        assert_eq!(
            j.to_string_compact(),
            r#"{"name":"ada","age":36,"admin":true,"score":1.5}"#
        );
    }

    #[test]
    fn pretty_nested() {
        let j = Json::obj().field("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]));
        assert_eq!(
            j.to_string_pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().to_string_pretty(), "{}");
        assert_eq!(Json::Arr(vec![]).to_string_compact(), "[]");
    }

    #[test]
    fn escaping() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(-2.25).to_string_compact(), "-2.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Null.to_string_compact(), "null");
    }

    #[test]
    fn insertion_order_is_preserved() {
        let j = Json::obj().field("z", 1u32).field("a", 2u32);
        assert_eq!(j.to_string_compact(), r#"{"z":1,"a":2}"#);
    }
}
