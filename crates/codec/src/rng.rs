//! Deterministic pseudo-randomness: splitmix64 seeding + xoshiro256++.
//!
//! The whole workspace draws randomness from this one module so that every
//! simulation, property test, and benchmark is reproducible from a single
//! `u64` seed across platforms and releases.
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. Used only to expand a
//!   user seed into the 256-bit xoshiro state (its guaranteed-equidistributed
//!   output stream makes it the canonical xoshiro seeder).
//! * [`Xoshiro256pp`] — Blackman/Vigna's xoshiro256++ generator: 256 bits of
//!   state, period 2^256 − 1, passes BigCrush, and needs only shifts, rotates
//!   and xors — no multiplications on the hot path.
//!
//! Determinism guarantee: for a fixed seed, the output stream of every method
//! here is stable; nothing consults the OS, the clock, or address layout.

/// The splitmix64 mixer; primarily a seed expander for [`Xoshiro256pp`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a mixer from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator, expanding `seed` through splitmix64 as the
    /// xoshiro authors prescribe. Any seed (including 0) is valid.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    ///
    /// Uses Lemire-style rejection via widening multiply, so the result is
    /// unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 requires a non-zero bound");
        // Widening multiply: high 64 bits of x * bound are uniform in
        // [0, bound) once low-bits bias is rejected.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 top bits scaled by 2^-53 — the standard xoshiro recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills a byte slice with generator output.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Derives an independent generator for a labeled substream.
    ///
    /// The label is folded into fresh seed material, so `fork("a")` and
    /// `fork("b")` produce unrelated streams while remaining functions of the
    /// parent seed only.
    #[must_use]
    pub fn fork(&mut self, label: &str) -> Self {
        let mut h = self.next_u64();
        for &b in label.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Xoshiro256pp::from_seed(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 0 from the canonical C implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256pp::from_seed(42);
        let mut b = Xoshiro256pp::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::from_seed(1);
        let mut b = Xoshiro256pp::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_is_in_range_and_unbiased_enough() {
        let mut rng = Xoshiro256pp::from_seed(7);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            let v = rng.bounded_u64(5);
            assert!(v < 5);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should hold ~10000 draws; allow a generous band.
            assert!((8_500..=11_500).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = Xoshiro256pp::from_seed(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256pp::from_seed(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn forks_differ_by_label_but_are_deterministic() {
        let mut parent1 = Xoshiro256pp::from_seed(5);
        let mut parent2 = Xoshiro256pp::from_seed(5);
        let mut a1 = parent1.fork("alpha");
        let mut a2 = parent2.fork("alpha");
        assert_eq!(a1.next_u64(), a2.next_u64());

        let mut p3 = Xoshiro256pp::from_seed(5);
        let mut p4 = Xoshiro256pp::from_seed(5);
        let mut a = p3.fork("alpha");
        let mut b = p4.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = Xoshiro256pp::from_seed(0);
        // State must not be all-zero after splitmix expansion.
        assert_ne!(rng.next_u64(), 0_u64.wrapping_add(rng.next_u64()));
        let _ = rng.bounded_u64(1); // always 0, must not loop forever
    }
}
