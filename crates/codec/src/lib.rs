//! # ph-codec — the zero-dependency substrate of the PeerHood Social workspace
//!
//! The thesis system (PeerHood Community) is a serverless, self-contained
//! middleware; this workspace mirrors that property at the build level. Every
//! capability that a typical Rust project pulls from crates.io is provided
//! here instead, in small, well-tested form:
//!
//! * [`Wire`] — the unified wire-codec trait every protocol message in the
//!   workspace encodes through, with a structured [`DecodeError`];
//! * [`Bytes`] — a cheaply cloneable, immutable byte buffer (the
//!   `bytes::Bytes` subset the middleware needs);
//! * [`rng`] — splitmix64 seeding + xoshiro256++ generation, the single
//!   deterministic randomness source of the simulator;
//! * [`json`] — a minimal JSON value model and writer for harness reports;
//! * [`prop`] — a deterministic property-test harness with choice-stream
//!   shrinking and regression-seed replay.
//!
//! The crate depends on `std` only. Nothing in the workspace may depend on
//! crates.io — see `DESIGN.md` ("zero-dependency policy").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
pub mod json;
pub mod prop;
pub mod rng;
mod wire;

pub use bytes::Bytes;
pub use wire::{decode_seq, encode_seq, read_len, take, DecodeError, Wire};
