//! The unified wire-codec API.
//!
//! Every protocol message in the workspace — community `Request`/`Response`
//! frames, PeerHood handshakes, persisted member stores — encodes through
//! [`Wire`]: a compact, deterministic, big-endian binary format. Decoding is
//! strict: truncation, unknown tags, invalid UTF-8 and trailing bytes are all
//! structured [`DecodeError`]s, never panics.
//!
//! # Format conventions
//!
//! * integers are fixed-width big-endian;
//! * `bool` is one byte (`0`/`1`, everything else rejected);
//! * `f64` is the IEEE-754 bit pattern as a `u64`;
//! * strings and byte blobs are a `u32` length followed by the bytes;
//! * collections are a `u32` element count followed by the elements;
//! * `Option<T>` is a presence byte followed by the value when present;
//! * enums are a one-byte tag chosen by the implementing type.
//!
//! Length prefixes are validated against the bytes actually remaining before
//! any allocation, so a hostile 4 GiB length claim in a 20-byte frame is
//! rejected immediately ([`DecodeError::LengthOverflow`]).
//!
//! # Example
//!
//! ```rust
//! use ph_codec::Wire;
//!
//! let v: Vec<String> = vec!["a".into(), "b".into()];
//! let frame = v.encode();
//! assert_eq!(Vec::<String>::decode_exact(&frame).unwrap(), v);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error as StdError;
use std::fmt;

/// A structured decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Truncated,
    /// An enum tag byte was not one of the known values for `what`.
    BadTag {
        /// The type or field being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A frame decoded successfully but left unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// A length prefix claimed more elements/bytes than the input holds.
    LengthOverflow {
        /// The claimed length.
        claimed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A versioned frame carried a version this build does not speak.
    UnsupportedVersion {
        /// The highest version this decoder understands.
        supported: u8,
        /// The version found in the frame.
        found: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated message"),
            DecodeError::BadTag { what, tag } => {
                write!(f, "unknown tag {tag:#04x} for {what}")
            }
            DecodeError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after message")
            }
            DecodeError::LengthOverflow { claimed, available } => {
                write!(
                    f,
                    "length {claimed} exceeds the {available} byte(s) available"
                )
            }
            DecodeError::UnsupportedVersion { supported, found } => {
                write!(
                    f,
                    "unsupported wire version {found} (this build speaks <= {supported})"
                )
            }
        }
    }
}

impl StdError for DecodeError {}

/// Consumes exactly `n` bytes from the input.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] when fewer than `n` bytes remain.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

/// Reads a `u32` length prefix and validates it against the bytes remaining
/// (each encoded element occupies at least one byte).
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] or [`DecodeError::LengthOverflow`].
pub fn read_len(input: &mut &[u8]) -> Result<usize, DecodeError> {
    let n = u32::decode(input)? as usize;
    if n > input.len() {
        return Err(DecodeError::LengthOverflow {
            claimed: n,
            available: input.len(),
        });
    }
    Ok(n)
}

/// A value with a canonical binary wire form.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_to(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the malformation; implementations
    /// never panic on arbitrary input.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Encodes `self` into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_to(&mut out);
        out
    }

    /// Decodes a value that must occupy the whole frame.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] when the frame holds more than
    /// one value, besides any error from [`Wire::decode`].
    fn decode_exact(frame: &[u8]) -> Result<Self, DecodeError> {
        let mut input = frame;
        let value = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(value)
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: input.len(),
            })
        }
    }
}

macro_rules! impl_wire_int {
    ($($ty:ty),*) => {$(
        impl Wire for $ty {
            fn encode_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }

            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let b = take(input, std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_be_bytes(b.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i64);

impl Wire for bool {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }
}

impl Wire for f64 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.to_bits().encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl Wire for String {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = read_len(input)?;
        let b = take(input, n)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl Wire for Vec<u8> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        out.extend_from_slice(self);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = read_len(input)?;
        Ok(take(input, n)?.to_vec())
    }
}

/// Byte-compatible with the [`String`] encoding, so a field can migrate
/// between the two without changing the wire or snapshot format.
impl Wire for std::sync::Arc<str> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = read_len(input)?;
        let b = take(input, n)?;
        std::str::from_utf8(b)
            .map(std::sync::Arc::from)
            .map_err(|_| DecodeError::InvalidUtf8)
    }
}

/// Byte-compatible with the `Vec<u8>` encoding: same dense length-prefixed
/// blob, decoded into a shared buffer instead of a fresh allocation per
/// clone.
impl Wire for crate::Bytes {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        out.extend_from_slice(self);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = read_len(input)?;
        Ok(crate::Bytes::from(take(input, n)?.to_vec()))
    }
}

/// Encodes a slice as a `u32` count followed by the elements.
///
/// For element types without their own `Vec<T>` impl (kept off a blanket impl
/// so `Vec<u8>` can stay a dense blob).
pub fn encode_seq<T: Wire>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u32).encode_to(out);
    for item in items {
        item.encode_to(out);
    }
}

/// Decodes a sequence written by [`encode_seq`].
///
/// # Errors
///
/// Propagates any [`DecodeError`] from the length prefix or an element.
pub fn decode_seq<T: Wire>(input: &mut &[u8]) -> Result<Vec<T>, DecodeError> {
    let n = read_len(input)?;
    let mut out = Vec::with_capacity(n.min(input.len()));
    for _ in 0..n {
        out.push(T::decode(input)?);
    }
    Ok(out)
}

/// Generic sequences: `u32` count + elements. `Vec<u8>` above is a distinct,
/// denser blob encoding, which this macro must not shadow — hence the
/// per-type instantiation instead of a blanket impl.
macro_rules! impl_wire_seq {
    ($($ty:ty),*) => {$(
        impl Wire for Vec<$ty> {
            fn encode_to(&self, out: &mut Vec<u8>) {
                (self.len() as u32).encode_to(out);
                for item in self {
                    item.encode_to(out);
                }
            }

            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let n = read_len(input)?;
                let mut out = Vec::with_capacity(n.min(input.len()));
                for _ in 0..n {
                    out.push(<$ty>::decode(input)?);
                }
                Ok(out)
            }
        }
    )*};
}

impl_wire_seq!(String, u64);

impl Wire for std::time::Duration {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_secs().encode_to(out);
        self.subsec_nanos().encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let secs = u64::decode(input)?;
        let nanos = u32::decode(input)?;
        if nanos >= 1_000_000_000 {
            // A carry here could overflow `secs`; reject out-of-range subsec
            // values instead of normalizing.
            return Err(DecodeError::LengthOverflow {
                claimed: nanos as usize,
                available: 999_999_999,
            });
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_to(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            tag => Err(DecodeError::BadTag {
                what: "option",
                tag,
            }),
        }
    }
}

impl Wire for BTreeMap<String, String> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        for (k, v) in self {
            k.encode_to(out);
            v.encode_to(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = read_len(input)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = String::decode(input)?;
            let v = String::decode(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl Wire for BTreeSet<String> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        for item in self {
            item.encode_to(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = read_len(input)?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(String::decode(input)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u8::decode_exact(&7u8.encode()).unwrap(), 7);
        assert_eq!(
            u32::decode_exact(&0xDEAD_BEEFu32.encode()).unwrap(),
            0xDEAD_BEEF
        );
        assert_eq!(u64::decode_exact(&u64::MAX.encode()).unwrap(), u64::MAX);
        assert_eq!(i64::decode_exact(&(-5i64).encode()).unwrap(), -5);
        assert!(bool::decode_exact(&true.encode()).unwrap());
        assert_eq!(f64::decode_exact(&1.5f64.encode()).unwrap(), 1.5);
        let s = "héllo".to_owned();
        assert_eq!(String::decode_exact(&s.encode()).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<String> = vec!["a".into(), "bb".into()];
        assert_eq!(Vec::<String>::decode_exact(&v.encode()).unwrap(), v);
        let blob: Vec<u8> = vec![0, 1, 255];
        assert_eq!(Vec::<u8>::decode_exact(&blob.encode()).unwrap(), blob);
        let m: BTreeMap<String, String> = [("k".to_owned(), "v".to_owned())].into_iter().collect();
        assert_eq!(BTreeMap::decode_exact(&m.encode()).unwrap(), m);
        let set: BTreeSet<String> = ["x".to_owned()].into_iter().collect();
        assert_eq!(BTreeSet::decode_exact(&set.encode()).unwrap(), set);
        assert_eq!(
            Option::<String>::decode_exact(&Some("y".to_owned()).encode()).unwrap(),
            Some("y".to_owned())
        );
        assert_eq!(
            Option::<String>::decode_exact(&None::<String>.encode()).unwrap(),
            None
        );
    }

    #[test]
    fn shared_types_round_trip_with_string_layout() {
        // Arc<str> must be byte-compatible with String so interned fields
        // keep the existing snapshot format.
        let s = "héllo".to_owned();
        let a: std::sync::Arc<str> = std::sync::Arc::from(s.as_str());
        assert_eq!(a.encode(), s.encode());
        let back = <std::sync::Arc<str>>::decode_exact(&s.encode()).unwrap();
        assert_eq!(&*back, s);
        assert_eq!(
            <std::sync::Arc<str>>::decode_exact(&[0, 0, 0, 1, 0xFF]),
            Err(DecodeError::InvalidUtf8)
        );

        // Bytes must be byte-compatible with Vec<u8>.
        let v: Vec<u8> = vec![0, 1, 255];
        let b = crate::Bytes::from(v.clone());
        assert_eq!(b.encode(), v.encode());
        assert_eq!(crate::Bytes::decode_exact(&v.encode()).unwrap(), b);
    }

    #[test]
    fn truncation_reported() {
        let frame = "hello".to_owned().encode();
        // A short string body trips the pre-allocation length guard.
        assert_eq!(
            String::decode_exact(&frame[..frame.len() - 1]),
            Err(DecodeError::LengthOverflow {
                claimed: 5,
                available: 4
            })
        );
        // A short fixed-width integer is plain truncation.
        assert_eq!(u32::decode_exact(&[1, 2]), Err(DecodeError::Truncated));
        assert_eq!(String::decode_exact(&[0, 0]), Err(DecodeError::Truncated));
    }

    #[test]
    fn trailing_bytes_reported() {
        let mut frame = 3u8.encode();
        frame.push(0xFF);
        assert_eq!(
            u8::decode_exact(&frame),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn absurd_length_rejected_before_allocation() {
        // Vec<String> claiming u32::MAX elements in a 4-byte frame.
        let frame = [0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            Vec::<String>::decode_exact(&frame),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let frame = [0, 0, 0, 2, 0xC3, 0x28];
        assert_eq!(String::decode_exact(&frame), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn bad_bool_and_option_tags_rejected() {
        assert!(matches!(
            bool::decode_exact(&[7]),
            Err(DecodeError::BadTag {
                what: "bool",
                tag: 7
            })
        ));
        assert!(matches!(
            Option::<String>::decode_exact(&[9]),
            Err(DecodeError::BadTag { what: "option", .. })
        ));
    }

    #[test]
    fn display_is_informative() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::UnsupportedVersion {
            supported: 1,
            found: 9
        }
        .to_string()
        .contains('9'));
        let e: &dyn StdError = &DecodeError::InvalidUtf8;
        assert!(e.to_string().contains("utf-8"));
    }
}
