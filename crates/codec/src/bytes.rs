//! A cheaply cloneable, immutable byte buffer.
//!
//! This is the subset of the `bytes::Bytes` API the middleware actually uses:
//! construction from static slices and owned vectors, cheap `Clone`, and
//! read-only slice access. Cloning shares the underlying allocation through an
//! `Arc` instead of copying, which is what makes fan-out of a received frame
//! to several connections cheap.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// An immutable, reference-counted byte buffer with O(1) `clone`.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[must_use]
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a `'static` slice without allocating.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// The buffer contents as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        match b.repr {
            Repr::Static(s) => s.to_vec(),
            Repr::Shared(a) => a.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_compare_equal() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, b"abc"[..]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        // Same backing allocation: the slices start at the same address.
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn into_vec_round_trips() {
        let v = vec![5u8, 6, 7];
        let b = Bytes::from(v.clone());
        let back: Vec<u8> = b.into();
        assert_eq!(back, v);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let b = Bytes::from_static(b"hello");
        assert!(b.starts_with(b"he"));
        assert_eq!(&b[1..3], b"el");
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }
}
