//! A deterministic property-test harness.
//!
//! Replaces `proptest` for this workspace: seeded case generation, a
//! choice-stream shrinker, and regression-seed replay. The design follows
//! Hypothesis' "internal shrinking" idea — generators draw from a stream of
//! bounded integer choices, and shrinking rewrites the *stream* (truncate,
//! zero, halve, decrement) then replays the generator, so every shrunk input
//! is valid by construction and no per-type shrinkers are needed.
//!
//! # Usage
//!
//! ```rust
//! use ph_codec::prop::{check, Config, Gen};
//!
//! check(&Config::default(), "reverse twice is identity", |g: &mut Gen| {
//!     g.vec_of(16, |g| g.u64(100))
//! }, |v| {
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     assert_eq!(&w, v);
//! });
//! ```
//!
//! Failures panic with the case seed and the shrunk input; re-running with
//! `PH_PROP_SEED=<seed>` (or adding `cc <seed-hex>` to a regressions file
//! loaded via [`Config::with_regressions_file`]) replays that case first.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::Once;

use crate::rng::{SplitMix64, Xoshiro256pp};

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases per property.
    pub cases: u32,
    /// Base seed; each case derives its own seed from it.
    pub seed: u64,
    /// Upper bound on shrink replays after a failure.
    pub max_shrink_iters: u32,
    /// Seeds replayed before the random cases (regression corpus).
    pub regressions: Vec<u64>,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PH_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let seed = std::env::var("PH_PROP_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(0x5EED_CAFE_F00D_0001);
        Config {
            cases,
            seed,
            max_shrink_iters: 512,
            regressions: Vec::new(),
        }
    }
}

impl Config {
    /// A configuration with a fixed case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Loads regression seeds from a proptest-style regressions file and
    /// prepends them to the run.
    ///
    /// Lines of the form `cc <hex>` are parsed; the first 16 hex digits
    /// become the replay seed. A missing file is not an error (matching
    /// proptest's behavior for absent regression files).
    #[must_use]
    pub fn with_regressions_file(mut self, path: impl AsRef<Path>) -> Self {
        self.regressions.extend(regression_seeds(path.as_ref()));
        self
    }
}

/// Parses the seeds out of a proptest-style regressions file.
#[must_use]
pub fn regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            parse_seed(rest.get(..16).unwrap_or(rest))
        })
        .collect()
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else if s.chars().all(|c| c.is_ascii_digit()) {
        s.parse().ok()
    } else {
        u64::from_str_radix(s, 16).ok()
    }
}

enum Source {
    Random(Xoshiro256pp),
    Replay { choices: Vec<u64>, pos: usize },
}

/// The choice stream a generator draws from.
///
/// Every draw is a bounded integer that is recorded; shrinking mutates the
/// recorded stream and replays it. On replay, exhausted or out-of-bound
/// choices clamp toward zero, which is also the "minimal" direction for every
/// derived value (empty vec, `'a'`-string, 0, `false`).
pub struct Gen {
    source: Source,
    record: Vec<u64>,
}

impl Gen {
    fn random(seed: u64) -> Self {
        Gen {
            source: Source::Random(Xoshiro256pp::from_seed(seed)),
            record: Vec::new(),
        }
    }

    fn replay(choices: Vec<u64>) -> Self {
        Gen {
            source: Source::Replay { choices, pos: 0 },
            record: Vec::new(),
        }
    }

    fn draw(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let value = match &mut self.source {
            Source::Random(rng) => rng.bounded_u64(bound),
            Source::Replay { choices, pos } => {
                let raw = choices.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                raw.min(bound - 1)
            }
        };
        self.record.push(value);
        value
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn u64(&mut self, bound: u64) -> u64 {
        self.draw(bound)
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.draw(hi - lo + 1)
    }

    /// Any `u64` (shrinks toward 0).
    pub fn any_u64(&mut self) -> u64 {
        self.draw(u64::MAX)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn usize(&mut self, bound: usize) -> usize {
        self.draw(bound as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        self.draw(1 << 53) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// A coin flip (shrinks toward `false`).
    pub fn bool(&mut self) -> bool {
        self.draw(2) == 1
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Picks one element of a non-empty slice (shrinks toward the first).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize(items.len())]
    }

    /// A vector of up to `max_len` elements (shrinks toward empty).
    pub fn vec_of<T>(&mut self, max_len: usize, mut item: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let len = self.usize(max_len + 1);
        (0..len).map(|_| item(self)).collect()
    }

    /// Up to `max_len` arbitrary bytes.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        self.vec_of(max_len, |g| g.draw(256) as u8)
    }

    /// A string of `min_len..=max_len` characters drawn from `charset`
    /// (shrinks toward repetitions of the first charset character).
    pub fn string_from(&mut self, charset: &str, min_len: usize, max_len: usize) -> String {
        let chars: Vec<char> = charset.chars().collect();
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| *self.pick(&chars)).collect()
    }

    /// A lowercase alphanumeric identifier of 1..=`max_len` characters.
    pub fn ident(&mut self, max_len: usize) -> String {
        self.string_from("abcdefghijklmnopqrstuvwxyz0123456789", 1, max_len)
    }

    /// A printable-ASCII string of 0..=`max_len` characters (may be empty).
    pub fn ascii_string(&mut self, max_len: usize) -> String {
        let len = self.usize(max_len + 1);
        (0..len)
            .map(|_| char::from(b' ' + self.draw(95) as u8))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                default(info);
            }
        }));
    });
}

struct Failure {
    choices: Vec<u64>,
    input: String,
    cause: String,
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn run_once<T, G, P>(gen_fn: &G, prop_fn: &P, mut g: Gen) -> Result<(), Failure>
where
    T: Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T),
{
    let input_dbg = Cell::new(String::new());
    QUIET.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let value = gen_fn(&mut g);
        input_dbg.set(format!("{value:?}"));
        prop_fn(&value);
    }));
    QUIET.with(|q| q.set(false));
    match outcome {
        Ok(()) => Ok(()),
        Err(payload) => Err(Failure {
            choices: g.record,
            input: input_dbg.take(),
            cause: payload_message(payload.as_ref()),
        }),
    }
}

/// `(len, sum)` — the lexicographic "smallness" order used by the shrinker.
fn weight(choices: &[u64]) -> (usize, u128) {
    (choices.len(), choices.iter().map(|&c| u128::from(c)).sum())
}

fn shrink<T, G, P>(gen_fn: &G, prop_fn: &P, first: Failure, budget: u32) -> Failure
where
    T: Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T),
{
    let mut best = first;
    let mut spent = 0u32;
    loop {
        let mut improved = false;
        let candidates = shrink_candidates(&best.choices);
        for candidate in candidates {
            if spent >= budget {
                return best;
            }
            spent += 1;
            if let Err(failure) = run_once(gen_fn, prop_fn, Gen::replay(candidate)) {
                // `failure.choices` holds the values actually consumed on
                // replay (clamped + trimmed), so compare those.
                if weight(&failure.choices) < weight(&best.choices) {
                    best = failure;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

fn shrink_candidates(choices: &[u64]) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let n = choices.len();
    // Pass 1: drop whole tails, most aggressive first.
    let mut keep = n / 2;
    loop {
        if keep < n {
            out.push(choices[..keep].to_vec());
        }
        if keep + 1 >= n {
            break;
        }
        keep = keep + (n - keep) / 2;
    }
    if n > 0 {
        out.push(choices[..n - 1].to_vec());
    }
    // Pass 2: zero each non-zero position.
    for i in 0..n {
        if choices[i] != 0 {
            let mut c = choices.to_vec();
            c[i] = 0;
            out.push(c);
        }
    }
    // Pass 3: halve, then decrement, each non-zero position.
    for i in 0..n {
        if choices[i] > 1 {
            let mut c = choices.to_vec();
            c[i] /= 2;
            out.push(c);
        }
        if choices[i] != 0 {
            let mut c = choices.to_vec();
            c[i] -= 1;
            out.push(c);
        }
    }
    out
}

/// Checks a property over generated inputs.
///
/// Runs the configured regression seeds first, then `config.cases` seeded
/// random cases. On failure the choice stream is shrunk and the run panics
/// with the case seed, the shrunk input and the original assertion message.
///
/// # Panics
///
/// Panics when the property fails for any input (that is the point).
pub fn check<T, G, P>(config: &Config, name: &str, gen_fn: G, prop_fn: P)
where
    T: Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T),
{
    install_quiet_hook();
    let mut seeds = config.regressions.clone();
    let mut sm = SplitMix64::new(config.seed);
    seeds.extend((0..config.cases).map(|_| sm.next_u64()));

    for (case, seed) in seeds.iter().copied().enumerate() {
        if let Err(first) = run_once(&gen_fn, &prop_fn, Gen::random(seed)) {
            let shrunk = shrink(&gen_fn, &prop_fn, first, config.max_shrink_iters);
            panic!(
                "property '{name}' failed (case {case}, seed {seed:#018x})\n\
                 \x20 shrunk input: {}\n\
                 \x20 cause: {}\n\
                 \x20 replay: set PH_PROP_SEED={seed} or add `cc {seed:016x}` to the regressions file",
                shrunk.input, shrunk.cause
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_is_silent() {
        check(
            &Config::with_cases(64),
            "addition commutes",
            |g| (g.u64(1000), g.u64(1000)),
            |(a, b)| assert_eq!(a + b, b + a),
        );
    }

    #[test]
    fn failing_property_panics_and_shrinks() {
        let result = panic::catch_unwind(|| {
            check(
                &Config::with_cases(256),
                "all vecs shorter than 3",
                |g| g.vec_of(10, |g| g.u64(100)),
                |v| assert!(v.len() < 3, "len was {}", v.len()),
            );
        });
        let msg = payload_message(result.unwrap_err().as_ref());
        assert!(msg.contains("all vecs shorter than 3"), "{msg}");
        // Shrinking should reach a minimal counterexample: three zeros.
        assert!(msg.contains("[0, 0, 0]"), "not fully shrunk: {msg}");
        assert!(msg.contains("PH_PROP_SEED"), "{msg}");
    }

    #[test]
    fn replay_clamps_and_pads_with_zeros() {
        let mut g = Gen::replay(vec![500, 7]);
        assert_eq!(g.u64(10), 9); // clamped to bound - 1
        assert_eq!(g.u64(10), 7);
        assert_eq!(g.u64(10), 0); // exhausted -> minimal
        assert!(!g.bool());
    }

    #[test]
    fn generators_respect_bounds() {
        let mut g = Gen::random(11);
        for _ in 0..200 {
            assert!(g.u64(7) < 7);
            let x = g.u64_in(5, 9);
            assert!((5..=9).contains(&x));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = g.ident(8);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let v = g.bytes(5);
            assert!(v.len() <= 5);
        }
    }

    #[test]
    fn same_seed_generates_same_values() {
        let make = |seed| {
            let mut g = Gen::random(seed);
            (g.any_u64(), g.ascii_string(16), g.bytes(8))
        };
        assert_eq!(make(99), make(99));
    }

    #[test]
    fn regression_file_parsing() {
        let dir = std::env::temp_dir().join("ph_codec_prop_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("regressions.txt");
        std::fs::write(
            &path,
            "# comment line\n\
             cc 8171cbee07082415f43bce6267aa752d66c51c4013f49fb732bd24c01e21c7f1\n\
             cc 00000000000000ff\n",
        )
        .unwrap();
        let seeds = regression_seeds(&path);
        assert_eq!(seeds, vec![0x8171_cbee_0708_2415, 0xff]);
        assert!(regression_seeds(Path::new("/nonexistent/file")).is_empty());
    }

    #[test]
    fn regression_seed_runs_first() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let first_seed = AtomicU64::new(0);
        let mut cfg = Config::with_cases(1);
        cfg.regressions = vec![0xDEAD];
        // Record the first value drawn; it must come from the regression seed.
        let mut expected = Gen::random(0xDEAD);
        let want = expected.any_u64();
        check(
            &cfg,
            "regressions first",
            |g| g.any_u64(),
            |v| {
                first_seed
                    .compare_exchange(0, *v + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .ok();
                let _ = v;
            },
        );
        assert_eq!(first_seed.load(Ordering::SeqCst), want + 1);
    }
}
