//! Error types for the PeerHood middleware.

use std::error::Error as StdError;
use std::fmt;

use crate::types::{ConnId, DeviceId};

/// Errors reported by the PeerHood daemon and library.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PeerHoodError {
    /// The referenced device is not present in the neighborhood.
    UnknownDevice(DeviceId),
    /// The referenced connection does not exist (or is already closed).
    UnknownConnection(ConnId),
    /// The requested remote service is not registered on the target device.
    ServiceNotFound {
        /// The device that was asked.
        device: DeviceId,
        /// The service name that was requested.
        service: String,
    },
    /// A service with this name is already registered locally.
    ServiceAlreadyRegistered(String),
    /// No service with this name is registered locally.
    ServiceNotRegistered(String),
    /// No shared technology currently reaches the device.
    Unreachable(DeviceId),
    /// Connection establishment failed on every candidate technology.
    ConnectFailed {
        /// The device we tried to reach.
        device: DeviceId,
        /// Human-readable reason from the last attempt.
        reason: String,
    },
    /// The connection was lost and (if enabled) seamless handover also
    /// failed.
    ConnectionLost(ConnId),
}

impl fmt::Display for PeerHoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerHoodError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            PeerHoodError::UnknownConnection(c) => write!(f, "unknown connection {c}"),
            PeerHoodError::ServiceNotFound { device, service } => {
                write!(f, "service {service:?} not found on device {device}")
            }
            PeerHoodError::ServiceAlreadyRegistered(name) => {
                write!(f, "service {name:?} is already registered")
            }
            PeerHoodError::ServiceNotRegistered(name) => {
                write!(f, "service {name:?} is not registered")
            }
            PeerHoodError::Unreachable(d) => write!(f, "device {d} is unreachable"),
            PeerHoodError::ConnectFailed { device, reason } => {
                write!(f, "connecting to device {device} failed: {reason}")
            }
            PeerHoodError::ConnectionLost(c) => write!(f, "connection {c} was lost"),
        }
    }
}

impl StdError for PeerHoodError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = PeerHoodError::ServiceNotFound {
            device: DeviceId::new(3),
            service: "PeerHoodCommunity".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("PeerHoodCommunity"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn StdError) {}
        takes_err(&PeerHoodError::UnknownDevice(DeviceId::new(1)));
    }
}
