//! Error types for the PeerHood middleware.

use std::error::Error as StdError;
use std::fmt;

use crate::types::{ConnId, DeviceId};

/// Coarse, layer-independent failure classification with **stable wire
/// codes**, shared by the middleware ([`PeerHoodError`]) and the community
/// layer above it.
///
/// The numeric codes are part of the wire/protocol contract: they never
/// change meaning and new kinds only append. Tools that log or transmit
/// failures use [`ErrorKind::code`]; peers decode with
/// [`ErrorKind::from_code`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ErrorKind {
    /// A deadline expired before the operation completed.
    Timeout = 1,
    /// An established link or connection failed underneath the operation.
    LinkFailure = 2,
    /// The remote side actively refused the operation.
    Refused = 3,
    /// No route/technology currently reaches the peer.
    Unreachable = 4,
    /// The referenced entity (device, service, account, …) does not exist.
    NotFound = 5,
    /// The operation conflicts with existing state (duplicate names, …).
    Conflict = 6,
    /// The caller is not authenticated or not allowed to do this.
    Unauthorized = 7,
    /// The request itself is malformed or undecodable.
    InvalidRequest = 8,
    /// The peer exists but cannot serve the request right now.
    Unavailable = 9,
    /// An internal invariant broke; not the caller's fault.
    Internal = 10,
    /// The local end shed this peer under load: its bounded write queue
    /// overflowed (backpressure) and the connection was dropped rather than
    /// letting one slow consumer stall everyone else. Clients seeing this
    /// code should back off and reconnect.
    Overloaded = 11,
}

impl ErrorKind {
    /// Every kind, in wire-code order.
    pub const ALL: [ErrorKind; 11] = [
        ErrorKind::Timeout,
        ErrorKind::LinkFailure,
        ErrorKind::Refused,
        ErrorKind::Unreachable,
        ErrorKind::NotFound,
        ErrorKind::Conflict,
        ErrorKind::Unauthorized,
        ErrorKind::InvalidRequest,
        ErrorKind::Unavailable,
        ErrorKind::Internal,
        ErrorKind::Overloaded,
    ];

    /// The stable wire code of this kind.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code; `None` for codes no kind has (yet).
    pub fn from_code(code: u8) -> Option<ErrorKind> {
        ErrorKind::ALL.into_iter().find(|k| k.code() == code)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorKind::Timeout => "timeout",
            ErrorKind::LinkFailure => "link failure",
            ErrorKind::Refused => "refused",
            ErrorKind::Unreachable => "unreachable",
            ErrorKind::NotFound => "not found",
            ErrorKind::Conflict => "conflict",
            ErrorKind::Unauthorized => "unauthorized",
            ErrorKind::InvalidRequest => "invalid request",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Internal => "internal error",
            ErrorKind::Overloaded => "overloaded",
        };
        f.write_str(name)
    }
}

/// Errors reported by the PeerHood daemon and library.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PeerHoodError {
    /// The referenced device is not present in the neighborhood.
    UnknownDevice(DeviceId),
    /// The referenced connection does not exist (or is already closed).
    UnknownConnection(ConnId),
    /// The requested remote service is not registered on the target device.
    ServiceNotFound {
        /// The device that was asked.
        device: DeviceId,
        /// The service name that was requested.
        service: String,
    },
    /// A service with this name is already registered locally.
    ServiceAlreadyRegistered(String),
    /// No service with this name is registered locally.
    ServiceNotRegistered(String),
    /// No shared technology currently reaches the device.
    Unreachable(DeviceId),
    /// Connection establishment failed on every candidate technology.
    ConnectFailed {
        /// The device we tried to reach.
        device: DeviceId,
        /// Human-readable reason from the last attempt.
        reason: String,
    },
    /// The connection was lost and (if enabled) seamless handover also
    /// failed.
    ConnectionLost(ConnId),
}

impl PeerHoodError {
    /// The coarse [`ErrorKind`] of this error (stable wire code).
    ///
    /// [`PeerHoodError::ConnectFailed`] carries a free-form transport
    /// reason; its kind is sniffed from the reason text the simulated
    /// plugins produce (`timed out` → [`ErrorKind::Timeout`], `refused` →
    /// [`ErrorKind::Refused`]) and defaults to [`ErrorKind::Unavailable`].
    pub fn kind(&self) -> ErrorKind {
        match self {
            PeerHoodError::UnknownDevice(_)
            | PeerHoodError::UnknownConnection(_)
            | PeerHoodError::ServiceNotFound { .. }
            | PeerHoodError::ServiceNotRegistered(_) => ErrorKind::NotFound,
            PeerHoodError::ServiceAlreadyRegistered(_) => ErrorKind::Conflict,
            PeerHoodError::Unreachable(_) => ErrorKind::Unreachable,
            PeerHoodError::ConnectFailed { reason, .. } => {
                if reason.contains("timed out") {
                    ErrorKind::Timeout
                } else if reason.contains("refused") {
                    ErrorKind::Refused
                } else {
                    ErrorKind::Unavailable
                }
            }
            PeerHoodError::ConnectionLost(_) => ErrorKind::LinkFailure,
        }
    }
}

impl fmt::Display for PeerHoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerHoodError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            PeerHoodError::UnknownConnection(c) => write!(f, "unknown connection {c}"),
            PeerHoodError::ServiceNotFound { device, service } => {
                write!(f, "service {service:?} not found on device {device}")
            }
            PeerHoodError::ServiceAlreadyRegistered(name) => {
                write!(f, "service {name:?} is already registered")
            }
            PeerHoodError::ServiceNotRegistered(name) => {
                write!(f, "service {name:?} is not registered")
            }
            PeerHoodError::Unreachable(d) => write!(f, "device {d} is unreachable"),
            PeerHoodError::ConnectFailed { device, reason } => {
                write!(f, "connecting to device {device} failed: {reason}")
            }
            PeerHoodError::ConnectionLost(c) => write!(f, "connection {c} was lost"),
        }
    }
}

impl StdError for PeerHoodError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = PeerHoodError::ServiceNotFound {
            device: DeviceId::new(3),
            service: "PeerHoodCommunity".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("PeerHoodCommunity"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn StdError) {}
        takes_err(&PeerHoodError::UnknownDevice(DeviceId::new(1)));
    }

    #[test]
    fn kind_codes_are_stable_and_round_trip() {
        // These exact numbers are a wire contract; a change here is a
        // protocol break, not a refactor.
        assert_eq!(ErrorKind::Timeout.code(), 1);
        assert_eq!(ErrorKind::LinkFailure.code(), 2);
        assert_eq!(ErrorKind::Refused.code(), 3);
        assert_eq!(ErrorKind::Unreachable.code(), 4);
        assert_eq!(ErrorKind::NotFound.code(), 5);
        assert_eq!(ErrorKind::Conflict.code(), 6);
        assert_eq!(ErrorKind::Unauthorized.code(), 7);
        assert_eq!(ErrorKind::InvalidRequest.code(), 8);
        assert_eq!(ErrorKind::Unavailable.code(), 9);
        assert_eq!(ErrorKind::Internal.code(), 10);
        assert_eq!(ErrorKind::Overloaded.code(), 11);
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(ErrorKind::from_code(0), None);
        assert_eq!(ErrorKind::from_code(200), None);
    }

    #[test]
    fn peerhood_errors_classify_sensibly() {
        assert_eq!(
            PeerHoodError::UnknownDevice(DeviceId::new(1)).kind(),
            ErrorKind::NotFound
        );
        assert_eq!(
            PeerHoodError::Unreachable(DeviceId::new(1)).kind(),
            ErrorKind::Unreachable
        );
        assert_eq!(
            PeerHoodError::ConnectionLost(ConnId::new(3)).kind(),
            ErrorKind::LinkFailure
        );
        assert_eq!(
            PeerHoodError::ConnectFailed {
                device: DeviceId::new(1),
                reason: "connection attempt timed out".into(),
            }
            .kind(),
            ErrorKind::Timeout
        );
        assert_eq!(
            PeerHoodError::ConnectFailed {
                device: DeviceId::new(1),
                reason: "Bluetooth connection refused".into(),
            }
            .kind(),
            ErrorKind::Refused
        );
        assert_eq!(
            PeerHoodError::ConnectFailed {
                device: DeviceId::new(1),
                reason: "peer out of range".into(),
            }
            .kind(),
            ErrorKind::Unavailable
        );
    }
}
