//! Daemon configuration.

use std::time::Duration;

use netsim::Technology;

use crate::gossip::GossipConfig;
use crate::techmap::TechMap;
use crate::types::DeviceInfo;

/// Configuration of one PeerHood daemon instance.
///
/// # Example
///
/// ```rust
/// use ph_peerhood::config::DaemonConfig;
/// use ph_peerhood::types::{DeviceId, DeviceInfo};
/// use netsim::Technology;
/// use std::time::Duration;
///
/// let cfg = DaemonConfig::new(DeviceInfo::new(DeviceId::new(1), "alice", Technology::ALL))
///     .with_inquiry_interval(Technology::Bluetooth, Duration::from_secs(15))
///     .with_seamless_connectivity(true);
/// assert!(cfg.seamless_connectivity);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DaemonConfig {
    /// Identity of the local device.
    pub device: DeviceInfo,
    /// How often to start a discovery round, per technology. A new round is
    /// started this long after the *start* of the previous one (and never
    /// while one is still running).
    pub inquiry_interval: TechMap<Duration>,
    /// How long a neighbor stays in the table without answering discovery
    /// before it is declared gone.
    pub neighbor_ttl: Duration,
    /// Automatically query the service list of newly appeared devices, so
    /// applications see a populated service cache (the thesis's PHD "keeps
    /// track of other wireless device discovery and service discovery in
    /// those devices").
    pub auto_service_discovery: bool,
    /// Attempt to migrate live connections to another shared technology
    /// when their link drops (Table 3: *Seamless Connectivity*).
    pub seamless_connectivity: bool,
    /// Optional timeout/retry/backoff policy for flaky environments.
    /// `None` (the default) keeps the daemon's original fire-and-forget
    /// behavior and is bit-identical to pre-recovery builds.
    pub recovery: Option<RecoveryPolicy>,
    /// Optional epidemic membership + dissemination layer. `None` (the
    /// default) keeps the daemon gossip-free and bit-identical to
    /// pre-gossip builds; `Some` makes the daemon announce the config to
    /// its application via [`AppEvent::GossipEnabled`]
    /// (`crate::api::AppEvent::GossipEnabled`) on its first input.
    pub gossip: Option<GossipConfig>,
}

/// Timeout, retry and backoff policy used when a daemon runs with fault
/// recovery enabled ([`DaemonConfig::with_recovery`]).
///
/// Retries use capped exponential backoff: retry *n* (counting from 0)
/// waits `min(backoff_base * 2^n, backoff_cap)` before relaunching.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// How long one connection attempt may stay unanswered before it is
    /// treated as failed.
    pub connect_timeout: Duration,
    /// How many times a fully failed operation (all technologies exhausted)
    /// is retried before giving up.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
    /// How long a remote service-list query may stay unanswered before it
    /// is retried or resolved from cache.
    pub query_timeout: Duration,
    /// On a final query timeout, serve the expired cached service list
    /// (flagged `stale`) instead of an empty one.
    pub serve_stale: bool,
}

impl Default for RecoveryPolicy {
    /// Defaults sized for the thesis's Bluetooth 1.2 timings: an 8 s
    /// connect timeout comfortably covers the ~1.3 s worst-case paging, a
    /// 3 s query timeout covers SDP round trips, and three retries with
    /// 500 ms → 8 s backoff ride out burst-loss episodes.
    fn default() -> Self {
        RecoveryPolicy {
            connect_timeout: Duration::from_secs(8),
            max_retries: 3,
            backoff_base: Duration::from_millis(500),
            backoff_cap: Duration::from_secs(8),
            query_timeout: Duration::from_secs(3),
            serve_stale: true,
        }
    }
}

impl RecoveryPolicy {
    /// The backoff delay before retry number `tries` (counting from 0).
    pub fn backoff(&self, tries: u32) -> Duration {
        let factor = 1u32 << tries.min(16);
        self.backoff_cap
            .min(self.backoff_base.saturating_mul(factor))
    }
}

impl DaemonConfig {
    /// Creates a configuration with era-appropriate defaults: Bluetooth
    /// inquiry every 15 s, WLAN scan every 5 s, GPRS lookup every 30 s,
    /// neighbor TTL 2.5 × the slowest interval, auto service discovery and
    /// seamless connectivity on.
    pub fn new(device: DeviceInfo) -> Self {
        let mut inquiry_interval = TechMap::new();
        inquiry_interval.insert(Technology::Bluetooth, Duration::from_secs(15));
        inquiry_interval.insert(Technology::Wlan, Duration::from_secs(5));
        inquiry_interval.insert(Technology::Gprs, Duration::from_secs(30));
        DaemonConfig {
            device,
            inquiry_interval,
            neighbor_ttl: Duration::from_secs(75),
            auto_service_discovery: true,
            seamless_connectivity: true,
            recovery: None,
            gossip: None,
        }
    }

    /// Enables timeout/retry/backoff recovery with the given policy
    /// (builder style).
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Enables the epidemic gossip layer with the given tuning (builder
    /// style):
    ///
    /// ```rust
    /// # use ph_peerhood::config::DaemonConfig;
    /// # use ph_peerhood::gossip::GossipConfig;
    /// # use ph_peerhood::types::{DeviceId, DeviceInfo};
    /// # use netsim::Technology;
    /// use std::time::Duration;
    ///
    /// let cfg = DaemonConfig::new(DeviceInfo::new(DeviceId::new(1), "alice", Technology::ALL))
    ///     .with_gossip(
    ///         GossipConfig::default()
    ///             .active_view(5)
    ///             .passive_view(30)
    ///             .shuffle_every(Duration::from_secs(30)),
    ///     );
    /// assert!(cfg.gossip.is_some());
    /// ```
    pub fn with_gossip(mut self, gossip: GossipConfig) -> Self {
        self.gossip = Some(gossip);
        self
    }

    /// Overrides one technology's inquiry interval (builder style).
    pub fn with_inquiry_interval(mut self, tech: Technology, interval: Duration) -> Self {
        self.inquiry_interval.insert(tech, interval);
        self
    }

    /// Overrides the neighbor TTL (builder style).
    pub fn with_neighbor_ttl(mut self, ttl: Duration) -> Self {
        self.neighbor_ttl = ttl;
        self
    }

    /// Enables or disables automatic remote service discovery (builder
    /// style).
    pub fn with_auto_service_discovery(mut self, on: bool) -> Self {
        self.auto_service_discovery = on;
        self
    }

    /// Enables or disables seamless connectivity (builder style).
    pub fn with_seamless_connectivity(mut self, on: bool) -> Self {
        self.seamless_connectivity = on;
        self
    }

    /// The inquiry interval for `tech`, if the local device has that radio
    /// and an interval is configured.
    pub fn interval_for(&self, tech: Technology) -> Option<Duration> {
        if !self.device.technologies.contains(tech) {
            return None;
        }
        self.inquiry_interval.get(tech).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DeviceId;

    fn device() -> DeviceInfo {
        DeviceInfo::new(DeviceId::new(1), "test", [Technology::Bluetooth])
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = DaemonConfig::new(device());
        assert!(cfg.auto_service_discovery);
        assert!(cfg.seamless_connectivity);
        assert!(cfg.neighbor_ttl > Duration::from_secs(30));
    }

    #[test]
    fn interval_respects_equipment() {
        let cfg = DaemonConfig::new(device());
        assert!(cfg.interval_for(Technology::Bluetooth).is_some());
        // Device has no WLAN radio, so no interval even though configured.
        assert_eq!(cfg.interval_for(Technology::Wlan), None);
    }

    #[test]
    fn builder_overrides() {
        let cfg = DaemonConfig::new(device())
            .with_inquiry_interval(Technology::Bluetooth, Duration::from_secs(99))
            .with_neighbor_ttl(Duration::from_secs(7))
            .with_auto_service_discovery(false)
            .with_seamless_connectivity(false);
        assert_eq!(
            cfg.interval_for(Technology::Bluetooth),
            Some(Duration::from_secs(99))
        );
        assert_eq!(cfg.neighbor_ttl, Duration::from_secs(7));
        assert!(!cfg.auto_service_discovery);
        assert!(!cfg.seamless_connectivity);
    }

    #[test]
    fn recovery_is_off_by_default_and_opt_in() {
        let cfg = DaemonConfig::new(device());
        assert!(cfg.recovery.is_none());
        let cfg = cfg.with_recovery(RecoveryPolicy::default());
        assert!(cfg.recovery.is_some());
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RecoveryPolicy {
            backoff_base: Duration::from_millis(500),
            backoff_cap: Duration::from_secs(8),
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(500));
        assert_eq!(p.backoff(1), Duration::from_secs(1));
        assert_eq!(p.backoff(2), Duration::from_secs(2));
        assert_eq!(p.backoff(10), Duration::from_secs(8), "capped");
        // Huge retry counts must not overflow the shift.
        assert_eq!(p.backoff(u32::MAX), Duration::from_secs(8));
    }
}
