//! A tiny per-technology map.
//!
//! Several daemon structures key a handful of values by [`Technology`] —
//! inquiry intervals, inquiry state, sighting times. A `BTreeMap` is the
//! obvious shape, but its smallest node holds eleven slots: at crowd scale
//! (a million daemons, each owning two such maps) those part-empty nodes
//! were among the largest heap consumers in the whole simulation. This
//! inline three-slot array stores the same mapping with zero allocations.
//!
//! Iteration order is [`Technology::ALL`] order, which equals `Technology`'s
//! `Ord` order — so replacing a `BTreeMap` with a [`TechMap`] preserves every
//! observable iteration sequence bit-for-bit.

use netsim::Technology;

/// An inline map from [`Technology`] to `V` (at most one value per
/// technology; see the module docs for why this exists).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TechMap<V>([Option<V>; 3]);

fn slot(tech: Technology) -> usize {
    match tech {
        Technology::Bluetooth => 0,
        Technology::Wlan => 1,
        Technology::Gprs => 2,
    }
}

impl<V> TechMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        TechMap([None, None, None])
    }

    /// The value for `tech`, if set.
    pub fn get(&self, tech: Technology) -> Option<&V> {
        self.0[slot(tech)].as_ref()
    }

    /// Mutable access to the value for `tech`, if set.
    pub fn get_mut(&mut self, tech: Technology) -> Option<&mut V> {
        self.0[slot(tech)].as_mut()
    }

    /// Sets the value for `tech`, returning the previous one if any.
    pub fn insert(&mut self, tech: Technology, value: V) -> Option<V> {
        self.0[slot(tech)].replace(value)
    }

    /// Removes the value for `tech`, returning it if it was set.
    pub fn remove(&mut self, tech: Technology) -> Option<V> {
        self.0[slot(tech)].take()
    }

    /// Whether `tech` has a value.
    pub fn contains(&self, tech: Technology) -> bool {
        self.0[slot(tech)].is_some()
    }

    /// Whether no technology has a value.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(Option::is_none)
    }

    /// Number of technologies with a value.
    pub fn len(&self) -> usize {
        self.0.iter().filter(|v| v.is_some()).count()
    }

    /// Entries in [`Technology::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Technology, &V)> {
        Technology::ALL
            .into_iter()
            .zip(self.0.iter())
            .filter_map(|(tech, v)| v.as_ref().map(|v| (tech, v)))
    }

    /// Mutable entries in [`Technology::ALL`] order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Technology, &mut V)> {
        Technology::ALL
            .into_iter()
            .zip(self.0.iter_mut())
            .filter_map(|(tech, v)| v.as_mut().map(|v| (tech, v)))
    }

    /// Values in [`Technology::ALL`] order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.0.iter().filter_map(Option::as_ref)
    }

    /// Mutable values in [`Technology::ALL`] order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.0.iter_mut().filter_map(Option::as_mut)
    }
}

impl<V> FromIterator<(Technology, V)> for TechMap<V> {
    fn from_iter<I: IntoIterator<Item = (Technology, V)>>(iter: I) -> Self {
        let mut map = TechMap::new();
        for (tech, v) in iter {
            map.insert(tech, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = TechMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(Technology::Wlan, 5), None);
        assert_eq!(m.insert(Technology::Wlan, 7), Some(5));
        assert_eq!(m.get(Technology::Wlan), Some(&7));
        assert!(m.contains(Technology::Wlan));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(Technology::Wlan), Some(7));
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_all_order() {
        let m: TechMap<u32> = [(Technology::Gprs, 3), (Technology::Bluetooth, 1)]
            .into_iter()
            .collect();
        let order: Vec<_> = m.iter().map(|(t, v)| (t, *v)).collect();
        assert_eq!(
            order,
            vec![(Technology::Bluetooth, 1), (Technology::Gprs, 3)]
        );
    }

    #[test]
    fn iter_mut_edits_in_place() {
        let mut m: TechMap<u32> = [(Technology::Bluetooth, 1)].into_iter().collect();
        for (_, v) in m.iter_mut() {
            *v += 10;
        }
        assert_eq!(m.get(Technology::Bluetooth), Some(&11));
    }
}
