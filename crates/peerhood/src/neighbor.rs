//! The daemon's neighborhood table.
//!
//! The PeerHood Daemon "monitors the immediate neighbors of a PTD, collects
//! information and stores it for possible future usage" (thesis §4.1). This
//! module is that store: per-device, per-technology freshness tracking plus a
//! cache of the remote device's registered services.

use std::time::Duration;

use netsim::{SimTime, Technology};

use crate::service::ServiceInfo;
use crate::types::{DeviceId, DeviceInfo};

/// Per-technology sighting times — a fixed map indexed by
/// [`Technology::ALL`] order. At crowd scale there is one of these per
/// neighbor entry, so it is an inline 3-slot array: the `BTreeMap` it
/// replaced cost a B-tree node allocation per entry, which dominated the
/// million-node heap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SightingTimes([Option<SimTime>; 3]);

impl SightingTimes {
    fn slot(tech: Technology) -> usize {
        match tech {
            Technology::Bluetooth => 0,
            Technology::Wlan => 1,
            Technology::Gprs => 2,
        }
    }

    /// When the device last answered discovery over `tech`, if it has.
    pub fn get(&self, tech: Technology) -> Option<SimTime> {
        self.0[Self::slot(tech)]
    }

    /// Whether the device has been sighted over `tech` at all.
    pub fn contains(&self, tech: Technology) -> bool {
        self.get(tech).is_some()
    }

    /// Records a sighting over `tech`.
    pub fn insert(&mut self, tech: Technology, at: SimTime) {
        self.0[Self::slot(tech)] = Some(at);
    }

    /// Whether no technology has a recorded sighting.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(Option::is_none)
    }

    /// Recorded sightings as `(technology, time)`, in [`Technology::ALL`]
    /// priority order.
    pub fn iter(&self) -> impl Iterator<Item = (Technology, SimTime)> + '_ {
        Technology::ALL
            .into_iter()
            .zip(self.0)
            .filter_map(|(tech, seen)| seen.map(|at| (tech, at)))
    }

    /// Drops every sighting for which `keep` returns false.
    fn retain(&mut self, mut keep: impl FnMut(SimTime) -> bool) {
        for slot in &mut self.0 {
            if let Some(at) = slot {
                if !keep(*at) {
                    *slot = None;
                }
            }
        }
    }
}

/// Everything the daemon currently knows about one neighbor device.
#[derive(Clone, Debug, PartialEq)]
pub struct NeighborEntry {
    /// Identity and equipment of the device.
    pub info: DeviceInfo,
    /// When the device last answered discovery, per technology it was seen
    /// on.
    pub last_seen: SightingTimes,
    /// Cached remote service list, with the time it was fetched.
    pub services: Option<(SimTime, Vec<ServiceInfo>)>,
}

impl NeighborEntry {
    /// Technologies the device is currently visible on, in
    /// [`Technology::ALL`] priority order.
    pub fn visible_technologies(&self) -> Vec<Technology> {
        self.last_seen.iter().map(|(tech, _)| tech).collect()
    }

    /// The preferred (cheapest) technology the device is currently visible
    /// on.
    pub fn preferred_technology(&self) -> Option<Technology> {
        self.last_seen.iter().map(|(tech, _)| tech).next()
    }

    /// The most recent sighting over any technology.
    pub fn freshest_sighting(&self) -> Option<SimTime> {
        self.last_seen.iter().map(|(_, at)| at).max()
    }
}

/// The set of currently known neighbors.
///
/// Stored as a vector sorted by device id. Crowd-scale profiling showed a
/// `BTreeMap` here allocates an 11-slot root node per *table* — about
/// 1.6 KB for the typical 2–3 resident neighbors — which at a million
/// daemons was the single largest heap consumer. The sorted vec holds only
/// what it contains; lookups binary-search and inserts shift, both cheap at
/// neighborhood sizes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NeighborTable {
    /// Sorted ascending by `info.id`, unique.
    entries: Vec<NeighborEntry>,
}

/// The outcome of recording a sighting, so the daemon knows which
/// application events to raise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SightingOutcome {
    /// The device was not in the table before.
    NewDevice,
    /// The device was known; freshness was updated.
    Refreshed,
    /// The device was known but not previously visible on this technology.
    NewTechnology,
}

impl NeighborTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        NeighborTable::default()
    }

    /// Where `device` is, or where it would be inserted.
    fn position(&self, device: DeviceId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&device, |e| e.info.id)
    }

    /// Records that `info` answered discovery over `tech` at `now`.
    pub fn record_sighting(
        &mut self,
        info: DeviceInfo,
        tech: Technology,
        now: SimTime,
    ) -> SightingOutcome {
        match self.position(info.id) {
            Ok(at) => {
                let entry = &mut self.entries[at];
                entry.info = info;
                let fresh_tech = !entry.last_seen.contains(tech);
                entry.last_seen.insert(tech, now);
                if fresh_tech {
                    SightingOutcome::NewTechnology
                } else {
                    SightingOutcome::Refreshed
                }
            }
            Err(at) => {
                let mut last_seen = SightingTimes::default();
                last_seen.insert(tech, now);
                self.entries.insert(
                    at,
                    NeighborEntry {
                        info,
                        last_seen,
                        services: None,
                    },
                );
                SightingOutcome::NewDevice
            }
        }
    }

    /// Stores a freshly fetched remote service list.
    ///
    /// Ignored if the device is no longer in the table.
    pub fn record_services(&mut self, device: DeviceId, services: Vec<ServiceInfo>, now: SimTime) {
        if let Ok(at) = self.position(device) {
            self.entries[at].services = Some((now, services));
        }
    }

    /// Drops sightings aged `ttl` or more and removes devices with no fresh
    /// sightings left; returns the removed devices. A sighting expires
    /// exactly at `seen + ttl`, which is also what [`NeighborTable::next_expiry`]
    /// reports, so a timer set from `next_expiry` is guaranteed to find work.
    pub fn expire(&mut self, now: SimTime, ttl: Duration) -> Vec<DeviceInfo> {
        let mut removed = Vec::new();
        self.entries.retain_mut(|entry| {
            entry
                .last_seen
                .retain(|seen| now.saturating_since(seen) < ttl);
            if entry.last_seen.is_empty() {
                removed.push(entry.info.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// The earliest instant at which [`NeighborTable::expire`] would remove
    /// or trim something, given `ttl`; `None` when the table is empty.
    pub fn next_expiry(&self, ttl: Duration) -> Option<SimTime> {
        self.entries
            .iter()
            .flat_map(|e| e.last_seen.iter())
            .map(|(_, seen)| seen + ttl)
            .min()
    }

    /// Looks up one neighbor.
    pub fn get(&self, device: DeviceId) -> Option<&NeighborEntry> {
        self.position(device).ok().map(|at| &self.entries[at])
    }

    /// Whether the device is currently known.
    pub fn contains(&self, device: DeviceId) -> bool {
        self.position(device).is_ok()
    }

    /// All neighbors in device-id order.
    pub fn iter(&self) -> impl Iterator<Item = &NeighborEntry> {
        self.entries.iter()
    }

    /// Snapshot of all neighbor device infos.
    pub fn device_infos(&self) -> Vec<DeviceInfo> {
        self.entries.iter().map(|e| e.info.clone()).collect()
    }

    /// Number of known neighbors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no neighbors are known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes one neighbor outright (used when a connection proves it
    /// gone).
    pub fn remove(&mut self, device: DeviceId) -> Option<NeighborEntry> {
        self.position(device).ok().map(|at| self.entries.remove(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: u64) -> DeviceInfo {
        DeviceInfo::new(DeviceId::new(id), format!("dev-{id}"), Technology::ALL)
    }

    #[test]
    fn sighting_outcomes() {
        let mut t = NeighborTable::new();
        let now = SimTime::from_secs(1);
        assert_eq!(
            t.record_sighting(info(1), Technology::Bluetooth, now),
            SightingOutcome::NewDevice
        );
        assert_eq!(
            t.record_sighting(info(1), Technology::Bluetooth, now),
            SightingOutcome::Refreshed
        );
        assert_eq!(
            t.record_sighting(info(1), Technology::Wlan, now),
            SightingOutcome::NewTechnology
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiry_removes_stale_devices() {
        let mut t = NeighborTable::new();
        let ttl = Duration::from_secs(30);
        t.record_sighting(info(1), Technology::Bluetooth, SimTime::from_secs(0));
        t.record_sighting(info(2), Technology::Bluetooth, SimTime::from_secs(25));
        let removed = t.expire(SimTime::from_secs(40), ttl);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].id, DeviceId::new(1));
        assert!(t.contains(DeviceId::new(2)));
    }

    #[test]
    fn expiry_trims_single_technology() {
        let mut t = NeighborTable::new();
        let ttl = Duration::from_secs(30);
        t.record_sighting(info(1), Technology::Bluetooth, SimTime::from_secs(0));
        t.record_sighting(info(1), Technology::Wlan, SimTime::from_secs(25));
        let removed = t.expire(SimTime::from_secs(40), ttl);
        assert!(removed.is_empty());
        let entry = t.get(DeviceId::new(1)).unwrap();
        assert_eq!(entry.visible_technologies(), vec![Technology::Wlan]);
    }

    #[test]
    fn preferred_technology_order() {
        let mut t = NeighborTable::new();
        let now = SimTime::from_secs(1);
        t.record_sighting(info(1), Technology::Gprs, now);
        assert_eq!(
            t.get(DeviceId::new(1)).unwrap().preferred_technology(),
            Some(Technology::Gprs)
        );
        t.record_sighting(info(1), Technology::Bluetooth, now);
        assert_eq!(
            t.get(DeviceId::new(1)).unwrap().preferred_technology(),
            Some(Technology::Bluetooth)
        );
    }

    #[test]
    fn next_expiry_is_earliest_deadline() {
        let mut t = NeighborTable::new();
        let ttl = Duration::from_secs(10);
        assert_eq!(t.next_expiry(ttl), None);
        t.record_sighting(info(1), Technology::Bluetooth, SimTime::from_secs(5));
        t.record_sighting(info(2), Technology::Bluetooth, SimTime::from_secs(3));
        assert_eq!(t.next_expiry(ttl), Some(SimTime::from_secs(13)));
    }

    #[test]
    fn services_cache() {
        let mut t = NeighborTable::new();
        let now = SimTime::from_secs(1);
        t.record_sighting(info(1), Technology::Bluetooth, now);
        t.record_services(
            DeviceId::new(1),
            vec![ServiceInfo::new("PeerHoodCommunity")],
            now,
        );
        let entry = t.get(DeviceId::new(1)).unwrap();
        let (_, services) = entry.services.as_ref().unwrap();
        assert_eq!(services[0].name(), "PeerHoodCommunity");
        // Unknown device: silently ignored.
        t.record_services(DeviceId::new(9), vec![], now);
        assert!(!t.contains(DeviceId::new(9)));
    }

    #[test]
    fn remove_returns_entry() {
        let mut t = NeighborTable::new();
        t.record_sighting(info(1), Technology::Bluetooth, SimTime::ZERO);
        assert!(t.remove(DeviceId::new(1)).is_some());
        assert!(t.remove(DeviceId::new(1)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn freshest_sighting_across_technologies() {
        let mut t = NeighborTable::new();
        t.record_sighting(info(1), Technology::Bluetooth, SimTime::from_secs(1));
        t.record_sighting(info(1), Technology::Wlan, SimTime::from_secs(9));
        assert_eq!(
            t.get(DeviceId::new(1)).unwrap().freshest_sighting(),
            Some(SimTime::from_secs(9))
        );
    }
}
