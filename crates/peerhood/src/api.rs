//! The application-facing PeerHood API surface.
//!
//! The thesis's PeerHood Library offers applications a local socket interface
//! to the daemon. In this reimplementation the same boundary is a pair of
//! message enums: applications issue [`AppRequest`]s and receive
//! [`AppEvent`]s. The typed [`crate::library::Library`] facade builds the
//! requests; drivers shuttle them to the daemon.

use codec::Bytes;

use crate::error::PeerHoodError;
use crate::gossip::GossipConfig;
use crate::service::ServiceInfo;
use crate::types::{CloseReason, ConnId, DeviceId, DeviceInfo};
use netsim::Technology;

/// A request from an application to its local PeerHood daemon.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AppRequest {
    /// Register a local service so remote peers can discover and connect to
    /// it (Table 3: *Service Sharing*).
    RegisterService(ServiceInfo),
    /// Remove a previously registered local service.
    UnregisterService(String),
    /// Ask for the current neighborhood device list (Table 3: *Device
    /// Discovery*). Answered with [`AppEvent::DeviceList`].
    GetDeviceList,
    /// Ask for the services registered on a remote device (Table 3:
    /// *Service Discovery*). Answered with [`AppEvent::ServiceList`], from
    /// cache when fresh or after an on-demand query otherwise.
    GetServiceList {
        /// The device whose services are wanted.
        device: DeviceId,
    },
    /// Connect to a named service on a remote device (Table 3: *Connection
    /// Establishment*). Answered with [`AppEvent::Connected`] or
    /// [`AppEvent::ConnectFailed`].
    Connect {
        /// Target device.
        device: DeviceId,
        /// Service name on the target device.
        service: String,
    },
    /// Send application data over an established connection (Table 3:
    /// *Data Transmission*).
    Send {
        /// The connection to send on.
        conn: ConnId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Close an established connection.
    Close {
        /// The connection to close.
        conn: ConnId,
    },
    /// Begin active monitoring of a device (Table 3: *Active Monitoring*):
    /// the application is alerted when it disappears or reappears.
    Monitor {
        /// The device to watch.
        device: DeviceId,
    },
    /// Stop monitoring a device.
    Unmonitor {
        /// The device to stop watching.
        device: DeviceId,
    },
}

/// An event delivered from the daemon to the application.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AppEvent {
    /// Response to [`AppRequest::GetDeviceList`].
    DeviceList(Vec<DeviceInfo>),
    /// Response to [`AppRequest::GetServiceList`].
    ServiceList {
        /// The device that was queried.
        device: DeviceId,
        /// Its registered services (empty if it offers none or vanished
        /// before answering).
        services: Vec<ServiceInfo>,
        /// `true` when the list was served from an *expired* cache entry
        /// because the refresh query timed out (recovery policy's
        /// `serve_stale`); fresh answers and cache hits within TTL are
        /// `false`.
        stale: bool,
    },
    /// A service registration or removal succeeded/failed.
    ServiceRegistration {
        /// The service name.
        name: String,
        /// `Ok` on success.
        result: Result<(), PeerHoodError>,
    },
    /// An outgoing [`AppRequest::Connect`] succeeded.
    Connected {
        /// The new connection.
        conn: ConnId,
        /// The remote device.
        device: DeviceId,
        /// The remote service name.
        service: String,
        /// The technology the connection runs over.
        technology: Technology,
    },
    /// An outgoing [`AppRequest::Connect`] failed on every candidate
    /// technology.
    ConnectFailed {
        /// The device we tried to reach.
        device: DeviceId,
        /// The service we tried to reach.
        service: String,
        /// The error.
        error: PeerHoodError,
    },
    /// A remote peer connected to one of our registered services.
    Incoming {
        /// The new connection.
        conn: ConnId,
        /// The connecting device.
        device: DeviceId,
        /// The local service it connected to.
        service: String,
        /// The technology the connection runs over.
        technology: Technology,
    },
    /// Data arrived on a connection.
    Data {
        /// The connection.
        conn: ConnId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// A connection ended.
    Closed {
        /// The connection.
        conn: ConnId,
        /// Why it ended.
        reason: CloseReason,
    },
    /// A connection survived a link loss by migrating to another technology
    /// (Table 3: *Seamless Connectivity*).
    Handover {
        /// The connection that migrated.
        conn: ConnId,
        /// The technology it was on.
        from: Technology,
        /// The technology it is on now.
        to: Technology,
    },
    /// A new device entered the neighborhood.
    DeviceAppeared(DeviceInfo),
    /// A known device left the neighborhood (all technologies stale).
    DeviceDisappeared(DeviceInfo),
    /// A monitored device changed visibility (Table 3: *Active
    /// Monitoring*). Raised in addition to the `DeviceAppeared` /
    /// `DeviceDisappeared` broadcasts.
    MonitorAlert {
        /// The monitored device.
        device: DeviceInfo,
        /// `true` when it (re)appeared, `false` when it vanished.
        appeared: bool,
    },
    /// The daemon was configured with [`DaemonConfig::with_gossip`]
    /// (`crate::config::DaemonConfig::with_gossip`); emitted exactly once,
    /// on the daemon's first input, so the application can instantiate its
    /// [`Gossip`](crate::gossip::Gossip) state machine with the same knobs
    /// in sim, crowd, and live serving.
    GossipEnabled {
        /// The tuning the daemon was configured with.
        config: GossipConfig,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_cloneable_and_comparable() {
        let r = AppRequest::Connect {
            device: DeviceId::new(1),
            service: "PeerHoodCommunity".into(),
        };
        assert_eq!(r.clone(), r);
    }

    #[test]
    fn events_carry_payloads() {
        let e = AppEvent::Data {
            conn: ConnId::new(1),
            payload: Bytes::from_static(b"hello"),
        };
        match e {
            AppEvent::Data { payload, .. } => assert_eq!(&payload[..], b"hello"),
            _ => unreachable!(),
        }
    }
}
