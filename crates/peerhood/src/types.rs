//! Core identifier and device types shared across the middleware.

use codec::{DecodeError, Wire};
use std::fmt;
use std::sync::Arc;

use netsim::{TechSet, Technology};

/// Globally unique identifier of a personal trusted device (PTD).
///
/// In the simulator this is derived from the world node index; in the live
/// TCP driver it is assigned from configuration. It plays the role of the
/// Bluetooth device address / IP identity that PeerHood's plugins expose.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(u64);

impl DeviceId {
    /// Creates a device identifier from a raw value.
    pub const fn new(raw: u64) -> Self {
        DeviceId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeviceId({})", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Descriptive information about a device, as learned through discovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceInfo {
    /// Unique identifier.
    pub id: DeviceId,
    /// Human-readable device name (the PTD owner's device name). Stored
    /// interned (`Arc<str>`): device descriptions are cloned into neighbor
    /// tables, discovery events and daemon configs by the million at crowd
    /// scale, and sharing one allocation per device keeps those clones
    /// heap-free.
    pub name: Arc<str>,
    /// Technologies the device is equipped with.
    pub technologies: TechSet,
}

impl DeviceInfo {
    /// Creates device info.
    pub fn new(
        id: DeviceId,
        name: impl Into<Arc<str>>,
        technologies: impl IntoIterator<Item = Technology>,
    ) -> Self {
        DeviceInfo {
            id,
            name: name.into(),
            technologies: technologies.into_iter().collect(),
        }
    }
}

/// Application-facing identifier of one PeerHood connection endpoint.
///
/// Allocated by the local daemon; the same underlying link has a different
/// `ConnId` at each end.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(u64);

impl ConnId {
    /// Creates a connection identifier from a raw value.
    pub const fn new(raw: u64) -> Self {
        ConnId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConnId({})", self.0)
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// Driver-scoped identifier of a transport link between two daemons.
///
/// Allocated by whichever driver hosts the daemons (the simulator cluster or
/// the live TCP runtime); opaque to the daemon, which merely echoes it in
/// plugin commands.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u64);

impl LinkId {
    /// Creates a link identifier from a raw value.
    pub const fn new(raw: u64) -> Self {
        LinkId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LinkId({})", self.0)
    }
}

/// Identifier of one outgoing connection attempt, used to correlate
/// [`PluginCommand::OpenConnection`](crate::plugin::PluginCommand) with its
/// [`PluginEvent::ConnectResult`](crate::plugin::PluginEvent).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttemptId(u64);

impl AttemptId {
    /// Creates an attempt identifier from a raw value.
    pub const fn new(raw: u64) -> Self {
        AttemptId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for AttemptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttemptId({})", self.0)
    }
}

/// A token identifying a logical connection across a seamless handover.
///
/// Minted by the connection initiator as `(initiator device, initiator conn
/// id)`; presented again when re-establishing the connection over an
/// alternative technology so the responder can splice the new link into the
/// existing logical connection instead of announcing a fresh one.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResumeToken {
    /// The device that originally initiated the connection.
    pub initiator: DeviceId,
    /// The initiator-side connection id.
    pub conn: ConnId,
}

macro_rules! impl_wire_id {
    ($($ty:ident),*) => {$(
        impl Wire for $ty {
            fn encode_to(&self, out: &mut Vec<u8>) {
                self.0.encode_to(out);
            }

            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                u64::decode(input).map($ty)
            }
        }
    )*};
}

impl_wire_id!(DeviceId, ConnId, LinkId, AttemptId);

impl Wire for ResumeToken {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.initiator.encode_to(out);
        self.conn.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ResumeToken {
            initiator: DeviceId::decode(input)?,
            conn: ConnId::decode(input)?,
        })
    }
}

impl Wire for DeviceInfo {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.id.encode_to(out);
        // Same wire format as a `String` field: length-prefixed UTF-8.
        (self.name.len() as u32).encode_to(out);
        out.extend_from_slice(self.name.as_bytes());
        (self.technologies.len() as u32).encode_to(out);
        for t in self.technologies.iter() {
            t.encode_to(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let id = DeviceId::decode(input)?;
        let name = String::decode(input)?.into();
        let n = codec::read_len(input)?;
        let mut technologies = TechSet::EMPTY;
        for _ in 0..n {
            technologies.insert(netsim::Technology::decode(input)?);
        }
        Ok(DeviceInfo {
            id,
            name,
            technologies,
        })
    }
}

/// Why a connection ended.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CloseReason {
    /// The local application closed it.
    LocalClose,
    /// The remote peer closed it.
    PeerClose,
    /// The radio link was lost and could not be recovered.
    LinkLost,
    /// The link was lost and seamless handover to another technology also
    /// failed.
    HandoverFailed,
}

impl fmt::Display for CloseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CloseReason::LocalClose => "closed locally",
            CloseReason::PeerClose => "closed by peer",
            CloseReason::LinkLost => "link lost",
            CloseReason::HandoverFailed => "handover failed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw() {
        assert_eq!(DeviceId::new(5).raw(), 5);
        assert_eq!(ConnId::new(6).raw(), 6);
        assert_eq!(LinkId::new(7).raw(), 7);
        assert_eq!(AttemptId::new(8).raw(), 8);
    }

    #[test]
    fn device_info_normalizes_technologies() {
        let info = DeviceInfo::new(
            DeviceId::new(1),
            "phone",
            [Technology::Wlan, Technology::Bluetooth, Technology::Wlan],
        );
        assert_eq!(
            info.technologies.iter().collect::<Vec<_>>(),
            vec![Technology::Bluetooth, Technology::Wlan]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(DeviceId::new(2).to_string(), "dev2");
        assert_eq!(ConnId::new(3).to_string(), "conn3");
        assert_eq!(CloseReason::LinkLost.to_string(), "link lost");
    }

    #[test]
    fn device_id_wire_round_trip() {
        let id = DeviceId::new(42);
        assert_eq!(DeviceId::decode_exact(&id.encode()).unwrap(), id);
    }

    #[test]
    fn device_info_wire_round_trip() {
        let info = DeviceInfo::new(
            DeviceId::new(9),
            "phone",
            [Technology::Bluetooth, Technology::Gprs],
        );
        assert_eq!(DeviceInfo::decode_exact(&info.encode()).unwrap(), info);
    }

    #[test]
    fn resume_token_wire_round_trip() {
        let tok = ResumeToken {
            initiator: DeviceId::new(1),
            conn: ConnId::new(2),
        };
        assert_eq!(ResumeToken::decode_exact(&tok.encode()).unwrap(), tok);
    }
}
