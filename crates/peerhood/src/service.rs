//! Service descriptions and the local service registry.
//!
//! PeerHood-enabled applications register named services with the PeerHood
//! Daemon (Figure 8 of the thesis shows the reference server registering the
//! `"PeerHoodCommunity"` service); the daemon answers remote service-discovery
//! queries from this registry and validates incoming connections against it.

use codec::{DecodeError, Wire};
use std::collections::BTreeMap;
use std::fmt;

use crate::error::PeerHoodError;

/// A service offered by a device, with free-form descriptive attributes.
///
/// # Example
///
/// ```rust
/// use ph_peerhood::service::ServiceInfo;
///
/// let svc = ServiceInfo::new("PeerHoodCommunity")
///     .with_attribute("version", "0.2")
///     .with_attribute("kind", "social");
/// assert_eq!(svc.attribute("version"), Some("0.2"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceInfo {
    name: String,
    attributes: BTreeMap<String, String>,
}

impl ServiceInfo {
    /// Creates a service description with no attributes.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceInfo {
            name: name.into(),
            attributes: BTreeMap::new(),
        }
    }

    /// Adds one attribute (builder style).
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// The service name applications connect to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up one attribute.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes.get(key).map(String::as_str)
    }

    /// All attributes in key order.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attributes
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl Wire for ServiceInfo {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.name.encode_to(out);
        self.attributes.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ServiceInfo {
            name: String::decode(input)?,
            attributes: BTreeMap::decode(input)?,
        })
    }
}

impl fmt::Display for ServiceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.attributes.is_empty() {
            let attrs: Vec<String> = self
                .attributes
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            write!(f, " [{}]", attrs.join(", "))?;
        }
        Ok(())
    }
}

/// The daemon's registry of locally offered services.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceRegistry {
    services: BTreeMap<String, ServiceInfo>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Registers a service.
    ///
    /// # Errors
    ///
    /// Returns [`PeerHoodError::ServiceAlreadyRegistered`] if a service with
    /// the same name exists.
    pub fn register(&mut self, service: ServiceInfo) -> Result<(), PeerHoodError> {
        if self.services.contains_key(service.name()) {
            return Err(PeerHoodError::ServiceAlreadyRegistered(
                service.name().to_owned(),
            ));
        }
        self.services.insert(service.name().to_owned(), service);
        Ok(())
    }

    /// Removes a service by name.
    ///
    /// # Errors
    ///
    /// Returns [`PeerHoodError::ServiceNotRegistered`] if absent.
    pub fn unregister(&mut self, name: &str) -> Result<ServiceInfo, PeerHoodError> {
        self.services
            .remove(name)
            .ok_or_else(|| PeerHoodError::ServiceNotRegistered(name.to_owned()))
    }

    /// Looks up a service by name.
    pub fn get(&self, name: &str) -> Option<&ServiceInfo> {
        self.services.get(name)
    }

    /// Whether a service with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    /// All registered services in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceInfo> {
        self.services.values()
    }

    /// Snapshot of all registered services.
    pub fn to_vec(&self) -> Vec<ServiceInfo> {
        self.services.values().cloned().collect()
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = ServiceRegistry::new();
        reg.register(ServiceInfo::new("PeerHoodCommunity")).unwrap();
        assert!(reg.contains("PeerHoodCommunity"));
        assert_eq!(
            reg.get("PeerHoodCommunity").unwrap().name(),
            "PeerHoodCommunity"
        );
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut reg = ServiceRegistry::new();
        reg.register(ServiceInfo::new("svc")).unwrap();
        assert_eq!(
            reg.register(ServiceInfo::new("svc")),
            Err(PeerHoodError::ServiceAlreadyRegistered("svc".into()))
        );
    }

    #[test]
    fn unregister_round_trip() {
        let mut reg = ServiceRegistry::new();
        reg.register(ServiceInfo::new("svc")).unwrap();
        let svc = reg.unregister("svc").unwrap();
        assert_eq!(svc.name(), "svc");
        assert!(reg.is_empty());
        assert_eq!(
            reg.unregister("svc"),
            Err(PeerHoodError::ServiceNotRegistered("svc".into()))
        );
    }

    #[test]
    fn attributes_accessible_and_sorted() {
        let svc = ServiceInfo::new("s")
            .with_attribute("b", "2")
            .with_attribute("a", "1");
        let attrs: Vec<(&str, &str)> = svc.attributes().collect();
        assert_eq!(attrs, vec![("a", "1"), ("b", "2")]);
        assert_eq!(svc.attribute("missing"), None);
    }

    #[test]
    fn display_includes_attributes() {
        let svc = ServiceInfo::new("s").with_attribute("k", "v");
        assert_eq!(svc.to_string(), "s [k=v]");
        assert_eq!(ServiceInfo::new("bare").to_string(), "bare");
    }

    #[test]
    fn service_info_wire_round_trip() {
        use codec::Wire as _;
        let svc = ServiceInfo::new("PeerHoodCommunity")
            .with_attribute("version", "0.2")
            .with_attribute("kind", "social");
        assert_eq!(ServiceInfo::decode_exact(&svc.encode()).unwrap(), svc);
    }

    #[test]
    fn iter_in_name_order() {
        let mut reg = ServiceRegistry::new();
        reg.register(ServiceInfo::new("zeta")).unwrap();
        reg.register(ServiceInfo::new("alpha")).unwrap();
        let names: Vec<&str> = reg.iter().map(ServiceInfo::name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
