//! The plugin boundary between the daemon and a transport driver.
//!
//! The thesis's PeerHood plugins (BTPlugin, WLANPlugin, GPRSPlugin) wrap the
//! technology-specific discovery and transport mechanics behind a uniform
//! interface loaded by the daemon. Here that interface is a pair of message
//! enums: the daemon emits [`PluginCommand`]s and consumes [`PluginEvent`]s.
//! Which concrete transport executes them is the driver's business — the
//! deterministic simulator ([`crate::sim`]) or the live TCP runtime
//! ([`crate::live`]).

use codec::Bytes;

use crate::service::ServiceInfo;
use crate::types::{AttemptId, DeviceId, DeviceInfo, LinkId, ResumeToken};
use netsim::Technology;

/// A command from the daemon to the transport driver.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PluginCommand {
    /// Begin one discovery round over `technology` (a Bluetooth inquiry, a
    /// WLAN broadcast scan, a GPRS proxy lookup). The driver answers with
    /// zero or more [`PluginEvent::InquiryResponse`]s followed by one
    /// [`PluginEvent::InquiryComplete`].
    StartInquiry {
        /// The technology to scan on.
        technology: Technology,
    },
    /// Ask a remote device for its registered services (SDP-style). The
    /// remote daemon receives [`PluginEvent::ServiceQuery`] and answers via
    /// [`PluginCommand::ServiceQueryReply`]; the driver routes the reply
    /// back as [`PluginEvent::ServiceReply`].
    QueryServices {
        /// Target device.
        device: DeviceId,
        /// Technology to carry the query over.
        technology: Technology,
    },
    /// Reply to a [`PluginEvent::ServiceQuery`] from `device`.
    ServiceQueryReply {
        /// The device that asked.
        device: DeviceId,
        /// Our registered services.
        services: Vec<ServiceInfo>,
    },
    /// Open a transport connection to `service` on `device` over
    /// `technology`. Answered with [`PluginEvent::ConnectResult`] carrying
    /// the same `attempt`.
    OpenConnection {
        /// Correlation id for the result event.
        attempt: AttemptId,
        /// Target device.
        device: DeviceId,
        /// Target service name.
        service: String,
        /// Technology to connect over.
        technology: Technology,
        /// When resuming a logical connection after link loss (seamless
        /// connectivity), the token identifying it at the responder.
        resume: Option<ResumeToken>,
    },
    /// Accept an incoming connection announced by
    /// [`PluginEvent::IncomingConnection`].
    AcceptConnection {
        /// The link being accepted.
        link: LinkId,
    },
    /// Reject an incoming connection (e.g. unknown service).
    RejectConnection {
        /// The link being rejected.
        link: LinkId,
        /// Human-readable reason, reported to the initiator.
        reason: String,
    },
    /// Transmit a frame on an open link.
    SendFrame {
        /// The link to send on.
        link: LinkId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Close an open link.
    CloseLink {
        /// The link to close.
        link: LinkId,
    },
}

/// An event from the transport driver to the daemon.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PluginEvent {
    /// A device answered the current discovery round.
    InquiryResponse {
        /// Technology the response arrived on.
        technology: Technology,
        /// The responding device.
        device: DeviceInfo,
    },
    /// The discovery round over `technology` finished.
    InquiryComplete {
        /// The technology whose round finished.
        technology: Technology,
    },
    /// A remote device asks for our registered services.
    ServiceQuery {
        /// The asking device.
        device: DeviceId,
    },
    /// A remote device answered our service query.
    ServiceReply {
        /// The answering device.
        device: DeviceId,
        /// Its registered services.
        services: Vec<ServiceInfo>,
    },
    /// Outcome of an [`PluginCommand::OpenConnection`].
    ConnectResult {
        /// The attempt this result belongs to.
        attempt: AttemptId,
        /// The established link, or a failure reason.
        result: Result<LinkId, String>,
    },
    /// A remote device opened a connection to one of our services. The
    /// daemon must answer with [`PluginCommand::AcceptConnection`] or
    /// [`PluginCommand::RejectConnection`].
    IncomingConnection {
        /// The new link (pending accept/reject).
        link: LinkId,
        /// The initiating device.
        device: DeviceInfo,
        /// The local service it targets.
        service: String,
        /// Technology the link runs over.
        technology: Technology,
        /// Resume token when this is a seamless-connectivity
        /// re-establishment of an existing logical connection.
        resume: Option<ResumeToken>,
    },
    /// A frame arrived on an open link.
    Frame {
        /// The link it arrived on.
        link: LinkId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// The remote peer closed the link in an orderly way.
    PeerClosed {
        /// The closed link.
        link: LinkId,
    },
    /// The link was lost (out of range, transport failure).
    LinkDown {
        /// The lost link.
        link: LinkId,
    },
    /// The link still works but its radio quality is deteriorating (the
    /// peer is near the edge of range). Table 3: PeerHood reacts to "the
    /// breaking or *weakening* of the established connection" — this is
    /// the weakening signal, enabling make-before-break handover.
    LinkDegraded {
        /// The weakening link.
        link: LinkId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_compare() {
        let a = PluginCommand::StartInquiry {
            technology: Technology::Bluetooth,
        };
        assert_eq!(a.clone(), a);
    }

    #[test]
    fn connect_result_carries_error_text() {
        let e = PluginEvent::ConnectResult {
            attempt: AttemptId::new(1),
            result: Err("service not found".into()),
        };
        match e {
            PluginEvent::ConnectResult { result, .. } => {
                assert_eq!(result.unwrap_err(), "service not found");
            }
            _ => unreachable!(),
        }
    }
}
