//! Live driver: the same daemon state machine over real loopback TCP.
//!
//! The simulator ([`crate::sim`]) executes [`Daemon`](crate::daemon::Daemon)
//! inside a virtual world; this module executes the *identical* state
//! machine against real sockets, proving the sans-IO design is not
//! simulator-bound. Data connections and frames travel over genuine
//! `TcpStream`s on 127.0.0.1; discovery and service queries are routed
//! in-process (modelling the WLAN plugin's UDP broadcast, which loopback TCP
//! cannot express).
//!
//! See `examples/live_tcp_demo.rs` for an end-to-end run with two devices
//! exchanging PeerHood Community traffic over the loopback interface.

mod net;

pub use net::LiveNet;
