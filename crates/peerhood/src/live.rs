//! Live drivers: the same daemon state machine over real TCP sockets.
//!
//! The simulator ([`crate::sim`]) executes [`Daemon`](crate::daemon::Daemon)
//! inside a virtual world; this module executes the *identical* state
//! machine against real sockets, proving the sans-IO design is not
//! simulator-bound. Two drivers share one [`LiveConfig`] and one wire
//! protocol ([`wire`]):
//!
//! * [`LiveNet`] — an in-process neighborhood of full peers on loopback
//!   TCP, for demos and end-to-end tests (discovery is routed in-process).
//! * [`LiveServer`] — the production serving reactor: sharded non-blocking
//!   accept loops, bounded per-connection write queues with explicit
//!   backpressure shedding, idle timeouts, and optional store persistence
//!   via [`LivePersist`]. Built for thousands of concurrent thin clients.
//!
//! See `examples/live_tcp_demo.rs` for a two-device `LiveNet` run and
//! `repro live` (the harness load generator) for driving a `LiveServer`.

mod config;
mod net;
mod reactor;
pub mod wire;

pub use config::LiveConfig;
pub use net::LiveNet;
pub use reactor::{LivePersist, LiveServer, LiveStats};
