//! The application trait that PeerHood-enabled applications implement.
//!
//! An [`Application`] is a callback-driven state machine living on one
//! device. Drivers hand it daemon events together with an [`AppCtx`], through
//! which it reaches its PeerHood [`Library`], schedules private timers and
//! records message-sequence trace events.

use std::time::Duration;

use netsim::{ActorId, LabelId, SimTime, Trace};

use crate::api::AppEvent;
use crate::library::Library;

/// An actor reference inside a [`PendingRecord`]: an interned handle when the
/// frozen pool already knew the string at buffering time, the owned string
/// otherwise (resolved by interning at replay).
#[derive(Clone, Debug)]
pub enum PendingActor {
    /// Handle valid against the trace the record was buffered for.
    Id(ActorId),
    /// String unknown to the frozen pool; interned at replay.
    Raw(String),
}

/// A label reference inside a [`PendingRecord`] (see [`PendingActor`]).
#[derive(Clone, Debug)]
pub enum PendingLabel {
    /// Handle valid against the trace the record was buffered for.
    Id(LabelId),
    /// String unknown to the frozen pool; interned at replay.
    Raw(String),
}

/// One trace record buffered by a parallel worker, to be replayed into the
/// live [`Trace`] later in canonical (serial) order.
///
/// Replaying buffered records in the exact order a serial run would have
/// called [`Trace::record`] reproduces the serial pool intern order, ring
/// eviction and counters bit-for-bit: `Id` variants resolve to the same
/// handles a serial run reused, and `Raw` strings are interned at the same
/// canonical position a serial run would have interned them (interning is
/// idempotent, so repeats within a batch collapse to the first occurrence).
#[derive(Clone, Debug)]
pub struct PendingRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Originating actor (always pre-interned: the node's own actor handle).
    pub from: ActorId,
    /// Receiving actor.
    pub to: PendingActor,
    /// Message label.
    pub label: PendingLabel,
}

impl PendingRecord {
    /// Appends this record to `trace`, interning any `Raw` strings.
    pub fn replay(self, trace: &mut Trace) {
        let to = match self.to {
            PendingActor::Id(id) => id,
            PendingActor::Raw(s) => trace.intern_actor(&s),
        };
        let label = match self.label {
            PendingLabel::Id(id) => id,
            PendingLabel::Raw(s) => trace.intern_label(&s),
        };
        trace.record_ids(self.at, self.from, to, label);
    }
}

/// Where an [`AppCtx`]'s trace calls go.
///
/// `Live` writes straight into the run's [`Trace`] (the serial path).
/// `Buffer` is the concurrent-worker path: the trace is borrowed read-only
/// (shared with other workers), so records are buffered as
/// [`PendingRecord`]s — resolving actor/label strings against the frozen
/// pool where possible — and replayed serially at commit time.
pub enum TraceSink<'a> {
    /// Discard all records.
    None,
    /// Record directly into the live trace.
    Live(&'a mut Trace),
    /// Buffer records against a frozen trace for canonical-order replay.
    Buffer {
        /// The run's trace, frozen for the duration of the parallel epoch.
        trace: &'a Trace,
        /// The owning node's pre-interned actor handle.
        actor_id: ActorId,
        /// Destination buffer, drained by the commit phase.
        out: &'a mut Vec<PendingRecord>,
    },
}

/// Execution context passed into every [`Application`] callback.
pub struct AppCtx<'a> {
    now: SimTime,
    actor: &'a str,
    lib: &'a mut Library,
    timers: &'a mut Vec<(SimTime, u64)>,
    sink: TraceSink<'a>,
}

impl<'a> AppCtx<'a> {
    /// Builds a context (called by drivers).
    pub fn new(
        now: SimTime,
        actor: &'a str,
        lib: &'a mut Library,
        timers: &'a mut Vec<(SimTime, u64)>,
        trace: Option<&'a mut Trace>,
    ) -> Self {
        AppCtx {
            now,
            actor,
            lib,
            timers,
            sink: match trace {
                Some(t) => TraceSink::Live(t),
                None => TraceSink::None,
            },
        }
    }

    /// Builds a context with an explicit [`TraceSink`] (the parallel epoch
    /// engine uses this with [`TraceSink::Buffer`]).
    pub fn with_sink(
        now: SimTime,
        actor: &'a str,
        lib: &'a mut Library,
        timers: &'a mut Vec<(SimTime, u64)>,
        sink: TraceSink<'a>,
    ) -> Self {
        AppCtx {
            now,
            actor,
            lib,
            timers,
            sink,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The local device's name (used as the MSC actor label).
    pub fn actor(&self) -> &str {
        self.actor
    }

    /// The PeerHood Library: enqueue daemon requests here.
    pub fn peerhood(&mut self) -> &mut Library {
        self.lib
    }

    /// Schedules a private timer `after` from now; the application's
    /// [`Application::on_timer`] fires with `token`.
    pub fn set_timer(&mut self, after: Duration, token: u64) {
        self.timers.push((self.now + after, token));
    }

    /// Records a protocol message from this application to `to` in the run's
    /// message-sequence trace (no-op when the driver attached none).
    pub fn trace(&mut self, to: &str, label: &str) {
        match &mut self.sink {
            TraceSink::None => {}
            TraceSink::Live(trace) => trace.record(self.now, self.actor, to, label),
            TraceSink::Buffer {
                trace,
                actor_id,
                out,
            } => out.push(PendingRecord {
                at: self.now,
                from: *actor_id,
                to: match trace.lookup_actor(to) {
                    Some(id) => PendingActor::Id(id),
                    None => PendingActor::Raw(to.to_owned()),
                },
                label: match trace.lookup_label(label) {
                    Some(id) => PendingLabel::Id(id),
                    None => PendingLabel::Raw(label.to_owned()),
                },
            }),
        }
    }

    /// Records a local action (self-directed trace event), e.g. the MSC
    /// figures' "display list" steps.
    pub fn trace_local(&mut self, label: &str) {
        match &mut self.sink {
            TraceSink::None => {}
            TraceSink::Live(trace) => trace.record(self.now, self.actor, self.actor, label),
            TraceSink::Buffer {
                trace,
                actor_id,
                out,
            } => out.push(PendingRecord {
                at: self.now,
                from: *actor_id,
                to: PendingActor::Id(*actor_id),
                label: match trace.lookup_label(label) {
                    Some(id) => PendingLabel::Id(id),
                    None => PendingLabel::Raw(label.to_owned()),
                },
            }),
        }
    }
}

/// A PeerHood-enabled application.
///
/// Implementations must be deterministic functions of their inputs: any
/// randomness should come from state seeded at construction, so simulation
/// runs stay reproducible.
pub trait Application {
    /// Called once when the device boots, before any event. Register
    /// services and kick off initial requests here.
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        let _ = ctx;
    }

    /// Called for every daemon event addressed to this application.
    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>);

    /// Called when a timer set via [`AppCtx::set_timer`] fires.
    fn on_timer(&mut self, token: u64, ctx: &mut AppCtx<'_>) {
        let _ = (token, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_exposes_time_actor_and_library() {
        let mut lib = Library::new();
        let mut timers = Vec::new();
        let mut trace = Trace::new();
        let mut ctx = AppCtx::new(
            SimTime::from_secs(3),
            "alice",
            &mut lib,
            &mut timers,
            Some(&mut trace),
        );
        assert_eq!(ctx.now(), SimTime::from_secs(3));
        assert_eq!(ctx.actor(), "alice");
        ctx.peerhood().request_device_list();
        ctx.set_timer(Duration::from_secs(2), 9);
        ctx.trace("bob", "PING");
        ctx.trace_local("DISPLAY");
        let _ = ctx;
        assert_eq!(lib.len(), 1);
        assert_eq!(timers, vec![(SimTime::from_secs(5), 9)]);
        assert_eq!(trace.labels(), vec!["PING", "DISPLAY"]);
        assert_eq!(trace.events()[1].to, "alice");
    }

    #[test]
    fn buffered_sink_replays_identically_to_live() {
        // Serial reference: record directly.
        let mut live = Trace::new();
        live.intern_actor("alice"); // add_node interns every actor up front
        {
            let mut lib = Library::new();
            let mut timers = Vec::new();
            let mut ctx = AppCtx::new(
                SimTime::from_secs(1),
                "alice",
                &mut lib,
                &mut timers,
                Some(&mut live),
            );
            ctx.trace("bob", "PING");
            ctx.trace_local("DISPLAY");
            ctx.trace("bob", "PING"); // repeat: must reuse pool entries
        }
        // Buffered path: same calls against a frozen trace, then replay.
        let mut buffered = Trace::new();
        let alice = buffered.intern_actor("alice");
        let mut out = Vec::new();
        {
            let mut lib = Library::new();
            let mut timers = Vec::new();
            let mut ctx = AppCtx::with_sink(
                SimTime::from_secs(1),
                "alice",
                &mut lib,
                &mut timers,
                TraceSink::Buffer {
                    trace: &buffered,
                    actor_id: alice,
                    out: &mut out,
                },
            );
            ctx.trace("bob", "PING");
            ctx.trace_local("DISPLAY");
            ctx.trace("bob", "PING");
        }
        assert_eq!(out.len(), 3);
        // "bob"/"PING" were unknown to the frozen pool → Raw both times;
        // replay interns them once at the canonical first occurrence.
        assert!(matches!(out[0].to, PendingActor::Raw(_)));
        assert!(matches!(out[1].to, PendingActor::Id(id) if id == alice));
        for r in out {
            r.replay(&mut buffered);
        }
        assert_eq!(live, buffered);
        assert_eq!(live.digest(), buffered.digest());
        assert_eq!(live.stats().messages, buffered.stats().messages);
        assert_eq!(live.stats().local_events, buffered.stats().local_events);
    }

    #[test]
    fn trace_is_noop_without_sink() {
        let mut lib = Library::new();
        let mut timers = Vec::new();
        let mut ctx = AppCtx::new(SimTime::ZERO, "a", &mut lib, &mut timers, None);
        ctx.trace("b", "X"); // must not panic
    }

    #[test]
    fn default_trait_methods_are_callable() {
        struct Nop;
        impl Application for Nop {
            fn on_event(&mut self, _event: AppEvent, _ctx: &mut AppCtx<'_>) {}
        }
        let mut app = Nop;
        let mut lib = Library::new();
        let mut timers = Vec::new();
        let mut ctx = AppCtx::new(SimTime::ZERO, "a", &mut lib, &mut timers, None);
        app.on_start(&mut ctx);
        app.on_timer(1, &mut ctx);
    }
}
