//! The application trait that PeerHood-enabled applications implement.
//!
//! An [`Application`] is a callback-driven state machine living on one
//! device. Drivers hand it daemon events together with an [`AppCtx`], through
//! which it reaches its PeerHood [`Library`], schedules private timers and
//! records message-sequence trace events.

use std::time::Duration;

use netsim::{SimTime, Trace};

use crate::api::AppEvent;
use crate::library::Library;

/// Execution context passed into every [`Application`] callback.
pub struct AppCtx<'a> {
    now: SimTime,
    actor: &'a str,
    lib: &'a mut Library,
    timers: &'a mut Vec<(SimTime, u64)>,
    trace: Option<&'a mut Trace>,
}

impl<'a> AppCtx<'a> {
    /// Builds a context (called by drivers).
    pub fn new(
        now: SimTime,
        actor: &'a str,
        lib: &'a mut Library,
        timers: &'a mut Vec<(SimTime, u64)>,
        trace: Option<&'a mut Trace>,
    ) -> Self {
        AppCtx {
            now,
            actor,
            lib,
            timers,
            trace,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The local device's name (used as the MSC actor label).
    pub fn actor(&self) -> &str {
        self.actor
    }

    /// The PeerHood Library: enqueue daemon requests here.
    pub fn peerhood(&mut self) -> &mut Library {
        self.lib
    }

    /// Schedules a private timer `after` from now; the application's
    /// [`Application::on_timer`] fires with `token`.
    pub fn set_timer(&mut self, after: Duration, token: u64) {
        self.timers.push((self.now + after, token));
    }

    /// Records a protocol message from this application to `to` in the run's
    /// message-sequence trace (no-op when the driver attached none).
    pub fn trace(&mut self, to: &str, label: &str) {
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.record(self.now, self.actor, to, label);
        }
    }

    /// Records a local action (self-directed trace event), e.g. the MSC
    /// figures' "display list" steps.
    pub fn trace_local(&mut self, label: &str) {
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.record(self.now, self.actor, self.actor, label);
        }
    }
}

/// A PeerHood-enabled application.
///
/// Implementations must be deterministic functions of their inputs: any
/// randomness should come from state seeded at construction, so simulation
/// runs stay reproducible.
pub trait Application {
    /// Called once when the device boots, before any event. Register
    /// services and kick off initial requests here.
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        let _ = ctx;
    }

    /// Called for every daemon event addressed to this application.
    fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>);

    /// Called when a timer set via [`AppCtx::set_timer`] fires.
    fn on_timer(&mut self, token: u64, ctx: &mut AppCtx<'_>) {
        let _ = (token, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_exposes_time_actor_and_library() {
        let mut lib = Library::new();
        let mut timers = Vec::new();
        let mut trace = Trace::new();
        let mut ctx = AppCtx::new(
            SimTime::from_secs(3),
            "alice",
            &mut lib,
            &mut timers,
            Some(&mut trace),
        );
        assert_eq!(ctx.now(), SimTime::from_secs(3));
        assert_eq!(ctx.actor(), "alice");
        ctx.peerhood().request_device_list();
        ctx.set_timer(Duration::from_secs(2), 9);
        ctx.trace("bob", "PING");
        ctx.trace_local("DISPLAY");
        let _ = ctx;
        assert_eq!(lib.len(), 1);
        assert_eq!(timers, vec![(SimTime::from_secs(5), 9)]);
        assert_eq!(trace.labels(), vec!["PING", "DISPLAY"]);
        assert_eq!(trace.events()[1].to, "alice");
    }

    #[test]
    fn trace_is_noop_without_sink() {
        let mut lib = Library::new();
        let mut timers = Vec::new();
        let mut ctx = AppCtx::new(SimTime::ZERO, "a", &mut lib, &mut timers, None);
        ctx.trace("b", "X"); // must not panic
    }

    #[test]
    fn default_trait_methods_are_callable() {
        struct Nop;
        impl Application for Nop {
            fn on_event(&mut self, _event: AppEvent, _ctx: &mut AppCtx<'_>) {}
        }
        let mut app = Nop;
        let mut lib = Library::new();
        let mut timers = Vec::new();
        let mut ctx = AppCtx::new(SimTime::ZERO, "a", &mut lib, &mut timers, None);
        app.on_start(&mut ctx);
        app.on_timer(1, &mut ctx);
    }
}
