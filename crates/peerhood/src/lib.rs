//! # ph-peerhood — the PeerHood network-management middleware, reimplemented
//!
//! PeerHood ("peer-to-peer neighborhood") is the middleware substrate of the
//! thesis *Social Networking on Mobile Environment on top of PeerHood*
//! (LUT, 2008). It lets applications on personal trusted devices discover
//! nearby peers, discover and register services, establish connections over
//! Bluetooth / WLAN / GPRS through one uniform interface, transfer data,
//! actively monitor devices, and keep connections alive across technology
//! handovers.
//!
//! This crate reimplements the documented architecture:
//!
//! * [`daemon::Daemon`] — the PeerHood Daemon (PHD), a sans-IO state machine
//!   covering every row of the thesis's functionality table (Table 3);
//! * [`library::Library`] — the PeerHood Library facade applications use;
//! * the plugin boundary ([`plugin`]) — the seam where the thesis's
//!   BTPlugin / WLANPlugin / GPRSPlugin sat; here it is executed by a driver;
//! * [`sim::Cluster`] — a deterministic driver that runs many daemons and
//!   their applications inside the [`netsim`] world;
//! * [`live`] — a real-TCP loopback driver proving the state machines are
//!   not simulator-bound.
//!
//! ## Example: two devices discover each other
//!
//! ```rust
//! use ph_peerhood::sim::Cluster;
//! use ph_peerhood::app::{AppCtx, Application};
//! use ph_peerhood::api::AppEvent;
//! use netsim::world::NodeBuilder;
//! use netsim::geometry::Point2;
//! use netsim::SimTime;
//!
//! #[derive(Default)]
//! struct Watcher { seen: Vec<String> }
//! impl Application for Watcher {
//!     fn on_event(&mut self, event: AppEvent, _ctx: &mut AppCtx<'_>) {
//!         if let AppEvent::DeviceAppeared(info) = event {
//!             self.seen.push(info.name.to_string());
//!         }
//!     }
//! }
//!
//! let mut cluster = Cluster::new(42);
//! let a = cluster.add_node(NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)), Watcher::default());
//! let b = cluster.add_node(NodeBuilder::new("bob").at(Point2::new(3.0, 0.0)), Watcher::default());
//! cluster.start();
//! cluster.run_until(SimTime::from_secs(30));
//! assert_eq!(cluster.app(a).seen, vec!["bob".to_string()]);
//! assert_eq!(cluster.app(b).seen, vec!["alice".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod app;
pub mod config;
pub mod daemon;
pub mod error;
pub mod gossip;
pub mod library;
pub mod live;
pub mod neighbor;
pub mod plugin;
pub mod service;
pub mod sim;
pub mod techmap;
pub mod types;

pub use api::{AppEvent, AppRequest};
pub use app::{AppCtx, Application, PendingRecord, TraceSink};
pub use config::{DaemonConfig, RecoveryPolicy};
pub use daemon::{Daemon, DaemonInput, DaemonOutput, RecoveryStats};
pub use error::{ErrorKind, PeerHoodError};
pub use gossip::{Gossip, GossipConfig, GossipMsg, GossipStats};
pub use library::Library;
pub use service::{ServiceInfo, ServiceRegistry};
pub use types::{CloseReason, ConnId, DeviceId, DeviceInfo};
