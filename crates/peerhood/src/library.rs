//! The PeerHood Library: the typed facade applications program against.
//!
//! The thesis's PeerHood Library is "dynamically loaded into
//! PeerHood-enabled applications and ... provides the functionality interface
//! to those applications" (§4.2.2). Here it is a request builder: each method
//! enqueues one [`AppRequest`], and the driver flushes the queue to the local
//! daemon after every application callback — the moral equivalent of the
//! library's local socket to the PHD.

use codec::Bytes;

use crate::api::AppRequest;
use crate::service::ServiceInfo;
use crate::types::{ConnId, DeviceId};

/// A queue of daemon requests built by application code.
///
/// # Example
///
/// ```rust
/// use ph_peerhood::library::Library;
/// use ph_peerhood::service::ServiceInfo;
///
/// let mut lib = Library::new();
/// lib.register_service(ServiceInfo::new("PeerHoodCommunity"));
/// lib.request_device_list();
/// assert_eq!(lib.drain().len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Library {
    queue: Vec<AppRequest>,
}

impl Library {
    /// Creates an empty request queue.
    pub fn new() -> Self {
        Library::default()
    }

    /// Registers a local service with the daemon (thesis Figure 8).
    pub fn register_service(&mut self, service: ServiceInfo) {
        self.queue.push(AppRequest::RegisterService(service));
    }

    /// Removes a previously registered local service.
    pub fn unregister_service(&mut self, name: impl Into<String>) {
        self.queue.push(AppRequest::UnregisterService(name.into()));
    }

    /// Requests the current neighborhood device list; answered with
    /// [`AppEvent::DeviceList`](crate::api::AppEvent::DeviceList).
    pub fn request_device_list(&mut self) {
        self.queue.push(AppRequest::GetDeviceList);
    }

    /// Requests the services registered on a remote device; answered with
    /// [`AppEvent::ServiceList`](crate::api::AppEvent::ServiceList).
    pub fn request_service_list(&mut self, device: DeviceId) {
        self.queue.push(AppRequest::GetServiceList { device });
    }

    /// Connects to a named service on a remote device (thesis Figure 9);
    /// answered with `Connected` or `ConnectFailed`.
    pub fn connect(&mut self, device: DeviceId, service: impl Into<String>) {
        self.queue.push(AppRequest::Connect {
            device,
            service: service.into(),
        });
    }

    /// Sends data on an established connection.
    pub fn send(&mut self, conn: ConnId, payload: impl Into<Bytes>) {
        self.queue.push(AppRequest::Send {
            conn,
            payload: payload.into(),
        });
    }

    /// Closes an established connection.
    pub fn close(&mut self, conn: ConnId) {
        self.queue.push(AppRequest::Close { conn });
    }

    /// Starts active monitoring of a device.
    pub fn monitor(&mut self, device: DeviceId) {
        self.queue.push(AppRequest::Monitor { device });
    }

    /// Stops active monitoring of a device.
    pub fn unmonitor(&mut self, device: DeviceId) {
        self.queue.push(AppRequest::Unmonitor { device });
    }

    /// Takes all queued requests, leaving the queue empty. Drivers call
    /// this after every application callback.
    pub fn drain(&mut self) -> Vec<AppRequest> {
        std::mem::take(&mut self.queue)
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_enqueue_matching_requests() {
        let mut lib = Library::new();
        lib.connect(DeviceId::new(1), "svc");
        lib.send(ConnId::new(2), Bytes::from_static(b"x"));
        lib.close(ConnId::new(2));
        lib.monitor(DeviceId::new(1));
        lib.unmonitor(DeviceId::new(1));
        lib.unregister_service("svc");
        lib.request_service_list(DeviceId::new(1));
        let reqs = lib.drain();
        assert_eq!(reqs.len(), 7);
        assert!(matches!(reqs[0], AppRequest::Connect { .. }));
        assert!(matches!(reqs[1], AppRequest::Send { .. }));
        assert!(matches!(reqs[2], AppRequest::Close { .. }));
        assert!(lib.is_empty());
    }

    #[test]
    fn drain_empties_queue() {
        let mut lib = Library::new();
        lib.request_device_list();
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.drain().len(), 1);
        assert_eq!(lib.drain().len(), 0);
    }
}
