//! Epidemic membership and multi-hop dissemination (the gossip layer).
//!
//! Two cooperating state machines, both sans-IO and payload-agnostic:
//!
//! * **Membership** — bounded partial views in the HyParView style. The
//!   *active* view holds up to [`GossipConfig::active_view`] peers that are
//!   currently reachable over a radio link; the *passive* view holds up to
//!   [`GossipConfig::passive_view`] peer names learned through shuffles, kept
//!   as promotion candidates for when they come back into range. Views never
//!   contain the local node and never overlap.
//! * **Dissemination** — eager-push/lazy-pull broadcast in the Plumtree
//!   style. Payloads are pushed whole along an implicit spanning tree (the
//!   *eager* peers); everyone else receives `IHAVE` digests and repairs gaps
//!   with `GRAFT`, while duplicate pushes trigger `PRUNE` demotions that trim
//!   the tree back to spanning shape.
//!
//! The classic papers assume long-lived TCP links; here "neighbor" means a
//! live simulated radio connection, so the adaptation differs in two
//! deliberate ways (see DESIGN.md §15): promotion out of the passive view
//! happens when a named peer *physically reappears* (we cannot dial a node
//! that is out of range), and `IHAVE` digests go to every connected peer
//! rather than only lazy tree edges, which is what lets ferry nodes carry
//! payload summaries between disjoint radio bubbles.
//!
//! Nothing here performs IO: callers feed [`Gossip::neighbor_up`] /
//! [`Gossip::neighbor_down`] / [`Gossip::on_msg`] / [`Gossip::on_tick`] and
//! drain [`Gossip::take_outbox`] onto whatever transport they own. All
//! randomness comes from one dedicated [`SimRng`] stream salted with
//! [`GossipConfig::rng_salt`] and the node name, drawn in dispatch order, so
//! a run's digest is bit-identical for any `--threads N`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

use codec::{decode_seq, encode_seq, Bytes, DecodeError, Wire};
use netsim::{SimRng, SimTime};

/// Dedicated RNG stream label so gossip draws never collide with the world
/// engine's mobility/fault streams, even under the same master seed.
const GOSSIP_STREAM: u64 = 0x6f55_1b00_9055_1b00;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Derives a message id from the origin node's name and a per-origin
/// sequence number. Collision-free in practice for simulation scales.
#[must_use]
pub fn message_id(origin: &str, seq: u64) -> u64 {
    let mut h = fnv64(origin.as_bytes());
    for b in seq.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Tuning knobs for the gossip layer, in the same consuming-builder style as
/// [`DaemonConfig`](crate::DaemonConfig):
///
/// ```
/// use std::time::Duration;
/// use ph_peerhood::gossip::GossipConfig;
///
/// let cfg = GossipConfig::default()
///     .active_view(5)
///     .passive_view(30)
///     .shuffle_every(Duration::from_secs(30));
/// assert_eq!(cfg.active_limit(), 5);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipConfig {
    active_view: usize,
    passive_view: usize,
    shuffle_active: usize,
    shuffle_passive: usize,
    shuffle_every: Duration,
    tick_every: Duration,
    graft_timeout: Duration,
    cache_capacity: usize,
    rng_salt: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            active_view: 5,
            passive_view: 30,
            shuffle_active: 3,
            shuffle_passive: 4,
            shuffle_every: Duration::from_secs(30),
            tick_every: Duration::from_secs(1),
            graft_timeout: Duration::from_secs(2),
            cache_capacity: 1024,
            rng_salt: 0,
        }
    }
}

impl GossipConfig {
    /// Caps the active view (connected peers treated as overlay neighbors).
    #[must_use]
    pub fn active_view(mut self, n: usize) -> Self {
        self.active_view = n.max(1);
        self
    }

    /// Caps the passive view (names remembered for later promotion).
    #[must_use]
    pub fn passive_view(mut self, n: usize) -> Self {
        self.passive_view = n;
        self
    }

    /// How many active-view names ride along in each shuffle.
    #[must_use]
    pub fn shuffle_active(mut self, n: usize) -> Self {
        self.shuffle_active = n;
        self
    }

    /// How many passive-view names ride along in each shuffle.
    #[must_use]
    pub fn shuffle_passive(mut self, n: usize) -> Self {
        self.shuffle_passive = n;
        self
    }

    /// Interval between periodic view shuffles.
    #[must_use]
    pub fn shuffle_every(mut self, every: Duration) -> Self {
        self.shuffle_every = every;
        self
    }

    /// Interval between gossip housekeeping ticks (graft retries, shuffles).
    #[must_use]
    pub fn tick_every(mut self, every: Duration) -> Self {
        self.tick_every = every;
        self
    }

    /// How long to wait for a grafted payload before asking another holder.
    #[must_use]
    pub fn graft_timeout(mut self, after: Duration) -> Self {
        self.graft_timeout = after;
        self
    }

    /// Bounds the per-node dedup/payload cache (entries, FIFO eviction).
    ///
    /// Size this well above the number of distinct message ids that can be
    /// in flight at once (the default, 1024, is plenty for every shipped
    /// scenario). Plumtree's duplicate suppression *is* this cache: an
    /// undersized cache forgets an id while copies of it still circulate,
    /// so the next copy looks fresh and is re-broadcast — in a dense mesh
    /// that recirculation feeds on itself and never quiesces.
    #[must_use]
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n.max(1);
        self
    }

    /// Salts the per-node RNG stream; harnesses pass the run seed here.
    #[must_use]
    pub fn rng_salt(mut self, salt: u64) -> Self {
        self.rng_salt = salt;
        self
    }

    /// Active-view bound.
    #[must_use]
    pub fn active_limit(&self) -> usize {
        self.active_view
    }

    /// Passive-view bound.
    #[must_use]
    pub fn passive_limit(&self) -> usize {
        self.passive_view
    }

    /// Housekeeping tick interval (drives the owner's timer).
    #[must_use]
    pub fn tick_interval(&self) -> Duration {
        self.tick_every
    }

    /// Shuffle interval.
    #[must_use]
    pub fn shuffle_interval(&self) -> Duration {
        self.shuffle_every
    }

    /// Dedup-cache bound.
    #[must_use]
    pub fn cache_limit(&self) -> usize {
        self.cache_capacity
    }

    /// RNG stream salt.
    #[must_use]
    pub fn salt(&self) -> u64 {
        self.rng_salt
    }
}

mod tag {
    pub const PUSH: u8 = 1;
    pub const IHAVE: u8 = 2;
    pub const GRAFT: u8 = 3;
    pub const PRUNE: u8 = 4;
    pub const SHUFFLE: u8 = 5;
    pub const SHUFFLE_REPLY: u8 = 6;
}

/// One gossip protocol message. Batches of these ride inside the community
/// wire protocol's `PS_GOSSIP` request/response pair; the sender is implied
/// by the connection the batch arrived on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipMsg {
    /// Eager push of a full payload, `hops` links from its origin.
    Push {
        /// Message id from [`message_id`].
        id: u64,
        /// Radio hops traveled so far (origin counts as 0).
        hops: u8,
        /// Opaque payload.
        payload: Bytes,
    },
    /// Lazy digest: "I hold these payloads, graft if you miss one."
    IHave {
        /// Cached message ids.
        ids: Vec<u64>,
    },
    /// Pull request for a payload previously announced via `IHave`.
    Graft {
        /// Message id to repair.
        id: u64,
    },
    /// Demote me to your lazy set; your pushes reach me another way.
    Prune,
    /// Periodic membership exchange carrying a sample of known peer names.
    Shuffle {
        /// Sampled names (includes the sender itself).
        peers: Vec<String>,
    },
    /// Reply half of a shuffle with the receiver's own sample.
    ShuffleReply {
        /// Sampled names.
        peers: Vec<String>,
    },
}

impl Wire for GossipMsg {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            GossipMsg::Push { id, hops, payload } => {
                out.push(tag::PUSH);
                id.encode_to(out);
                hops.encode_to(out);
                payload.encode_to(out);
            }
            GossipMsg::IHave { ids } => {
                out.push(tag::IHAVE);
                ids.encode_to(out);
            }
            GossipMsg::Graft { id } => {
                out.push(tag::GRAFT);
                id.encode_to(out);
            }
            GossipMsg::Prune => out.push(tag::PRUNE),
            GossipMsg::Shuffle { peers } => {
                out.push(tag::SHUFFLE);
                peers.encode_to(out);
            }
            GossipMsg::ShuffleReply { peers } => {
                out.push(tag::SHUFFLE_REPLY);
                peers.encode_to(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let t = u8::decode(input)?;
        match t {
            tag::PUSH => Ok(GossipMsg::Push {
                id: u64::decode(input)?,
                hops: u8::decode(input)?,
                payload: Bytes::decode(input)?,
            }),
            tag::IHAVE => Ok(GossipMsg::IHave {
                ids: Vec::<u64>::decode(input)?,
            }),
            tag::GRAFT => Ok(GossipMsg::Graft {
                id: u64::decode(input)?,
            }),
            tag::PRUNE => Ok(GossipMsg::Prune),
            tag::SHUFFLE => Ok(GossipMsg::Shuffle {
                peers: Vec::<String>::decode(input)?,
            }),
            tag::SHUFFLE_REPLY => Ok(GossipMsg::ShuffleReply {
                peers: Vec::<String>::decode(input)?,
            }),
            other => Err(DecodeError::BadTag {
                what: "GossipMsg",
                tag: other,
            }),
        }
    }
}

/// Encodes a batch of gossip messages (the payload of one wire frame).
pub fn encode_batch(msgs: &[GossipMsg], out: &mut Vec<u8>) {
    encode_seq(msgs, out);
}

/// Decodes a batch written by [`encode_batch`].
///
/// # Errors
///
/// Propagates any [`DecodeError`] from the length prefix or an element.
pub fn decode_batch(input: &mut &[u8]) -> Result<Vec<GossipMsg>, DecodeError> {
    decode_seq(input)
}

/// Broadcast-layer counters, mirrored into `TraceStats` by the harnesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Full payloads pushed eagerly (per peer, per message).
    pub eager: u64,
    /// `IHAVE` id announcements sent (per peer, per id).
    pub lazy: u64,
    /// `GRAFT` repair requests sent.
    pub graft: u64,
    /// `PRUNE` demotions sent in response to duplicate pushes.
    pub prune: u64,
    /// Duplicate pushes received (overhead: duplicates per delivered payload).
    pub duplicate: u64,
}

/// A payload that reached this node for the first time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Message id.
    pub id: u64,
    /// Radio hops from the origin.
    pub hops: u8,
    /// Connected peer that delivered it.
    pub from: String,
    /// The payload itself.
    pub payload: Bytes,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    hops: u8,
    payload: Bytes,
}

#[derive(Clone, Debug)]
struct MissingEntry {
    providers: Vec<String>,
    asked: usize,
    deadline: SimTime,
}

/// The per-node gossip state machine. See the module docs for the protocol
/// shape and the IO contract.
#[derive(Clone, Debug)]
pub struct Gossip {
    me: String,
    cfg: GossipConfig,
    rng: SimRng,
    connected: BTreeSet<String>,
    active: BTreeSet<String>,
    passive: BTreeSet<String>,
    /// Active peers demoted off the eager tree by a `Prune`.
    lazy: BTreeSet<String>,
    cache: BTreeMap<u64, CacheEntry>,
    cache_order: VecDeque<u64>,
    missing: BTreeMap<u64, MissingEntry>,
    next_shuffle: SimTime,
    outbox: Vec<(String, GossipMsg)>,
    stats: GossipStats,
}

impl Gossip {
    /// Creates the state machine for node `me`. The RNG stream is derived
    /// from the config salt and the node name, so two nodes in the same run
    /// draw from independent deterministic streams.
    pub fn new(me: impl Into<String>, cfg: GossipConfig) -> Gossip {
        let me = me.into();
        let seed = GOSSIP_STREAM ^ cfg.rng_salt ^ fnv64(me.as_bytes());
        let next_shuffle = SimTime::ZERO + cfg.shuffle_every;
        Gossip {
            me,
            rng: SimRng::from_seed(seed),
            connected: BTreeSet::new(),
            active: BTreeSet::new(),
            passive: BTreeSet::new(),
            lazy: BTreeSet::new(),
            cache: BTreeMap::new(),
            cache_order: VecDeque::new(),
            missing: BTreeMap::new(),
            next_shuffle,
            outbox: Vec::new(),
            stats: GossipStats::default(),
            cfg,
        }
    }

    /// This node's name.
    #[must_use]
    pub fn me(&self) -> &str {
        &self.me
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// Connected peers currently treated as overlay neighbors (≤ bound).
    #[must_use]
    pub fn active_view(&self) -> &BTreeSet<String> {
        &self.active
    }

    /// Known-but-not-active peer names (≤ bound, disjoint from active).
    #[must_use]
    pub fn passive_view(&self) -> &BTreeSet<String> {
        &self.passive
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Number of cached payloads.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// True once `id` has been published to or delivered at this node.
    #[must_use]
    pub fn has_seen(&self, id: u64) -> bool {
        self.cache.contains_key(&id)
    }

    /// A radio link to `peer` came up. Promotes it into the views and
    /// announces every cached payload id so store-and-forward works across
    /// bubbles (the ferry pattern).
    pub fn neighbor_up(&mut self, peer: &str, _now: SimTime) {
        if peer == self.me {
            return;
        }
        self.connected.insert(peer.to_string());
        self.admit(peer);
        self.rebalance();
        if !self.cache.is_empty() {
            let ids: Vec<u64> = self.cache_order.iter().copied().collect();
            self.stats.lazy += ids.len() as u64;
            self.outbox
                .push((peer.to_string(), GossipMsg::IHave { ids }));
        }
    }

    /// The radio link to `peer` is gone. Demotes it to the passive view and
    /// force-promotes a replacement if one is in range (active-view failure).
    pub fn neighbor_down(&mut self, peer: &str, _now: SimTime) {
        self.connected.remove(peer);
        self.lazy.remove(peer);
        if self.active.remove(peer) {
            self.insert_passive(peer);
        }
        for entry in self.missing.values_mut() {
            entry.providers.retain(|p| p != peer);
        }
        self.rebalance();
    }

    /// Publishes a locally-originated payload: caches it, eager-pushes to
    /// the tree, and lazily announces to everyone else.
    pub fn publish(&mut self, id: u64, payload: Bytes, _now: SimTime) {
        if self.cache.contains_key(&id) {
            return;
        }
        self.insert_cache(id, 0, payload);
        self.broadcast(id, None);
    }

    /// Handles one message from a connected `peer`, returning any payloads
    /// that reached this node for the first time.
    pub fn on_msg(&mut self, peer: &str, msg: GossipMsg, now: SimTime) -> Vec<Delivery> {
        if peer == self.me {
            return Vec::new();
        }
        // Messages arrive over live connections; be defensive about a missed
        // neighbor_up so the views never desynchronize from the transport.
        if !self.connected.contains(peer) {
            self.connected.insert(peer.to_string());
            self.admit(peer);
            self.rebalance();
        }
        match msg {
            GossipMsg::Push { id, hops, payload } => {
                if self.cache.contains_key(&id) {
                    self.stats.duplicate += 1;
                    self.stats.prune += 1;
                    self.outbox.push((peer.to_string(), GossipMsg::Prune));
                    if self.active.contains(peer) {
                        self.lazy.insert(peer.to_string());
                    }
                    return Vec::new();
                }
                self.missing.remove(&id);
                self.insert_cache(id, hops, payload.clone());
                // First delivery repairs the tree: the deliverer is an eager
                // edge from now on.
                self.lazy.remove(peer);
                self.broadcast(id, Some(peer));
                vec![Delivery {
                    id,
                    hops,
                    from: peer.to_string(),
                    payload,
                }]
            }
            GossipMsg::IHave { ids } => {
                for id in ids {
                    if self.cache.contains_key(&id) {
                        continue;
                    }
                    let entry = self.missing.entry(id).or_insert(MissingEntry {
                        providers: Vec::new(),
                        asked: 0,
                        deadline: SimTime::ZERO,
                    });
                    if !entry.providers.iter().any(|p| p == peer) {
                        entry.providers.push(peer.to_string());
                    }
                    if entry.providers.len() == 1 {
                        entry.deadline = now + self.cfg.graft_timeout;
                        self.stats.graft += 1;
                        self.outbox
                            .push((peer.to_string(), GossipMsg::Graft { id }));
                    }
                }
                Vec::new()
            }
            GossipMsg::Graft { id } => {
                self.lazy.remove(peer);
                if let Some(entry) = self.cache.get(&id) {
                    let hops = entry.hops.saturating_add(1);
                    let payload = entry.payload.clone();
                    self.stats.eager += 1;
                    self.outbox
                        .push((peer.to_string(), GossipMsg::Push { id, hops, payload }));
                }
                Vec::new()
            }
            GossipMsg::Prune => {
                if self.active.contains(peer) {
                    self.lazy.insert(peer.to_string());
                }
                Vec::new()
            }
            GossipMsg::Shuffle { peers } => {
                for name in &peers {
                    self.insert_passive(name);
                }
                let sample = self.sample_peers(peer);
                self.outbox
                    .push((peer.to_string(), GossipMsg::ShuffleReply { peers: sample }));
                Vec::new()
            }
            GossipMsg::ShuffleReply { peers } => {
                for name in &peers {
                    self.insert_passive(name);
                }
                Vec::new()
            }
        }
    }

    /// Periodic housekeeping: graft retries for still-missing payloads and
    /// the shuffle timer. Call once per [`GossipConfig::tick_interval`].
    pub fn on_tick(&mut self, now: SimTime) {
        self.retry_grafts(now);
        if now >= self.next_shuffle {
            self.next_shuffle = now + self.cfg.shuffle_every;
            self.shuffle();
        }
    }

    /// Drains queued `(destination, message)` pairs for the transport.
    pub fn take_outbox(&mut self) -> Vec<(String, GossipMsg)> {
        std::mem::take(&mut self.outbox)
    }

    fn retry_grafts(&mut self, now: SimTime) {
        let timeout = self.cfg.graft_timeout;
        let mut grafts: Vec<(String, u64)> = Vec::new();
        for (&id, entry) in &mut self.missing {
            if entry.deadline > now || entry.providers.is_empty() {
                continue;
            }
            // The previous holder never answered; rotate to the next one
            // that is still in range.
            let n = entry.providers.len();
            for step in 1..=n {
                let idx = (entry.asked + step) % n;
                if self.connected.contains(&entry.providers[idx]) {
                    entry.asked = idx;
                    grafts.push((entry.providers[idx].clone(), id));
                    break;
                }
            }
            entry.deadline = now + timeout;
        }
        for (peer, id) in grafts {
            self.stats.graft += 1;
            self.outbox.push((peer, GossipMsg::Graft { id }));
        }
    }

    fn shuffle(&mut self) {
        let candidates: Vec<String> = self
            .active
            .iter()
            .filter(|p| self.connected.contains(*p))
            .cloned()
            .collect();
        let Some(target) = self.rng.pick(&candidates).cloned() else {
            return;
        };
        let peers = self.sample_peers(&target);
        self.outbox.push((target, GossipMsg::Shuffle { peers }));
    }

    /// Samples `shuffle_active` active + `shuffle_passive` passive names
    /// (plus this node itself, so shuffles spread our own name).
    fn sample_peers(&mut self, exclude: &str) -> Vec<String> {
        let mut sample = vec![self.me.clone()];
        let mut actives: Vec<String> = self
            .active
            .iter()
            .filter(|p| p.as_str() != exclude)
            .cloned()
            .collect();
        self.rng.shuffle(&mut actives);
        actives.truncate(self.cfg.shuffle_active);
        let mut passives: Vec<String> = self
            .passive
            .iter()
            .filter(|p| p.as_str() != exclude)
            .cloned()
            .collect();
        self.rng.shuffle(&mut passives);
        passives.truncate(self.cfg.shuffle_passive);
        sample.extend(actives);
        sample.extend(passives);
        sample
    }

    /// Pushes `id` to eager connected peers and announces it to every other
    /// connected peer, skipping `via` (who just gave it to us).
    fn broadcast(&mut self, id: u64, via: Option<&str>) {
        let entry = &self.cache[&id];
        let hops = entry.hops.saturating_add(1);
        let payload = entry.payload.clone();
        let mut pushes: Vec<String> = Vec::new();
        let mut announces: Vec<String> = Vec::new();
        for peer in &self.connected {
            if Some(peer.as_str()) == via {
                continue;
            }
            if self.active.contains(peer) && !self.lazy.contains(peer) {
                pushes.push(peer.clone());
            } else {
                announces.push(peer.clone());
            }
        }
        for peer in pushes {
            self.stats.eager += 1;
            self.outbox.push((
                peer,
                GossipMsg::Push {
                    id,
                    hops,
                    payload: payload.clone(),
                },
            ));
        }
        for peer in announces {
            self.stats.lazy += 1;
            self.outbox.push((peer, GossipMsg::IHave { ids: vec![id] }));
        }
    }

    /// Admits a freshly-connected peer into the views: straight into the
    /// active view while it has room, otherwise parked in the passive view.
    fn admit(&mut self, peer: &str) {
        if peer == self.me || self.active.contains(peer) {
            return;
        }
        if self.active.len() < self.cfg.active_view {
            self.passive.remove(peer);
            self.active.insert(peer.to_string());
        } else {
            self.insert_passive(peer);
        }
    }

    /// Forced promotion: whenever the active view is under its bound and a
    /// connected peer sits in the passive view, promote one at random.
    fn rebalance(&mut self) {
        while self.active.len() < self.cfg.active_view {
            let candidates: Vec<String> = self
                .passive
                .iter()
                .filter(|p| self.connected.contains(*p))
                .cloned()
                .collect();
            let Some(pick) = self.rng.pick(&candidates).cloned() else {
                return;
            };
            self.passive.remove(&pick);
            self.active.insert(pick);
        }
    }

    fn insert_passive(&mut self, peer: &str) {
        if peer == self.me || self.active.contains(peer) || self.passive.contains(peer) {
            return;
        }
        while self.passive.len() >= self.cfg.passive_view {
            let names: Vec<String> = self.passive.iter().cloned().collect();
            let Some(evict) = self.rng.pick(&names).cloned() else {
                return;
            };
            self.passive.remove(&evict);
        }
        if self.cfg.passive_view > 0 {
            self.passive.insert(peer.to_string());
        }
    }

    fn insert_cache(&mut self, id: u64, hops: u8, payload: Bytes) {
        while self.cache.len() >= self.cfg.cache_capacity {
            if let Some(old) = self.cache_order.pop_front() {
                self.cache.remove(&old);
            } else {
                break;
            }
        }
        self.cache.insert(id, CacheEntry { hops, payload });
        self.cache_order.push_back(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GossipConfig {
        GossipConfig::default().rng_salt(7)
    }

    fn all_msgs() -> Vec<GossipMsg> {
        vec![
            GossipMsg::Push {
                id: 42,
                hops: 3,
                payload: Bytes::from(b"payload".to_vec()),
            },
            GossipMsg::IHave { ids: vec![1, 2, 3] },
            GossipMsg::Graft { id: 9 },
            GossipMsg::Prune,
            GossipMsg::Shuffle {
                peers: vec!["a".into(), "b".into()],
            },
            GossipMsg::ShuffleReply {
                peers: vec!["c".into()],
            },
        ]
    }

    #[test]
    fn every_gossip_msg_round_trips() {
        for msg in all_msgs() {
            let bytes = msg.encode();
            let back = GossipMsg::decode_exact(&bytes).expect("decode");
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn batch_round_trips() {
        let msgs = all_msgs();
        let mut out = Vec::new();
        encode_batch(&msgs, &mut out);
        let mut input = out.as_slice();
        let back = decode_batch(&mut input).expect("decode batch");
        assert!(input.is_empty());
        assert_eq!(msgs, back);
    }

    #[test]
    fn bad_tag_rejected() {
        let err = GossipMsg::decode_exact(&[0x7f]).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::BadTag {
                what: "GossipMsg",
                ..
            }
        ));
    }

    #[test]
    fn neighbor_up_promotes_until_bound() {
        let mut g = Gossip::new("me", cfg().active_view(2));
        let t = SimTime::ZERO;
        g.neighbor_up("a", t);
        g.neighbor_up("b", t);
        g.neighbor_up("c", t);
        assert_eq!(g.active_view().len(), 2);
        assert!(g.passive_view().contains("c"));
    }

    #[test]
    fn neighbor_down_force_promotes_connected_passive() {
        let mut g = Gossip::new("me", cfg().active_view(1));
        let t = SimTime::ZERO;
        g.neighbor_up("a", t);
        g.neighbor_up("b", t);
        assert!(g.active_view().contains("a"));
        assert!(g.passive_view().contains("b"));
        g.neighbor_down("a", t);
        // b was in range, so it is force-promoted into the emptied slot.
        assert!(g.active_view().contains("b"));
        assert!(g.passive_view().contains("a"));
    }

    #[test]
    fn publish_reaches_connected_peer() {
        let t = SimTime::ZERO;
        let mut a = Gossip::new("a", cfg());
        let mut b = Gossip::new("b", cfg());
        a.neighbor_up("b", t);
        b.neighbor_up("a", t);
        a.take_outbox();
        b.take_outbox();
        a.publish(message_id("a", 0), Bytes::from(b"hello".to_vec()), t);
        let out = a.take_outbox();
        assert_eq!(out.len(), 1);
        let (dest, msg) = out.into_iter().next().unwrap();
        assert_eq!(dest, "b");
        let delivered = b.on_msg("a", msg, t);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, Bytes::from(b"hello".to_vec()));
        assert_eq!(delivered[0].hops, 1);
    }

    #[test]
    fn duplicate_push_prunes_sender() {
        let t = SimTime::ZERO;
        let mut b = Gossip::new("b", cfg());
        b.neighbor_up("a", t);
        b.neighbor_up("c", t);
        b.take_outbox();
        let push = GossipMsg::Push {
            id: 1,
            hops: 1,
            payload: Bytes::from(b"x".to_vec()),
        };
        assert_eq!(b.on_msg("a", push.clone(), t).len(), 1);
        assert_eq!(b.on_msg("c", push, t).len(), 0);
        assert_eq!(b.stats().duplicate, 1);
        let prunes: Vec<_> = b
            .take_outbox()
            .into_iter()
            .filter(|(dest, msg)| dest == "c" && matches!(msg, GossipMsg::Prune))
            .collect();
        assert_eq!(prunes.len(), 1);
    }

    #[test]
    fn ihave_triggers_graft_and_repair() {
        let t = SimTime::ZERO;
        let mut a = Gossip::new("a", cfg());
        let mut b = Gossip::new("b", cfg());
        a.neighbor_up("b", t);
        b.neighbor_up("a", t);
        a.take_outbox();
        b.take_outbox();
        let id = message_id("a", 1);
        a.publish(id, Bytes::from(b"blob".to_vec()), t);
        a.take_outbox();
        // b hears only the digest (as if it connected late)...
        b.on_msg("a", GossipMsg::IHave { ids: vec![id] }, t);
        let graft = b
            .take_outbox()
            .into_iter()
            .find(|(dest, msg)| dest == "a" && matches!(msg, GossipMsg::Graft { .. }))
            .expect("graft queued");
        assert_eq!(b.stats().graft, 1);
        // ...and the graft pulls the payload across.
        a.on_msg("b", graft.1, t);
        let (_, push) = a
            .take_outbox()
            .into_iter()
            .find(|(dest, _)| dest == "b")
            .expect("push queued");
        let delivered = b.on_msg("a", push, t);
        assert_eq!(delivered.len(), 1);
        assert!(b.has_seen(id));
    }

    #[test]
    fn graft_retries_rotate_to_live_provider() {
        let t0 = SimTime::ZERO;
        let mut b = Gossip::new("b", cfg());
        b.neighbor_up("a", t0);
        b.neighbor_up("c", t0);
        b.take_outbox();
        b.on_msg("a", GossipMsg::IHave { ids: vec![5] }, t0);
        b.on_msg("c", GossipMsg::IHave { ids: vec![5] }, t0);
        b.take_outbox();
        // a never answers and drops off; the retry must target c.
        b.neighbor_down("a", t0);
        let t1 = t0 + Duration::from_secs(5);
        b.on_tick(t1);
        let grafts: Vec<_> = b
            .take_outbox()
            .into_iter()
            .filter(|(_, msg)| matches!(msg, GossipMsg::Graft { id: 5 }))
            .collect();
        assert_eq!(grafts.len(), 1);
        assert_eq!(grafts[0].0, "c");
    }

    #[test]
    fn shuffle_spreads_names_into_passive_view() {
        let t = SimTime::ZERO;
        let mut a = Gossip::new("a", cfg());
        let mut b = Gossip::new("b", cfg());
        a.neighbor_up("b", t);
        a.neighbor_up("x", t);
        a.neighbor_down("x", t);
        b.neighbor_up("a", t);
        a.take_outbox();
        b.take_outbox();
        let horizon = SimTime::ZERO + Duration::from_secs(120);
        a.on_tick(horizon);
        let shuffles: Vec<_> = a
            .take_outbox()
            .into_iter()
            .filter(|(_, msg)| matches!(msg, GossipMsg::Shuffle { .. }))
            .collect();
        assert_eq!(shuffles.len(), 1);
        let (dest, msg) = shuffles.into_iter().next().unwrap();
        assert_eq!(dest, "b");
        b.on_msg("a", msg, t);
        // b learned about x (and a itself was filtered as already active).
        assert!(b.passive_view().contains("x"));
        let reply = b
            .take_outbox()
            .into_iter()
            .find(|(_, m)| matches!(m, GossipMsg::ShuffleReply { .. }));
        assert!(reply.is_some());
    }

    #[test]
    fn cache_is_bounded_fifo() {
        let t = SimTime::ZERO;
        let mut g = Gossip::new("g", cfg().cache_capacity(4));
        for seq in 0..10u64 {
            g.publish(message_id("g", seq), Bytes::from(vec![seq as u8]), t);
        }
        assert_eq!(g.cache_len(), 4);
        assert!(!g.has_seen(message_id("g", 0)));
        assert!(g.has_seen(message_id("g", 9)));
    }

    #[test]
    fn views_never_contain_self() {
        let t = SimTime::ZERO;
        let mut g = Gossip::new("me", cfg());
        g.neighbor_up("me", t);
        g.on_msg(
            "a",
            GossipMsg::Shuffle {
                peers: vec!["me".into(), "z".into()],
            },
            t,
        );
        assert!(!g.active_view().contains("me"));
        assert!(!g.passive_view().contains("me"));
        assert!(g.passive_view().contains("z"));
    }
}
