//! The PeerHood Daemon state machine.
//!
//! The PHD is "an independent application which always runs on background and
//! keeps track of other wireless device discovery and service discovery in
//! those devices" (thesis §4.2.1). This implementation is *sans-IO*: the
//! daemon consumes [`DaemonInput`]s and appends [`DaemonOutput`]s, never
//! touching a socket or a clock itself. The deterministic simulator
//! ([`crate::sim`]) and the live TCP runtime ([`crate::live`]) both drive the
//! very same state machine.
//!
//! Responsibilities (Table 3 of the thesis):
//!
//! * **Device discovery** — periodic inquiry rounds per technology, feeding
//!   the [`NeighborTable`];
//! * **Service discovery** — SDP-style query/reply against remote daemons,
//!   cached per neighbor;
//! * **Service sharing** — the local [`ServiceRegistry`];
//! * **Connection establishment** — technology selection with fallback;
//! * **Data transmission** — frame relay between the application and links;
//! * **Active monitoring** — appearance/disappearance alerts;
//! * **Seamless connectivity** — transparent migration of live connections
//!   to another shared technology when a link drops.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use codec::Bytes;

use netsim::{SimTime, Technology};

use crate::api::{AppEvent, AppRequest};
use crate::config::DaemonConfig;
use crate::error::PeerHoodError;
use crate::neighbor::{NeighborTable, SightingOutcome};
use crate::plugin::{PluginCommand, PluginEvent};
use crate::service::ServiceRegistry;
use crate::techmap::TechMap;
use crate::types::{AttemptId, CloseReason, ConnId, DeviceId, LinkId, ResumeToken};

/// How long the responder side of a broken connection waits for the
/// initiator to resume it over another technology before giving up.
const HANDOVER_GRACE: Duration = Duration::from_secs(12);

/// An input to [`Daemon::handle`].
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonInput {
    /// A timer tick; the daemon runs anything that has come due.
    Tick,
    /// A transport event from the driver.
    Plugin(PluginEvent),
    /// A request from the local application.
    App(AppRequest),
}

/// An output produced by [`Daemon::handle`].
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonOutput {
    /// A command for the transport driver.
    Plugin(PluginCommand),
    /// An event for the local application.
    App(AppEvent),
    /// The daemon wants a [`DaemonInput::Tick`] no later than this instant.
    WakeAt(SimTime),
}

#[derive(Clone, Debug)]
struct InquiryState {
    running: bool,
    next_start: SimTime,
    interval: Duration,
}

#[derive(Clone, Debug)]
struct Conn {
    device: DeviceId,
    service: String,
    technology: Technology,
    link: Option<LinkId>,
    /// We opened this connection (only the initiator drives handover).
    initiator: bool,
    /// Token identifying the logical connection across handovers.
    resume: ResumeToken,
    /// Frames queued while a handover is in progress.
    buffer: Vec<Bytes>,
    handing_over: bool,
    /// Responder side: give up waiting for a resume at this time.
    limbo_deadline: Option<SimTime>,
}

#[derive(Clone, Debug)]
struct Attempt {
    device: DeviceId,
    service: String,
    technology: Technology,
    fallbacks: Vec<Technology>,
    purpose: AttemptPurpose,
    /// How many full retry rounds already failed before this attempt
    /// (0 on the first round; only ever nonzero with a recovery policy).
    tries: u32,
}

#[derive(Clone, Debug)]
enum AttemptPurpose {
    NewConnection,
    Handover { conn: ConnId, from: Technology },
}

/// A connect sequence waiting out its backoff before being relaunched.
#[derive(Clone, Debug)]
struct RetryConnect {
    device: DeviceId,
    service: String,
    purpose: AttemptPurpose,
    /// Retry round about to run (1 = first retry).
    tries: u32,
}

/// Deadline state of one outstanding remote service-list query.
#[derive(Copy, Clone, Debug)]
struct QueryDeadline {
    at: SimTime,
    tries: u32,
}

/// Counters for the optional [`RecoveryPolicy`]: how often the daemon
/// timed out, retried, gave up or recovered. All zero — and the trace
/// digest untouched — when no recovery policy is configured.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Operations relaunched after a failure (connects and queries).
    pub retries: u64,
    /// Deadlines that expired (connect attempts and service queries).
    pub timeouts: u64,
    /// Operations abandoned after exhausting every retry.
    pub gave_up: u64,
    /// Operations that ultimately succeeded *after* at least one retry,
    /// plus stale-cache service lists served in place of a dead query.
    pub resumed: u64,
}

/// The PeerHood Daemon.
///
/// Drive it by calling [`Daemon::handle`] with each input; it appends
/// outputs to the vector you pass. See the module docs for the execution
/// model and [`crate::sim::Cluster`] for a ready-made driver.
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    services: ServiceRegistry,
    neighbors: NeighborTable,
    monitors: BTreeSet<DeviceId>,
    inquiries: TechMap<InquiryState>,
    conns: BTreeMap<ConnId, Conn>,
    link_index: BTreeMap<LinkId, ConnId>,
    attempts: BTreeMap<AttemptId, Attempt>,
    resume_index: BTreeMap<ResumeToken, ConnId>,
    pending_service_queries: BTreeMap<DeviceId, u32>,
    /// Per-attempt give-up instants (populated only with a recovery policy).
    attempt_deadlines: BTreeMap<AttemptId, SimTime>,
    /// Connect sequences sleeping through their backoff, by wake time.
    pending_retries: BTreeMap<SimTime, Vec<RetryConnect>>,
    /// Give-up instants for outstanding service queries (recovery only).
    query_deadlines: BTreeMap<DeviceId, QueryDeadline>,
    recovery_stats: RecoveryStats,
    /// Whether the one-shot [`AppEvent::GossipEnabled`] announcement has
    /// been emitted (only relevant when the config carries a gossip layer).
    gossip_announced: bool,
    next_conn: u64,
    next_attempt: u64,
}

impl Daemon {
    /// Creates a daemon with the given configuration.
    pub fn new(config: DaemonConfig) -> Self {
        let inquiries = config
            .inquiry_interval
            .iter()
            .filter(|(tech, _)| config.device.technologies.contains(*tech))
            .map(|(tech, interval)| {
                (
                    tech,
                    InquiryState {
                        running: false,
                        next_start: SimTime::ZERO,
                        interval: *interval,
                    },
                )
            })
            .collect();
        Daemon {
            config,
            services: ServiceRegistry::new(),
            neighbors: NeighborTable::new(),
            monitors: BTreeSet::new(),
            inquiries,
            conns: BTreeMap::new(),
            link_index: BTreeMap::new(),
            attempts: BTreeMap::new(),
            resume_index: BTreeMap::new(),
            pending_service_queries: BTreeMap::new(),
            attempt_deadlines: BTreeMap::new(),
            pending_retries: BTreeMap::new(),
            query_deadlines: BTreeMap::new(),
            recovery_stats: RecoveryStats::default(),
            gossip_announced: false,
            next_conn: 0,
            next_attempt: 0,
        }
    }

    /// The daemon's own device identity.
    pub fn device_id(&self) -> DeviceId {
        self.config.device.id
    }

    /// Read access to the current neighbor table (for drivers, tests and
    /// diagnostics; applications use [`AppRequest::GetDeviceList`]).
    pub fn neighbors(&self) -> &NeighborTable {
        &self.neighbors
    }

    /// Read access to the local service registry.
    pub fn services(&self) -> &ServiceRegistry {
        &self.services
    }

    /// Number of currently open connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Counters of the recovery machinery (all zero without a
    /// [`RecoveryPolicy`]).
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery_stats
    }

    /// Simulates a daemon process crash-and-restart: every connection
    /// closes (the application is told), all soft state — neighbors,
    /// in-flight attempts, pending queries — is forgotten, and discovery
    /// restarts from scratch at the next tick. The service registry and
    /// monitor subscriptions survive (they are application intent, which in
    /// a real deployment would be re-asserted on reconnect).
    pub fn crash_restart(&mut self, now: SimTime, out: &mut Vec<DaemonOutput>) {
        let conns: Vec<ConnId> = self.conns.keys().copied().collect();
        for conn in conns {
            self.drop_conn(conn, CloseReason::LinkLost, out);
        }
        for (device, waiting) in std::mem::take(&mut self.pending_service_queries) {
            for _ in 0..waiting {
                out.push(DaemonOutput::App(AppEvent::ServiceList {
                    device,
                    services: Vec::new(),
                    stale: false,
                }));
            }
        }
        self.neighbors = NeighborTable::new();
        self.conns.clear();
        self.link_index.clear();
        self.attempts.clear();
        self.attempt_deadlines.clear();
        self.pending_retries.clear();
        self.query_deadlines.clear();
        self.resume_index.clear();
        for st in self.inquiries.values_mut() {
            st.running = false;
            st.next_start = now;
        }
    }

    /// Processes one input at virtual time `now`, appending outputs.
    ///
    /// Inputs must be fed in non-decreasing `now` order. A trailing
    /// [`DaemonOutput::WakeAt`] is appended whenever the daemon has future
    /// work; drivers must deliver a [`DaemonInput::Tick`] at (or after) that
    /// time.
    pub fn handle(&mut self, now: SimTime, input: DaemonInput, out: &mut Vec<DaemonOutput>) {
        if !self.gossip_announced {
            self.gossip_announced = true;
            if let Some(gossip) = self.config.gossip.clone() {
                out.push(DaemonOutput::App(AppEvent::GossipEnabled {
                    config: gossip,
                }));
            }
        }
        match input {
            DaemonInput::Tick => self.run_due_work(now, out),
            DaemonInput::App(req) => self.handle_app(now, req, out),
            DaemonInput::Plugin(ev) => self.handle_plugin(now, ev, out),
        }
        if let Some(wake) = self.next_wake(now) {
            out.push(DaemonOutput::WakeAt(wake));
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn run_due_work(&mut self, now: SimTime, out: &mut Vec<DaemonOutput>) {
        // Neighbor expiry.
        let removed = self.neighbors.expire(now, self.config.neighbor_ttl);
        for info in removed {
            // Applications waiting on a service list for the vanished
            // device get an empty answer rather than silence.
            self.query_deadlines.remove(&info.id);
            if let Some(waiting) = self.pending_service_queries.remove(&info.id) {
                for _ in 0..waiting {
                    out.push(DaemonOutput::App(AppEvent::ServiceList {
                        device: info.id,
                        services: Vec::new(),
                        stale: false,
                    }));
                }
            }
            if self.monitors.contains(&info.id) {
                out.push(DaemonOutput::App(AppEvent::MonitorAlert {
                    device: info.clone(),
                    appeared: false,
                }));
            }
            out.push(DaemonOutput::App(AppEvent::DeviceDisappeared(info)));
        }

        // Inquiry scheduling.
        for (tech, st) in self.inquiries.iter_mut() {
            if !st.running && now >= st.next_start {
                st.running = true;
                st.next_start = now + st.interval;
                out.push(DaemonOutput::Plugin(PluginCommand::StartInquiry {
                    technology: tech,
                }));
            }
        }

        // Responder-side handover limbo timeouts.
        let expired: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| c.limbo_deadline.is_some_and(|d| now >= d))
            .map(|(id, _)| *id)
            .collect();
        for conn in expired {
            self.drop_conn(conn, CloseReason::HandoverFailed, out);
        }

        // Recovery machinery (no-ops without a policy: the maps stay empty).
        self.run_attempt_timeouts(now, out);
        self.run_pending_retries(now, out);
        self.run_query_timeouts(now, out);
    }

    /// Connection attempts whose deadline passed are failed exactly as if
    /// the transport had reported an error — the fallback chain and retry
    /// schedule then apply as usual.
    fn run_attempt_timeouts(&mut self, now: SimTime, out: &mut Vec<DaemonOutput>) {
        let due: Vec<AttemptId> = self
            .attempt_deadlines
            .iter()
            .filter(|(_, &at)| now >= at)
            .map(|(&id, _)| id)
            .collect();
        for attempt in due {
            self.recovery_stats.timeouts += 1;
            self.handle_connect_result(
                now,
                attempt,
                Err("connection attempt timed out".to_owned()),
                out,
            );
        }
    }

    /// Relaunches connect sequences whose backoff has elapsed.
    fn run_pending_retries(&mut self, now: SimTime, out: &mut Vec<DaemonOutput>) {
        let mut due: Vec<RetryConnect> = Vec::new();
        while let Some(entry) = self.pending_retries.first_entry() {
            if *entry.key() > now {
                break;
            }
            due.extend(entry.remove());
        }
        for retry in due {
            // A handover retry for a connection that died in the meantime
            // has nothing left to resume.
            if let AttemptPurpose::Handover { conn, .. } = &retry.purpose {
                if !self.conns.contains_key(conn) {
                    continue;
                }
            }
            // The candidate list is recomputed from the *current* neighbor
            // table — a handover retry may legitimately land back on the
            // technology it originally fled.
            let mut techs = self
                .neighbors
                .get(retry.device)
                .map(|e| e.visible_technologies())
                .unwrap_or_default();
            if techs.is_empty() {
                self.recovery_stats.gave_up += 1;
                self.fail_exhausted(retry.device, retry.service, retry.purpose, out);
                continue;
            }
            self.recovery_stats.retries += 1;
            let first = techs.remove(0);
            let resume = match &retry.purpose {
                AttemptPurpose::Handover { conn, .. } => self.conns.get(conn).map(|c| c.resume),
                AttemptPurpose::NewConnection => None,
            };
            self.start_attempt(
                now,
                retry.device,
                retry.service,
                first,
                techs,
                retry.purpose,
                resume,
                retry.tries,
                out,
            );
        }
    }

    /// Service queries whose deadline passed are retried while rounds
    /// remain, then resolved from the (stale) cache or with an empty list.
    fn run_query_timeouts(&mut self, now: SimTime, out: &mut Vec<DaemonOutput>) {
        let Some(policy) = self.config.recovery else {
            return;
        };
        let due: Vec<(DeviceId, QueryDeadline)> = self
            .query_deadlines
            .iter()
            .filter(|(_, d)| now >= d.at)
            .map(|(&dev, &d)| (dev, d))
            .collect();
        for (device, deadline) in due {
            self.query_deadlines.remove(&device);
            if !self.pending_service_queries.contains_key(&device) {
                continue; // answered in the meantime
            }
            self.recovery_stats.timeouts += 1;
            let retry_tech = (deadline.tries < policy.max_retries)
                .then(|| {
                    self.neighbors
                        .get(device)
                        .and_then(|e| e.preferred_technology())
                })
                .flatten();
            if let Some(tech) = retry_tech {
                self.recovery_stats.retries += 1;
                self.query_deadlines.insert(
                    device,
                    QueryDeadline {
                        at: now + policy.query_timeout,
                        tries: deadline.tries + 1,
                    },
                );
                out.push(DaemonOutput::Plugin(PluginCommand::QueryServices {
                    device,
                    technology: tech,
                }));
                continue;
            }
            // Out of retries: unblock every waiter, from stale cache when
            // allowed and available.
            self.recovery_stats.gave_up += 1;
            let stale_services = policy
                .serve_stale
                .then(|| {
                    self.neighbors
                        .get(device)
                        .and_then(|e| e.services.as_ref())
                        .map(|(_, s)| s.clone())
                })
                .flatten();
            let waiting = self.pending_service_queries.remove(&device).unwrap_or(0);
            if stale_services.is_some() {
                self.recovery_stats.resumed += 1;
            }
            let (services, stale) = match stale_services {
                Some(s) => (s, true),
                None => (Vec::new(), false),
            };
            for _ in 0..waiting {
                out.push(DaemonOutput::App(AppEvent::ServiceList {
                    device,
                    services: services.clone(),
                    stale,
                }));
            }
        }
    }

    /// Terminal failure of a connect sequence after every technology and
    /// retry round is spent.
    fn fail_exhausted(
        &mut self,
        device: DeviceId,
        service: String,
        purpose: AttemptPurpose,
        out: &mut Vec<DaemonOutput>,
    ) {
        match purpose {
            AttemptPurpose::NewConnection => {
                out.push(DaemonOutput::App(AppEvent::ConnectFailed {
                    device,
                    service,
                    error: PeerHoodError::Unreachable(device),
                }));
            }
            AttemptPurpose::Handover { conn, .. } => match self.conns.get_mut(&conn) {
                Some(state) if state.link.is_some() => {
                    state.handing_over = false;
                }
                _ => self.drop_conn(conn, CloseReason::HandoverFailed, out),
            },
        }
    }

    fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        let mut candidates: Vec<SimTime> = Vec::new();
        for st in self.inquiries.values() {
            if !st.running {
                candidates.push(st.next_start);
            }
        }
        if let Some(t) = self.neighbors.next_expiry(self.config.neighbor_ttl) {
            candidates.push(t);
        }
        for c in self.conns.values() {
            if let Some(d) = c.limbo_deadline {
                candidates.push(d);
            }
        }
        candidates.extend(self.attempt_deadlines.values().copied());
        if let Some((&at, _)) = self.pending_retries.first_key_value() {
            candidates.push(at);
        }
        candidates.extend(self.query_deadlines.values().map(|d| d.at));
        candidates
            .into_iter()
            .min()
            // Clamp to strictly-future so a boundary case can never produce
            // a zero-delay wake loop.
            .map(|t| t.max(now + Duration::from_micros(1)))
    }

    // ------------------------------------------------------------------
    // Application requests
    // ------------------------------------------------------------------

    fn handle_app(&mut self, now: SimTime, req: AppRequest, out: &mut Vec<DaemonOutput>) {
        match req {
            AppRequest::RegisterService(svc) => {
                let name = svc.name().to_owned();
                let result = self.services.register(svc);
                out.push(DaemonOutput::App(AppEvent::ServiceRegistration {
                    name,
                    result,
                }));
            }
            AppRequest::UnregisterService(name) => {
                let result = self.services.unregister(&name).map(|_| ());
                out.push(DaemonOutput::App(AppEvent::ServiceRegistration {
                    name,
                    result,
                }));
            }
            AppRequest::GetDeviceList => {
                out.push(DaemonOutput::App(AppEvent::DeviceList(
                    self.neighbors.device_infos(),
                )));
            }
            AppRequest::GetServiceList { device } => {
                self.handle_get_service_list(now, device, out);
            }
            AppRequest::Connect { device, service } => {
                self.handle_connect(now, device, service, out);
            }
            AppRequest::Send { conn, payload } => {
                self.handle_send(conn, payload, out);
            }
            AppRequest::Close { conn } => {
                if let Some(state) = self.conns.get(&conn) {
                    if let Some(link) = state.link {
                        out.push(DaemonOutput::Plugin(PluginCommand::CloseLink { link }));
                    }
                    self.drop_conn(conn, CloseReason::LocalClose, out);
                }
            }
            AppRequest::Monitor { device } => {
                self.monitors.insert(device);
            }
            AppRequest::Unmonitor { device } => {
                self.monitors.remove(&device);
            }
        }
    }

    fn handle_get_service_list(
        &mut self,
        now: SimTime,
        device: DeviceId,
        out: &mut Vec<DaemonOutput>,
    ) {
        let Some(entry) = self.neighbors.get(device) else {
            // Unknown neighbor: answer immediately with an empty list.
            out.push(DaemonOutput::App(AppEvent::ServiceList {
                device,
                services: Vec::new(),
                stale: false,
            }));
            return;
        };
        // Serve from cache while it is no older than the neighbor TTL.
        if let Some((fetched, services)) = &entry.services {
            if now.saturating_since(*fetched) < self.config.neighbor_ttl {
                out.push(DaemonOutput::App(AppEvent::ServiceList {
                    device,
                    services: services.clone(),
                    stale: false,
                }));
                return;
            }
        }
        let Some(tech) = entry.preferred_technology() else {
            out.push(DaemonOutput::App(AppEvent::ServiceList {
                device,
                services: Vec::new(),
                stale: false,
            }));
            return;
        };
        let waiting = self.pending_service_queries.entry(device).or_insert(0);
        *waiting += 1;
        if *waiting == 1 {
            // First asker triggers the wire query; later askers share the
            // reply (each still gets its own ServiceList event).
            if let Some(policy) = self.config.recovery {
                self.query_deadlines.insert(
                    device,
                    QueryDeadline {
                        at: now + policy.query_timeout,
                        tries: 0,
                    },
                );
            }
            out.push(DaemonOutput::Plugin(PluginCommand::QueryServices {
                device,
                technology: tech,
            }));
        }
    }

    fn handle_connect(
        &mut self,
        now: SimTime,
        device: DeviceId,
        service: String,
        out: &mut Vec<DaemonOutput>,
    ) {
        let Some(entry) = self.neighbors.get(device) else {
            out.push(DaemonOutput::App(AppEvent::ConnectFailed {
                device,
                service,
                error: PeerHoodError::UnknownDevice(device),
            }));
            return;
        };
        let mut techs = entry.visible_technologies();
        if techs.is_empty() {
            out.push(DaemonOutput::App(AppEvent::ConnectFailed {
                device,
                service,
                error: PeerHoodError::Unreachable(device),
            }));
            return;
        }
        let first = techs.remove(0);
        self.start_attempt(
            now,
            device,
            service,
            first,
            techs,
            AttemptPurpose::NewConnection,
            None,
            0,
            out,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn start_attempt(
        &mut self,
        now: SimTime,
        device: DeviceId,
        service: String,
        technology: Technology,
        fallbacks: Vec<Technology>,
        purpose: AttemptPurpose,
        resume: Option<ResumeToken>,
        tries: u32,
        out: &mut Vec<DaemonOutput>,
    ) {
        let attempt = AttemptId::new(self.next_attempt);
        self.next_attempt += 1;
        self.attempts.insert(
            attempt,
            Attempt {
                device,
                service: service.clone(),
                technology,
                fallbacks,
                purpose,
                tries,
            },
        );
        if let Some(policy) = self.config.recovery {
            self.attempt_deadlines
                .insert(attempt, now + policy.connect_timeout);
        }
        out.push(DaemonOutput::Plugin(PluginCommand::OpenConnection {
            attempt,
            device,
            service,
            technology,
            resume,
        }));
    }

    fn handle_send(&mut self, conn: ConnId, payload: Bytes, out: &mut Vec<DaemonOutput>) {
        match self.conns.get_mut(&conn) {
            Some(state) => {
                // During a proactive (make-before-break) handover the old
                // link is still up and keeps carrying traffic; only a
                // link-less connection buffers.
                if state.link.is_none() {
                    state.buffer.push(payload);
                } else if let Some(link) = state.link {
                    out.push(DaemonOutput::Plugin(PluginCommand::SendFrame {
                        link,
                        payload,
                    }));
                }
            }
            None => {
                // Sending on a dead connection: report closure once more so
                // the application can clean up.
                out.push(DaemonOutput::App(AppEvent::Closed {
                    conn,
                    reason: CloseReason::LinkLost,
                }));
            }
        }
    }

    // ------------------------------------------------------------------
    // Plugin events
    // ------------------------------------------------------------------

    fn handle_plugin(&mut self, now: SimTime, ev: PluginEvent, out: &mut Vec<DaemonOutput>) {
        match ev {
            PluginEvent::InquiryResponse { technology, device } => {
                self.record_device(device, technology, now, out);
            }
            PluginEvent::InquiryComplete { technology } => {
                if let Some(st) = self.inquiries.get_mut(technology) {
                    st.running = false;
                    st.next_start = st.next_start.max(now);
                }
            }
            PluginEvent::ServiceQuery { device } => {
                out.push(DaemonOutput::Plugin(PluginCommand::ServiceQueryReply {
                    device,
                    services: self.services.to_vec(),
                }));
            }
            PluginEvent::ServiceReply { device, services } => {
                self.neighbors
                    .record_services(device, services.clone(), now);
                if let Some(deadline) = self.query_deadlines.remove(&device) {
                    if deadline.tries > 0 {
                        // The answer only arrived because a retry round
                        // re-asked: the query recovered.
                        self.recovery_stats.resumed += 1;
                    }
                }
                if let Some(waiting) = self.pending_service_queries.remove(&device) {
                    for _ in 0..waiting {
                        out.push(DaemonOutput::App(AppEvent::ServiceList {
                            device,
                            services: services.clone(),
                            stale: false,
                        }));
                    }
                }
            }
            PluginEvent::ConnectResult { attempt, result } => {
                self.handle_connect_result(now, attempt, result, out);
            }
            PluginEvent::IncomingConnection {
                link,
                device,
                service,
                technology,
                resume,
            } => {
                // An incoming connection proves the device is present.
                self.record_device(device.clone(), technology, now, out);
                self.handle_incoming(link, device.id, service, technology, resume, out);
            }
            PluginEvent::Frame { link, payload } => {
                if let Some(conn) = self.link_index.get(&link) {
                    out.push(DaemonOutput::App(AppEvent::Data {
                        conn: *conn,
                        payload,
                    }));
                }
            }
            PluginEvent::PeerClosed { link } => {
                if let Some(conn) = self.link_index.remove(&link) {
                    if let Some(state) = self.conns.get_mut(&conn) {
                        state.link = None;
                    }
                    self.drop_conn(conn, CloseReason::PeerClose, out);
                }
            }
            PluginEvent::LinkDown { link } => {
                self.handle_link_down(now, link, out);
            }
            PluginEvent::LinkDegraded { link } => {
                self.handle_link_degraded(now, link, out);
            }
        }
    }

    /// Make-before-break: the link still carries traffic but is weakening;
    /// the initiator starts migrating to a stronger technology while the
    /// old link keeps working (Table 3's reaction to "weakening").
    fn handle_link_degraded(&mut self, now: SimTime, link: LinkId, out: &mut Vec<DaemonOutput>) {
        if !self.config.seamless_connectivity {
            return;
        }
        let Some(&conn) = self.link_index.get(&link) else {
            return;
        };
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        // Only the initiator migrates, and only once per episode.
        if !state.initiator || state.handing_over {
            return;
        }
        let failing_tech = state.technology;
        let device = state.device;
        let service = state.service.clone();
        let resume = state.resume;
        let mut alternatives: Vec<Technology> = self
            .neighbors
            .get(device)
            .map(|e| e.visible_technologies())
            .unwrap_or_default()
            .into_iter()
            .filter(|t| *t != failing_tech)
            .collect();
        if alternatives.is_empty() {
            return; // nothing to migrate to; ride the old link down
        }
        let Some(state) = self.conns.get_mut(&conn) else {
            return; // connection vanished between the lookups
        };
        state.handing_over = true;
        let first = alternatives.remove(0);
        self.start_attempt(
            now,
            device,
            service,
            first,
            alternatives,
            AttemptPurpose::Handover {
                conn,
                from: failing_tech,
            },
            Some(resume),
            0,
            out,
        );
    }

    fn record_device(
        &mut self,
        device: crate::types::DeviceInfo,
        technology: Technology,
        now: SimTime,
        out: &mut Vec<DaemonOutput>,
    ) {
        if device.id == self.config.device.id {
            return;
        }
        let outcome = self
            .neighbors
            .record_sighting(device.clone(), technology, now);
        if outcome == SightingOutcome::NewDevice {
            if self.monitors.contains(&device.id) {
                out.push(DaemonOutput::App(AppEvent::MonitorAlert {
                    device: device.clone(),
                    appeared: true,
                }));
            }
            out.push(DaemonOutput::App(AppEvent::DeviceAppeared(device.clone())));
            if self.config.auto_service_discovery {
                out.push(DaemonOutput::Plugin(PluginCommand::QueryServices {
                    device: device.id,
                    technology,
                }));
            }
        }
    }

    fn handle_connect_result(
        &mut self,
        now: SimTime,
        attempt: AttemptId,
        result: Result<LinkId, String>,
        out: &mut Vec<DaemonOutput>,
    ) {
        let Some(att) = self.attempts.remove(&attempt) else {
            // Late result for an attempt already timed out and replaced.
            return;
        };
        self.attempt_deadlines.remove(&attempt);
        if result.is_ok() && att.tries > 0 {
            self.recovery_stats.resumed += 1;
        }
        match result {
            Ok(link) => match att.purpose {
                AttemptPurpose::NewConnection => {
                    let conn = ConnId::new(self.next_conn);
                    self.next_conn += 1;
                    let resume = ResumeToken {
                        initiator: self.config.device.id,
                        conn,
                    };
                    self.conns.insert(
                        conn,
                        Conn {
                            device: att.device,
                            service: att.service.clone(),
                            technology: att.technology,
                            link: Some(link),
                            initiator: true,
                            resume,
                            buffer: Vec::new(),
                            handing_over: false,
                            limbo_deadline: None,
                        },
                    );
                    self.link_index.insert(link, conn);
                    out.push(DaemonOutput::App(AppEvent::Connected {
                        conn,
                        device: att.device,
                        service: att.service,
                        technology: att.technology,
                    }));
                }
                AttemptPurpose::Handover { conn, from } => {
                    if let Some(state) = self.conns.get_mut(&conn) {
                        // Finish mutating the connection before touching
                        // `link_index`/`out`, so one lookup suffices.
                        let old_link = state.link.replace(link);
                        state.technology = att.technology;
                        state.handing_over = false;
                        let buffered = std::mem::take(&mut state.buffer);
                        // Make-before-break: if the old link is still alive
                        // (proactive handover), shut it down now that the
                        // replacement is up.
                        if let Some(old_link) = old_link {
                            self.link_index.remove(&old_link);
                            out.push(DaemonOutput::Plugin(PluginCommand::CloseLink {
                                link: old_link,
                            }));
                        }
                        self.link_index.insert(link, conn);
                        out.push(DaemonOutput::App(AppEvent::Handover {
                            conn,
                            from,
                            to: att.technology,
                        }));
                        for payload in buffered {
                            out.push(DaemonOutput::Plugin(PluginCommand::SendFrame {
                                link,
                                payload,
                            }));
                        }
                    } else {
                        // Connection vanished while handing over; close the
                        // fresh link again.
                        out.push(DaemonOutput::Plugin(PluginCommand::CloseLink { link }));
                    }
                }
            },
            Err(reason) => {
                let mut fallbacks = att.fallbacks;
                if let Some(next_tech) = (!fallbacks.is_empty()).then(|| fallbacks.remove(0)) {
                    let resume = match &att.purpose {
                        AttemptPurpose::Handover { conn, .. } => {
                            self.conns.get(conn).map(|c| c.resume)
                        }
                        AttemptPurpose::NewConnection => None,
                    };
                    self.start_attempt(
                        now,
                        att.device,
                        att.service,
                        next_tech,
                        fallbacks,
                        att.purpose,
                        resume,
                        att.tries,
                        out,
                    );
                    return;
                }
                // Every candidate technology failed this round. With a
                // recovery policy and rounds to spare, sleep out the
                // backoff and relaunch the whole sequence — except for a
                // failed *proactive* handover, whose old link is still up
                // and makes a retry pointless churn.
                let proactive = match &att.purpose {
                    AttemptPurpose::Handover { conn, .. } => self
                        .conns
                        .get(conn)
                        .is_some_and(|state| state.link.is_some()),
                    AttemptPurpose::NewConnection => false,
                };
                if let Some(policy) = self.config.recovery {
                    if !proactive && att.tries < policy.max_retries {
                        let at = now + policy.backoff(att.tries);
                        self.pending_retries
                            .entry(at)
                            .or_default()
                            .push(RetryConnect {
                                device: att.device,
                                service: att.service,
                                purpose: att.purpose,
                                tries: att.tries + 1,
                            });
                        return;
                    }
                    self.recovery_stats.gave_up += 1;
                }
                match att.purpose {
                    AttemptPurpose::NewConnection => {
                        out.push(DaemonOutput::App(AppEvent::ConnectFailed {
                            device: att.device,
                            service: att.service,
                            error: PeerHoodError::ConnectFailed {
                                device: att.device,
                                reason,
                            },
                        }));
                    }
                    AttemptPurpose::Handover { conn, .. } => {
                        // A failed *proactive* handover is survivable:
                        // the old link may still be up.
                        match self.conns.get_mut(&conn) {
                            Some(state) if state.link.is_some() => {
                                state.handing_over = false;
                            }
                            _ => self.drop_conn(conn, CloseReason::HandoverFailed, out),
                        }
                    }
                }
            }
        }
    }

    fn handle_incoming(
        &mut self,
        link: LinkId,
        device: DeviceId,
        service: String,
        technology: Technology,
        resume: Option<ResumeToken>,
        out: &mut Vec<DaemonOutput>,
    ) {
        // A resume of a logical connection we still hold?
        if let Some(token) = resume {
            if let Some(&conn) = self.resume_index.get(&token) {
                if let Some(state) = self.conns.get_mut(&conn) {
                    if let Some(old_link) = state.link.take() {
                        self.link_index.remove(&old_link);
                    }
                    let from = state.technology;
                    state.link = Some(link);
                    state.technology = technology;
                    state.handing_over = false;
                    state.limbo_deadline = None;
                    self.link_index.insert(link, conn);
                    out.push(DaemonOutput::Plugin(PluginCommand::AcceptConnection {
                        link,
                    }));
                    out.push(DaemonOutput::App(AppEvent::Handover {
                        conn,
                        from,
                        to: technology,
                    }));
                    return;
                }
            }
        }
        if !self.services.contains(&service) {
            out.push(DaemonOutput::Plugin(PluginCommand::RejectConnection {
                link,
                reason: format!("service {service:?} not registered"),
            }));
            return;
        }
        let conn = ConnId::new(self.next_conn);
        self.next_conn += 1;
        let token = resume.unwrap_or(ResumeToken {
            initiator: device,
            conn,
        });
        self.conns.insert(
            conn,
            Conn {
                device,
                service: service.clone(),
                technology,
                link: Some(link),
                initiator: false,
                resume: token,
                buffer: Vec::new(),
                handing_over: false,
                limbo_deadline: None,
            },
        );
        self.link_index.insert(link, conn);
        self.resume_index.insert(token, conn);
        out.push(DaemonOutput::Plugin(PluginCommand::AcceptConnection {
            link,
        }));
        out.push(DaemonOutput::App(AppEvent::Incoming {
            conn,
            device,
            service,
            technology,
        }));
    }

    fn handle_link_down(&mut self, now: SimTime, link: LinkId, out: &mut Vec<DaemonOutput>) {
        let Some(conn) = self.link_index.remove(&link) else {
            return;
        };
        let Some(state) = self.conns.get_mut(&conn) else {
            return;
        };
        state.link = None;
        if !self.config.seamless_connectivity {
            self.drop_conn(conn, CloseReason::LinkLost, out);
            return;
        }
        if state.handing_over {
            // A (proactive) migration is already in flight; its outcome
            // will resolve this connection either way.
            if !state.initiator && state.limbo_deadline.is_none() {
                state.limbo_deadline = Some(now + HANDOVER_GRACE);
            }
            return;
        }
        if state.initiator {
            let failed_tech = state.technology;
            let device = state.device;
            let service = state.service.clone();
            let resume = state.resume;
            let mut alternatives: Vec<Technology> = self
                .neighbors
                .get(device)
                .map(|e| e.visible_technologies())
                .unwrap_or_default()
                .into_iter()
                .filter(|t| *t != failed_tech)
                .collect();
            if alternatives.is_empty() {
                self.drop_conn(conn, CloseReason::LinkLost, out);
                return;
            }
            let Some(state) = self.conns.get_mut(&conn) else {
                return; // connection vanished between the lookups
            };
            state.handing_over = true;
            let first = alternatives.remove(0);
            self.start_attempt(
                now,
                device,
                service,
                first,
                alternatives,
                AttemptPurpose::Handover {
                    conn,
                    from: failed_tech,
                },
                Some(resume),
                0,
                out,
            );
        } else {
            // Responder: wait in limbo for the initiator to resume.
            state.handing_over = true;
            state.limbo_deadline = Some(now + HANDOVER_GRACE);
        }
    }

    fn drop_conn(&mut self, conn: ConnId, reason: CloseReason, out: &mut Vec<DaemonOutput>) {
        if let Some(state) = self.conns.remove(&conn) {
            if let Some(link) = state.link {
                self.link_index.remove(&link);
            }
            self.resume_index.retain(|_, c| *c != conn);
            out.push(DaemonOutput::App(AppEvent::Closed { conn, reason }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceInfo;
    use crate::types::DeviceInfo;

    fn device(id: u64, name: &str) -> DeviceInfo {
        DeviceInfo::new(DeviceId::new(id), name, Technology::ALL)
    }

    fn daemon() -> Daemon {
        Daemon::new(DaemonConfig::new(device(0, "local")))
    }

    fn tick(d: &mut Daemon, now: SimTime) -> Vec<DaemonOutput> {
        let mut out = Vec::new();
        d.handle(now, DaemonInput::Tick, &mut out);
        out
    }

    fn feed(d: &mut Daemon, now: SimTime, input: DaemonInput) -> Vec<DaemonOutput> {
        let mut out = Vec::new();
        d.handle(now, input, &mut out);
        out
    }

    fn plugin_cmds(out: &[DaemonOutput]) -> Vec<&PluginCommand> {
        out.iter()
            .filter_map(|o| match o {
                DaemonOutput::Plugin(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    fn app_events(out: &[DaemonOutput]) -> Vec<&AppEvent> {
        out.iter()
            .filter_map(|o| match o {
                DaemonOutput::App(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Walk a daemon through discovering `dev` over `tech`.
    fn discover(d: &mut Daemon, dev: &DeviceInfo, tech: Technology, now: SimTime) {
        feed(
            d,
            now,
            DaemonInput::Plugin(PluginEvent::InquiryResponse {
                technology: tech,
                device: dev.clone(),
            }),
        );
    }

    #[test]
    fn first_tick_starts_inquiries_on_all_equipped_technologies() {
        let mut d = daemon();
        let out = tick(&mut d, SimTime::ZERO);
        let cmds = plugin_cmds(&out);
        let techs: Vec<Technology> = cmds
            .iter()
            .filter_map(|c| match c {
                PluginCommand::StartInquiry { technology } => Some(*technology),
                _ => None,
            })
            .collect();
        assert_eq!(techs.len(), 3, "{out:?}");
    }

    #[test]
    fn inquiry_not_restarted_while_running() {
        let mut d = daemon();
        tick(&mut d, SimTime::ZERO);
        let out = tick(&mut d, SimTime::from_secs(1));
        assert!(plugin_cmds(&out).is_empty(), "{out:?}");
    }

    #[test]
    fn inquiry_restarts_after_interval() {
        let mut d = daemon();
        tick(&mut d, SimTime::ZERO);
        // Complete all three inquiries.
        for tech in Technology::ALL {
            feed(
                &mut d,
                SimTime::from_secs(11),
                DaemonInput::Plugin(PluginEvent::InquiryComplete { technology: tech }),
            );
        }
        // Bluetooth interval is 15 s; at t=16 s a new round starts.
        let out = tick(&mut d, SimTime::from_secs(16));
        let has_bt = plugin_cmds(&out).iter().any(|c| {
            matches!(
                c,
                PluginCommand::StartInquiry {
                    technology: Technology::Bluetooth
                }
            )
        });
        assert!(has_bt, "{out:?}");
    }

    #[test]
    fn new_device_raises_appeared_and_service_query() {
        let mut d = daemon();
        let dev = device(7, "remote");
        let out = feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::InquiryResponse {
                technology: Technology::Bluetooth,
                device: dev.clone(),
            }),
        );
        assert!(app_events(&out)
            .iter()
            .any(|e| matches!(e, AppEvent::DeviceAppeared(i) if i.id == dev.id)));
        assert!(plugin_cmds(&out).iter().any(
            |c| matches!(c, PluginCommand::QueryServices { device, .. } if *device == dev.id)
        ));
        // Second sighting: no repeat events.
        let out2 = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::InquiryResponse {
                technology: Technology::Bluetooth,
                device: dev,
            }),
        );
        assert!(app_events(&out2).is_empty());
    }

    #[test]
    fn own_echo_is_ignored() {
        let mut d = daemon();
        let me = device(0, "local");
        let out = feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::InquiryResponse {
                technology: Technology::Bluetooth,
                device: me,
            }),
        );
        assert!(app_events(&out).is_empty());
        assert!(d.neighbors().is_empty());
    }

    #[test]
    fn device_list_request_answered_synchronously() {
        let mut d = daemon();
        discover(
            &mut d,
            &device(7, "remote"),
            Technology::Bluetooth,
            SimTime::from_secs(1),
        );
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::GetDeviceList),
        );
        match app_events(&out)[0] {
            AppEvent::DeviceList(list) => {
                assert_eq!(list.len(), 1);
                assert_eq!(&*list[0].name, "remote");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn service_registration_and_remote_query() {
        let mut d = daemon();
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new(
                "PeerHoodCommunity",
            ))),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::ServiceRegistration { result: Ok(()), .. }
        ));
        // A remote service query is answered from the registry.
        let out = feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::ServiceQuery {
                device: DeviceId::new(9),
            }),
        );
        match plugin_cmds(&out)[0] {
            PluginCommand::ServiceQueryReply { device, services } => {
                assert_eq!(*device, DeviceId::new(9));
                assert_eq!(services[0].name(), "PeerHoodCommunity");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_service_registration_reports_error() {
        let mut d = daemon();
        feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new("svc"))),
        );
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new("svc"))),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::ServiceRegistration { result: Err(_), .. }
        ));
    }

    #[test]
    fn get_service_list_uses_cache_then_query() {
        let mut d = daemon();
        let dev = device(7, "remote");
        discover(&mut d, &dev, Technology::Bluetooth, SimTime::from_secs(1));
        // No cache yet: a QueryServices goes out, no immediate answer.
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::GetServiceList { device: dev.id }),
        );
        assert!(app_events(&out).is_empty());
        assert!(!plugin_cmds(&out).is_empty());
        // Reply arrives: the pending application request is answered.
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::ServiceReply {
                device: dev.id,
                services: vec![ServiceInfo::new("PeerHoodCommunity")],
            }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::ServiceList { services, .. } if services.len() == 1
        ));
        // Cache is now warm: answered synchronously.
        let out = feed(
            &mut d,
            SimTime::from_secs(4),
            DaemonInput::App(AppRequest::GetServiceList { device: dev.id }),
        );
        assert!(matches!(app_events(&out)[0], AppEvent::ServiceList { .. }));
    }

    #[test]
    fn get_service_list_for_unknown_device_is_empty() {
        let mut d = daemon();
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::GetServiceList {
                device: DeviceId::new(99),
            }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::ServiceList { services, .. } if services.is_empty()
        ));
    }

    #[test]
    fn connect_to_unknown_device_fails_immediately() {
        let mut d = daemon();
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::Connect {
                device: DeviceId::new(5),
                service: "svc".into(),
            }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::ConnectFailed {
                error: PeerHoodError::UnknownDevice(_),
                ..
            }
        ));
    }

    #[test]
    fn connect_prefers_bluetooth_then_falls_back() {
        let mut d = daemon();
        let dev = device(7, "remote");
        discover(&mut d, &dev, Technology::Bluetooth, SimTime::from_secs(1));
        discover(&mut d, &dev, Technology::Gprs, SimTime::from_secs(1));
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::Connect {
                device: dev.id,
                service: "svc".into(),
            }),
        );
        let (attempt, tech) = match plugin_cmds(&out)[0] {
            PluginCommand::OpenConnection {
                attempt,
                technology,
                ..
            } => (*attempt, *technology),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(tech, Technology::Bluetooth);
        // Bluetooth fails -> GPRS attempt follows automatically.
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::ConnectResult {
                attempt,
                result: Err("radio busy".into()),
            }),
        );
        let (attempt2, tech2) = match plugin_cmds(&out)[0] {
            PluginCommand::OpenConnection {
                attempt,
                technology,
                ..
            } => (*attempt, *technology),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(tech2, Technology::Gprs);
        // GPRS also fails -> ConnectFailed surfaces.
        let out = feed(
            &mut d,
            SimTime::from_secs(4),
            DaemonInput::Plugin(PluginEvent::ConnectResult {
                attempt: attempt2,
                result: Err("proxy down".into()),
            }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::ConnectFailed { .. }
        ));
    }

    /// Helper: establish an initiator-side connection and return its ConnId.
    fn establish(d: &mut Daemon, dev: &DeviceInfo, link: LinkId, now: SimTime) -> ConnId {
        discover(d, dev, Technology::Bluetooth, now);
        let out = feed(
            d,
            now,
            DaemonInput::App(AppRequest::Connect {
                device: dev.id,
                service: "svc".into(),
            }),
        );
        let attempt = match plugin_cmds(&out)[0] {
            PluginCommand::OpenConnection { attempt, .. } => *attempt,
            other => panic!("unexpected {other:?}"),
        };
        let out = feed(
            d,
            now,
            DaemonInput::Plugin(PluginEvent::ConnectResult {
                attempt,
                result: Ok(link),
            }),
        );
        match app_events(&out)[0] {
            AppEvent::Connected { conn, .. } => *conn,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_and_receive_frames() {
        let mut d = daemon();
        let dev = device(7, "remote");
        let link = LinkId::new(100);
        let conn = establish(&mut d, &dev, link, SimTime::from_secs(1));

        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::Send {
                conn,
                payload: Bytes::from_static(b"hi"),
            }),
        );
        assert!(matches!(
            plugin_cmds(&out)[0],
            PluginCommand::SendFrame { .. }
        ));

        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::Frame {
                link,
                payload: Bytes::from_static(b"yo"),
            }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::Data { conn: c, .. } if *c == conn
        ));
    }

    #[test]
    fn incoming_connection_requires_registered_service() {
        let mut d = daemon();
        let dev = device(7, "remote");
        let out = feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::IncomingConnection {
                link: LinkId::new(1),
                device: dev.clone(),
                service: "nope".into(),
                technology: Technology::Bluetooth,
                resume: None,
            }),
        );
        assert!(plugin_cmds(&out)
            .iter()
            .any(|c| matches!(c, PluginCommand::RejectConnection { .. })));

        feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new("svc"))),
        );
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::IncomingConnection {
                link: LinkId::new(2),
                device: dev,
                service: "svc".into(),
                technology: Technology::Bluetooth,
                resume: None,
            }),
        );
        assert!(plugin_cmds(&out)
            .iter()
            .any(|c| matches!(c, PluginCommand::AcceptConnection { .. })));
        assert!(app_events(&out)
            .iter()
            .any(|e| matches!(e, AppEvent::Incoming { .. })));
    }

    #[test]
    fn incoming_connection_records_sighting() {
        let mut d = daemon();
        feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new("svc"))),
        );
        let dev = device(7, "remote");
        let out = feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::IncomingConnection {
                link: LinkId::new(1),
                device: dev.clone(),
                service: "svc".into(),
                technology: Technology::Bluetooth,
                resume: None,
            }),
        );
        assert!(d.neighbors().contains(dev.id));
        assert!(app_events(&out)
            .iter()
            .any(|e| matches!(e, AppEvent::DeviceAppeared(_))));
    }

    #[test]
    fn close_emits_closed_and_closes_link() {
        let mut d = daemon();
        let dev = device(7, "remote");
        let conn = establish(&mut d, &dev, LinkId::new(5), SimTime::from_secs(1));
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::Close { conn }),
        );
        assert!(plugin_cmds(&out)
            .iter()
            .any(|c| matches!(c, PluginCommand::CloseLink { .. })));
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::Closed {
                reason: CloseReason::LocalClose,
                ..
            }
        ));
        assert_eq!(d.connection_count(), 0);
    }

    #[test]
    fn peer_close_notifies_app() {
        let mut d = daemon();
        let dev = device(7, "remote");
        let link = LinkId::new(5);
        let conn = establish(&mut d, &dev, link, SimTime::from_secs(1));
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::PeerClosed { link }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::Closed {
                conn: c,
                reason: CloseReason::PeerClose,
            } if *c == conn
        ));
    }

    #[test]
    fn link_down_triggers_handover_when_alternative_exists() {
        let mut d = daemon();
        let dev = device(7, "remote");
        let link = LinkId::new(5);
        // Seen on both Bluetooth and GPRS.
        discover(&mut d, &dev, Technology::Gprs, SimTime::from_secs(1));
        let conn = establish(&mut d, &dev, link, SimTime::from_secs(1));

        // Queue one frame mid-handover to verify buffering.
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDown { link }),
        );
        let (attempt, resume) = match plugin_cmds(&out)[0] {
            PluginCommand::OpenConnection {
                attempt,
                technology,
                resume,
                ..
            } => {
                assert_eq!(*technology, Technology::Gprs);
                (*attempt, *resume)
            }
            other => panic!("unexpected {other:?}"),
        };
        assert!(resume.is_some(), "handover must carry a resume token");

        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::Send {
                conn,
                payload: Bytes::from_static(b"queued"),
            }),
        );
        assert!(plugin_cmds(&out).is_empty(), "buffered during handover");

        // New link succeeds: Handover event + buffered frame flushed.
        let new_link = LinkId::new(6);
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::ConnectResult {
                attempt,
                result: Ok(new_link),
            }),
        );
        assert!(app_events(&out).iter().any(|e| matches!(
            e,
            AppEvent::Handover {
                from: Technology::Bluetooth,
                to: Technology::Gprs,
                ..
            }
        )));
        assert!(plugin_cmds(&out).iter().any(
            |c| matches!(c, PluginCommand::SendFrame { link, payload } if *link == new_link && payload == "queued")
        ));
    }

    #[test]
    fn degraded_link_triggers_make_before_break() {
        let mut d = daemon();
        let dev = device(7, "remote");
        let link = LinkId::new(5);
        discover(&mut d, &dev, Technology::Wlan, SimTime::from_secs(1));
        let conn = establish(&mut d, &dev, link, SimTime::from_secs(1));

        // The plugin warns that the Bluetooth link is weakening.
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDegraded { link }),
        );
        let attempt = match plugin_cmds(&out)[0] {
            PluginCommand::OpenConnection {
                attempt,
                technology,
                resume,
                ..
            } => {
                assert_eq!(*technology, Technology::Wlan);
                assert!(resume.is_some());
                *attempt
            }
            other => panic!("unexpected {other:?}"),
        };

        // Old link still carries traffic during the migration.
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::Send {
                conn,
                payload: Bytes::from_static(b"mid-handover"),
            }),
        );
        assert!(
            plugin_cmds(&out)
                .iter()
                .any(|c| matches!(c, PluginCommand::SendFrame { link: l, .. } if *l == link)),
            "traffic keeps flowing on the old link: {out:?}"
        );

        // New link established: old link is closed, Handover raised.
        let new_link = LinkId::new(6);
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::ConnectResult {
                attempt,
                result: Ok(new_link),
            }),
        );
        assert!(plugin_cmds(&out)
            .iter()
            .any(|c| matches!(c, PluginCommand::CloseLink { link: l } if *l == link)));
        assert!(app_events(&out).iter().any(|e| matches!(
            e,
            AppEvent::Handover {
                to: Technology::Wlan,
                ..
            }
        )));
        // Traffic now uses the new link.
        let out = feed(
            &mut d,
            SimTime::from_secs(4),
            DaemonInput::App(AppRequest::Send {
                conn,
                payload: Bytes::from_static(b"after"),
            }),
        );
        assert!(plugin_cmds(&out)
            .iter()
            .any(|c| matches!(c, PluginCommand::SendFrame { link: l, .. } if *l == new_link)));
    }

    #[test]
    fn degraded_link_without_alternative_rides_it_out() {
        let mut d = daemon();
        let dev = DeviceInfo::new(DeviceId::new(7), "remote", [Technology::Bluetooth]);
        let link = LinkId::new(5);
        let conn = establish(&mut d, &dev, link, SimTime::from_secs(1));
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDegraded { link }),
        );
        assert!(plugin_cmds(&out).is_empty(), "{out:?}");
        assert!(app_events(&out).is_empty());
        // The connection still works.
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::App(AppRequest::Send {
                conn,
                payload: Bytes::from_static(b"still here"),
            }),
        );
        assert!(!plugin_cmds(&out).is_empty());
    }

    #[test]
    fn failed_proactive_handover_keeps_the_live_link() {
        let mut d = daemon();
        let dev = device(7, "remote");
        let link = LinkId::new(5);
        discover(&mut d, &dev, Technology::Gprs, SimTime::from_secs(1));
        let conn = establish(&mut d, &dev, link, SimTime::from_secs(1));
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDegraded { link }),
        );
        let attempt = match plugin_cmds(&out)[0] {
            PluginCommand::OpenConnection { attempt, .. } => *attempt,
            other => panic!("unexpected {other:?}"),
        };
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::ConnectResult {
                attempt,
                result: Err("proxy busy".into()),
            }),
        );
        // The connection survives on the (still live) old link.
        assert!(
            app_events(&out)
                .iter()
                .all(|e| !matches!(e, AppEvent::Closed { .. })),
            "{out:?}"
        );
        assert_eq!(d.connection_count(), 1);
        let out = feed(
            &mut d,
            SimTime::from_secs(4),
            DaemonInput::App(AppRequest::Send {
                conn,
                payload: Bytes::from_static(b"x"),
            }),
        );
        assert!(plugin_cmds(&out)
            .iter()
            .any(|c| matches!(c, PluginCommand::SendFrame { link: l, .. } if *l == link)));
    }

    #[test]
    fn link_down_without_alternative_closes() {
        let mut d = daemon();
        let dev = DeviceInfo::new(DeviceId::new(7), "remote", [Technology::Bluetooth]);
        let link = LinkId::new(5);
        let conn = establish(&mut d, &dev, link, SimTime::from_secs(1));
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDown { link }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::Closed {
                conn: c,
                reason: CloseReason::LinkLost,
            } if *c == conn
        ));
    }

    #[test]
    fn link_down_with_seamless_disabled_closes() {
        let cfg = DaemonConfig::new(device(0, "local")).with_seamless_connectivity(false);
        let mut d = Daemon::new(cfg);
        let dev = device(7, "remote");
        discover(&mut d, &dev, Technology::Gprs, SimTime::from_secs(1));
        let link = LinkId::new(5);
        let _conn = establish(&mut d, &dev, link, SimTime::from_secs(1));
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDown { link }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::Closed {
                reason: CloseReason::LinkLost,
                ..
            }
        ));
    }

    #[test]
    fn responder_rebinds_on_resume() {
        let mut d = daemon();
        feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new("svc"))),
        );
        let dev = device(7, "remote");
        let token = ResumeToken {
            initiator: dev.id,
            conn: ConnId::new(42),
        };
        // Initial connection carries the initiator's token.
        let out = feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::IncomingConnection {
                link: LinkId::new(1),
                device: dev.clone(),
                service: "svc".into(),
                technology: Technology::Bluetooth,
                resume: Some(token),
            }),
        );
        let conn = match app_events(&out)
            .iter()
            .find(|e| matches!(e, AppEvent::Incoming { .. }))
            .unwrap()
        {
            AppEvent::Incoming { conn, .. } => *conn,
            _ => unreachable!(),
        };
        // Link drops; responder waits in limbo.
        feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDown {
                link: LinkId::new(1),
            }),
        );
        assert_eq!(d.connection_count(), 1, "limbo keeps the connection");
        // Resume arrives over GPRS with the same token: rebind, no new
        // Incoming event.
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::IncomingConnection {
                link: LinkId::new(2),
                device: dev,
                service: "svc".into(),
                technology: Technology::Gprs,
                resume: Some(token),
            }),
        );
        assert!(app_events(&out)
            .iter()
            .all(|e| !matches!(e, AppEvent::Incoming { .. })));
        assert!(app_events(&out).iter().any(|e| matches!(
            e,
            AppEvent::Handover { conn: c, to: Technology::Gprs, .. } if *c == conn
        )));
        // Frames on the new link reach the same logical connection.
        let out = feed(
            &mut d,
            SimTime::from_secs(4),
            DaemonInput::Plugin(PluginEvent::Frame {
                link: LinkId::new(2),
                payload: Bytes::from_static(b"x"),
            }),
        );
        assert!(matches!(
            app_events(&out)[0],
            AppEvent::Data { conn: c, .. } if *c == conn
        ));
    }

    #[test]
    fn responder_limbo_times_out() {
        let mut d = daemon();
        feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new("svc"))),
        );
        let dev = device(7, "remote");
        feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::IncomingConnection {
                link: LinkId::new(1),
                device: dev,
                service: "svc".into(),
                technology: Technology::Bluetooth,
                resume: None,
            }),
        );
        feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDown {
                link: LinkId::new(1),
            }),
        );
        assert_eq!(d.connection_count(), 1);
        let out = tick(&mut d, SimTime::from_secs(2) + HANDOVER_GRACE);
        assert!(app_events(&out).iter().any(|e| matches!(
            e,
            AppEvent::Closed {
                reason: CloseReason::HandoverFailed,
                ..
            }
        )));
        assert_eq!(d.connection_count(), 0);
    }

    #[test]
    fn neighbor_expiry_raises_disappeared_and_monitor_alert() {
        let mut d = daemon();
        let dev = device(7, "remote");
        discover(&mut d, &dev, Technology::Bluetooth, SimTime::from_secs(1));
        feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::App(AppRequest::Monitor { device: dev.id }),
        );
        let ttl = DaemonConfig::new(device(0, "x")).neighbor_ttl;
        let out = tick(&mut d, SimTime::from_secs(1) + ttl);
        let evs = app_events(&out);
        assert!(evs
            .iter()
            .any(|e| matches!(e, AppEvent::DeviceDisappeared(i) if i.id == dev.id)));
        assert!(evs.iter().any(|e| matches!(
            e,
            AppEvent::MonitorAlert {
                appeared: false,
                ..
            }
        )));
    }

    #[test]
    fn monitor_alert_on_reappearance() {
        let mut d = daemon();
        let dev = device(7, "remote");
        feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::Monitor { device: dev.id }),
        );
        let out = feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::InquiryResponse {
                technology: Technology::Bluetooth,
                device: dev.clone(),
            }),
        );
        assert!(app_events(&out)
            .iter()
            .any(|e| matches!(e, AppEvent::MonitorAlert { appeared: true, .. })));
        // Unmonitor stops alerts.
        feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::Unmonitor { device: dev.id }),
        );
        let ttl = DaemonConfig::new(device(0, "x")).neighbor_ttl;
        let out = tick(&mut d, SimTime::from_secs(1) + ttl);
        assert!(app_events(&out)
            .iter()
            .all(|e| !matches!(e, AppEvent::MonitorAlert { .. })));
    }

    #[test]
    fn wake_is_scheduled_once_inquiries_complete() {
        let mut d = daemon();
        // While all inquiries are in flight the daemon is purely
        // event-driven: no wake is necessary.
        let out = tick(&mut d, SimTime::from_secs(5));
        assert!(
            out.iter().all(|o| !matches!(o, DaemonOutput::WakeAt(_))),
            "{out:?}"
        );
        // As soon as one inquiry completes, its next round needs a timer.
        let out = feed(
            &mut d,
            SimTime::from_secs(11),
            DaemonInput::Plugin(PluginEvent::InquiryComplete {
                technology: Technology::Wlan,
            }),
        );
        let wake = out.iter().find_map(|o| match o {
            DaemonOutput::WakeAt(t) => Some(*t),
            _ => None,
        });
        assert!(wake.expect("wake expected") > SimTime::from_secs(11));
    }

    #[test]
    fn concurrent_service_list_requests_each_get_an_answer() {
        let mut d = daemon();
        let dev = device(7, "remote");
        discover(&mut d, &dev, Technology::Bluetooth, SimTime::from_secs(1));
        // Two app requests before the reply: one wire query, two answers.
        let out1 = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::GetServiceList { device: dev.id }),
        );
        assert_eq!(plugin_cmds(&out1).len(), 1);
        let out2 = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::GetServiceList { device: dev.id }),
        );
        assert!(
            plugin_cmds(&out2).is_empty(),
            "second request shares the query"
        );
        let out = feed(
            &mut d,
            SimTime::from_secs(3),
            DaemonInput::Plugin(PluginEvent::ServiceReply {
                device: dev.id,
                services: vec![ServiceInfo::new("svc")],
            }),
        );
        let answers = app_events(&out)
            .iter()
            .filter(|e| matches!(e, AppEvent::ServiceList { .. }))
            .count();
        assert_eq!(answers, 2);
    }

    #[test]
    fn expiry_answers_pending_service_queries_with_empty_list() {
        let mut d = daemon();
        let dev = device(7, "remote");
        discover(&mut d, &dev, Technology::Bluetooth, SimTime::from_secs(1));
        feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::App(AppRequest::GetServiceList { device: dev.id }),
        );
        let ttl = DaemonConfig::new(device(0, "x")).neighbor_ttl;
        let out = tick(&mut d, SimTime::from_secs(1) + ttl);
        assert!(app_events(&out).iter().any(|e| matches!(
            e,
            AppEvent::ServiceList { services, .. } if services.is_empty()
        )));
    }

    #[test]
    fn unregistering_a_service_rejects_future_incoming_connections() {
        let mut d = daemon();
        feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new("svc"))),
        );
        feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::App(AppRequest::UnregisterService("svc".into())),
        );
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::IncomingConnection {
                link: LinkId::new(1),
                device: device(7, "remote"),
                service: "svc".into(),
                technology: Technology::Bluetooth,
                resume: None,
            }),
        );
        assert!(plugin_cmds(&out)
            .iter()
            .any(|c| matches!(c, PluginCommand::RejectConnection { .. })));
    }

    #[test]
    fn frames_on_unknown_links_are_ignored() {
        let mut d = daemon();
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::Plugin(PluginEvent::Frame {
                link: LinkId::new(99),
                payload: Bytes::from_static(b"stray"),
            }),
        );
        assert!(app_events(&out).is_empty());
        // And stray link-down / peer-closed notifications likewise.
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::Plugin(PluginEvent::LinkDown {
                link: LinkId::new(98),
            }),
        );
        assert!(app_events(&out).is_empty());
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::Plugin(PluginEvent::PeerClosed {
                link: LinkId::new(97),
            }),
        );
        assert!(app_events(&out).is_empty());
    }

    #[test]
    fn connect_result_for_forgotten_attempt_is_ignored() {
        let mut d = daemon();
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::Plugin(PluginEvent::ConnectResult {
                attempt: AttemptId::new(55),
                result: Ok(LinkId::new(1)),
            }),
        );
        assert!(app_events(&out).is_empty());
        assert_eq!(d.connection_count(), 0);
    }

    #[test]
    fn send_on_dead_connection_reports_closed() {
        let mut d = daemon();
        let out = feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::Send {
                conn: ConnId::new(77),
                payload: Bytes::from_static(b"x"),
            }),
        );
        assert!(matches!(app_events(&out)[0], AppEvent::Closed { .. }));
    }

    #[test]
    fn hostile_link_events_for_unknown_state_never_panic() {
        // Regression for the `panic-in-dispatch` lint: every link-shaped
        // event referencing state the daemon has never seen (or has already
        // dropped) must be absorbed, not unwrap its way to a panic.
        let mut d = daemon();
        let ghost = LinkId::new(999);
        for ev in [
            PluginEvent::LinkDegraded { link: ghost },
            PluginEvent::LinkDown { link: ghost },
            PluginEvent::PeerClosed { link: ghost },
            PluginEvent::Frame {
                link: ghost,
                payload: Bytes::from_static(b"junk"),
            },
            PluginEvent::ConnectResult {
                attempt: AttemptId::new(404),
                result: Err("no such radio".into()),
            },
            PluginEvent::InquiryComplete {
                technology: Technology::Wlan,
            },
        ] {
            feed(&mut d, SimTime::from_secs(1), DaemonInput::Plugin(ev));
        }
        assert_eq!(d.connection_count(), 0);
    }

    #[test]
    fn degraded_link_on_responder_side_does_not_migrate_or_panic() {
        // The responder never initiates handover; a weakening link on its
        // side must leave the connection untouched (and, per the lint, the
        // degraded path must tolerate the conn-less case gracefully).
        let mut d = daemon();
        feed(
            &mut d,
            SimTime::ZERO,
            DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new("svc"))),
        );
        let dev = device(9, "peer");
        discover(&mut d, &dev, Technology::Wlan, SimTime::ZERO);
        let link = LinkId::new(31);
        feed(
            &mut d,
            SimTime::from_secs(1),
            DaemonInput::Plugin(PluginEvent::IncomingConnection {
                link,
                device: dev,
                service: "svc".into(),
                technology: Technology::Wlan,
                resume: None,
            }),
        );
        let before = d.connection_count();
        assert_eq!(before, 1);
        let out = feed(
            &mut d,
            SimTime::from_secs(2),
            DaemonInput::Plugin(PluginEvent::LinkDegraded { link }),
        );
        assert_eq!(d.connection_count(), before);
        assert!(plugin_cmds(&out)
            .iter()
            .all(|c| !matches!(c, PluginCommand::OpenConnection { .. })));
    }
}
