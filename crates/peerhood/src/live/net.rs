//! In-process network of daemons exchanging data over real loopback TCP.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use codec::{Bytes, Wire};

use netsim::{SimTime, Technology, Trace};

use crate::app::{AppCtx, Application};
use crate::config::DaemonConfig;
use crate::daemon::{Daemon, DaemonInput, DaemonOutput};
use crate::library::Library;
use crate::plugin::{PluginCommand, PluginEvent};
use crate::types::{AttemptId, DeviceId, DeviceInfo, LinkId};

use super::config::LiveConfig;
use super::wire::{frame, FrameBuf, Handshake, VERDICT_ACCEPT, VERDICT_REJECT};

/// A socket together with its receive buffer.
#[derive(Debug)]
struct Sock {
    stream: TcpStream,
    buf: FrameBuf,
}

impl Sock {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Sock {
            stream,
            buf: FrameBuf::new(),
        })
    }

    /// Reads all currently available bytes; returns `true` on orderly EOF.
    fn pump(&mut self) -> io::Result<bool> {
        let mut tmp = [0u8; 4096];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(true),
                Ok(n) => self.buf.extend(&tmp[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Pops one complete length-prefixed frame from the buffer, if present.
    /// A hostile length header surfaces as `InvalidData` — the link must
    /// be dropped, same as any other socket error.
    fn pop_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.buf
            .pop()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Writes one length-prefixed frame, spinning briefly on `WouldBlock`
    /// (loopback drains within microseconds).
    fn write_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        let msg = frame(payload);
        let mut off = 0;
        while off < msg.len() {
            match self.stream.write(&msg[off..]) {
                Ok(n) => off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::yield_now(),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[derive(Debug)]
struct OutPending {
    sock: Sock,
    attempt: AttemptId,
}

struct LiveNode<A> {
    name: String,
    daemon: Daemon,
    app: A,
    lib: Library,
    listener: TcpListener,
    addr: SocketAddr,
    /// Accepted sockets whose handshake frame has not fully arrived yet.
    greeting: Vec<Sock>,
    /// Incoming links announced to the daemon, awaiting accept/reject.
    pending_in: HashMap<LinkId, Sock>,
    /// Outgoing links awaiting the responder's verdict frame.
    pending_out: HashMap<LinkId, OutPending>,
    /// Established links.
    links: HashMap<LinkId, Sock>,
    next_link: u64,
    wake_at: Option<SimTime>,
    timers: Vec<(SimTime, u64)>,
}

impl<A> LiveNode<A> {
    fn alloc_link(&mut self) -> LinkId {
        let id = LinkId::new(self.next_link);
        self.next_link += 1;
        id
    }
}

/// An in-process neighborhood of PeerHood devices whose data connections run
/// over real loopback TCP.
///
/// Discovery and SDP queries are routed in-process (they model the WLAN
/// plugin's broadcast machinery); connection establishment, frames and
/// close/loss signalling all travel through genuine `TcpStream`s. Virtual
/// time is wall time since construction.
///
/// Built through [`LiveConfig::network`]; for a daemon serving thousands of
/// external clients use [`LiveServer`](super::LiveServer) instead.
///
/// # Example
///
/// See `examples/live_tcp_demo.rs`; the crate test
/// `live_round_trip_over_real_tcp` is a minimal end-to-end run.
pub struct LiveNet<A> {
    config: LiveConfig,
    nodes: Vec<LiveNode<A>>,
    start: Instant,
    trace: Trace,
    started: bool,
}

impl<A: Application> LiveNet<A> {
    /// Creates an empty live network with the given configuration
    /// (the entry point behind [`LiveConfig::network`]).
    pub fn with_config(config: LiveConfig) -> Self {
        LiveNet {
            config,
            nodes: Vec::new(),
            start: Instant::now(),
            trace: Trace::new(),
            started: false,
        }
    }

    /// Adds a device named `name` listening on an ephemeral loopback port.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener.
    pub fn spawn(&mut self, name: impl Into<String>, app: A) -> io::Result<DeviceId> {
        let name = name.into();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let id = DeviceId::new(self.nodes.len() as u64);
        let info = DeviceInfo::new(id, name.clone(), [Technology::Wlan]);
        // Tight intervals: live demos run in wall-clock time.
        let mut config = DaemonConfig::new(info)
            .with_inquiry_interval(Technology::Wlan, self.config.inquiry_interval)
            .with_neighbor_ttl(self.config.neighbor_ttl)
            .with_auto_service_discovery(self.config.auto_service_discovery);
        if let Some(policy) = self.config.recovery {
            config = config.with_recovery(policy);
        }
        if let Some(gossip) = self.config.gossip.clone() {
            config = config.with_gossip(gossip);
        }
        self.nodes.push(LiveNode {
            name,
            daemon: Daemon::new(config),
            app,
            lib: Library::new(),
            listener,
            addr,
            greeting: Vec::new(),
            pending_in: HashMap::new(),
            pending_out: HashMap::new(),
            links: HashMap::new(),
            next_link: 0,
            wake_at: Some(SimTime::ZERO),
            timers: Vec::new(),
        });
        Ok(id)
    }

    /// Wall-clock virtual time since construction.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }

    /// Read access to a node's application.
    pub fn app(&self, device: DeviceId) -> &A {
        &self.nodes[device.raw() as usize].app
    }

    /// The device's human-readable name.
    pub fn name(&self, device: DeviceId) -> &str {
        &self.nodes[device.raw() as usize].name
    }

    /// The message-sequence trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Boots all nodes (calls their `on_start`).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut work = VecDeque::new();
        for i in 0..self.nodes.len() {
            self.app_callback(i, &mut work, |app, ctx| app.on_start(ctx));
        }
        self.drain(&mut work);
    }

    /// Runs `f` against a node's application (scripting a user action).
    pub fn with_app<R>(
        &mut self,
        device: DeviceId,
        f: impl FnOnce(&mut A, &mut AppCtx<'_>) -> R,
    ) -> R {
        let mut work = VecDeque::new();
        let r = self.app_callback(device.raw() as usize, &mut work, f);
        self.drain(&mut work);
        r
    }

    /// Shortest poll sleep while traffic is flowing.
    const POLL_MIN: Duration = Duration::from_millis(1);
    /// Longest poll sleep once the net has gone quiet. Socket latency stays
    /// bounded by this while idle rounds no longer spin the CPU.
    const POLL_MAX: Duration = Duration::from_millis(5);

    /// Time until the earliest locally scheduled deadline (daemon wake or
    /// application timer), if any.
    fn next_deadline_in(&self) -> Option<Duration> {
        let now = self.now();
        self.nodes
            .iter()
            .flat_map(|n| {
                n.wake_at
                    .into_iter()
                    .chain(n.timers.iter().map(|(at, _)| *at))
            })
            .min()
            .map(|at| Duration::from_micros(at.as_micros().saturating_sub(now.as_micros())))
    }

    /// Sleeps until the next interesting instant: backs off exponentially
    /// from [`Self::POLL_MIN`] to [`Self::POLL_MAX`] while rounds stay idle,
    /// but never past a local wake/timer deadline or `remaining` wall time.
    fn poll_sleep(&self, idle: &mut Duration, active: bool, remaining: Duration) {
        *idle = if active {
            Self::POLL_MIN
        } else {
            (*idle * 2).min(Self::POLL_MAX)
        };
        let mut sleep = *idle;
        if let Some(due) = self.next_deadline_in() {
            sleep = sleep.min(due);
        }
        sleep = sleep.min(remaining);
        if sleep.is_zero() {
            std::thread::yield_now();
        } else {
            std::thread::sleep(sleep);
        }
    }

    /// Polls sockets and timers repeatedly for `wall` of real time.
    pub fn run_for(&mut self, wall: Duration) {
        let deadline = Instant::now() + wall;
        let mut idle = Self::POLL_MIN;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let active = self.poll_once();
            self.poll_sleep(&mut idle, active, remaining);
        }
    }

    /// Polls until `stop` returns true or `wall` elapses; returns whether
    /// `stop` held.
    ///
    /// The predicate is evaluated after *every drained event* (each daemon
    /// input and each application timer), not just between poll rounds, so
    /// a condition satisfied mid-round returns before the next backoff
    /// sleep. The round still drains to quiescence first — queued daemon
    /// work is never abandoned.
    pub fn run_until(&mut self, wall: Duration, mut stop: impl FnMut(&Self) -> bool) -> bool {
        if stop(self) {
            return true;
        }
        let deadline = Instant::now() + wall;
        let mut idle = Self::POLL_MIN;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let (active, hit) = self.poll_once_watch(&mut stop);
            if hit {
                return true;
            }
            self.poll_sleep(&mut idle, active, remaining);
        }
        stop(self)
    }

    /// One poll round with no stop predicate. Returns whether the round
    /// found any work (socket progress, due wake, or due timer).
    fn poll_once(&mut self) -> bool {
        self.poll_once_watch(&mut |_| false).0
    }

    /// One poll round: accepts, reads, timers, daemon wakes. Returns
    /// `(any work found, watch predicate hit)`; the predicate is evaluated
    /// after each drained event.
    fn poll_once_watch(&mut self, watch: &mut dyn FnMut(&Self) -> bool) -> (bool, bool) {
        let now = self.now();
        let mut activity = false;
        let mut work: VecDeque<(usize, DaemonInput)> = VecDeque::new();

        for i in 0..self.nodes.len() {
            // Accept fresh sockets.
            loop {
                match self.nodes[i].listener.accept() {
                    Ok((stream, _)) => {
                        activity = true;
                        if let Ok(sock) = Sock::new(stream) {
                            self.nodes[i].greeting.push(sock);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }

            // Progress handshakes.
            let mut greeting = std::mem::take(&mut self.nodes[i].greeting);
            let mut still_greeting = Vec::new();
            for mut sock in greeting.drain(..) {
                if let Ok(eof) = sock.pump() {
                    // An Err from pop_frame (oversized length claim) falls
                    // through to the drop: the socket is neither
                    // handshaken nor kept for another round.
                    match sock.pop_frame() {
                        Ok(Some(frame)) => {
                            if let Ok(hs) = Handshake::decode_exact(&frame) {
                                let link = self.nodes[i].alloc_link();
                                let device = DeviceInfo::new(
                                    hs.from,
                                    self.nodes
                                        .get(hs.from.raw() as usize)
                                        .map(|n| n.name.clone())
                                        .unwrap_or_else(|| hs.from.to_string()),
                                    [Technology::Wlan],
                                );
                                self.nodes[i].pending_in.insert(link, sock);
                                work.push_back((
                                    i,
                                    DaemonInput::Plugin(PluginEvent::IncomingConnection {
                                        link,
                                        device,
                                        service: hs.service,
                                        technology: Technology::Wlan,
                                        resume: hs.resume,
                                    }),
                                ));
                            }
                        }
                        Ok(None) if !eof => still_greeting.push(sock),
                        Ok(None) | Err(_) => {}
                    }
                }
            }
            self.nodes[i].greeting = still_greeting;

            // Progress outgoing verdicts.
            let pending: Vec<LinkId> = self.nodes[i].pending_out.keys().copied().collect();
            for link in pending {
                let Some(p) = self.nodes[i].pending_out.get_mut(&link) else {
                    continue;
                };
                match p.sock.pump() {
                    Ok(eof) => match p.sock.pop_frame() {
                        Ok(Some(frame)) => {
                            let p = self.nodes[i].pending_out.remove(&link).expect("present");
                            if frame.first() == Some(&VERDICT_ACCEPT) {
                                self.nodes[i].links.insert(link, p.sock);
                                work.push_back((
                                    i,
                                    DaemonInput::Plugin(PluginEvent::ConnectResult {
                                        attempt: p.attempt,
                                        result: Ok(link),
                                    }),
                                ));
                            } else {
                                let reason = String::from_utf8_lossy(&frame[1.min(frame.len())..])
                                    .into_owned();
                                work.push_back((
                                    i,
                                    DaemonInput::Plugin(PluginEvent::ConnectResult {
                                        attempt: p.attempt,
                                        result: Err(reason),
                                    }),
                                ));
                            }
                        }
                        Ok(None) if eof => {
                            let p = self.nodes[i].pending_out.remove(&link).expect("present");
                            work.push_back((
                                i,
                                DaemonInput::Plugin(PluginEvent::ConnectResult {
                                    attempt: p.attempt,
                                    result: Err("connection closed during setup".into()),
                                }),
                            ));
                        }
                        Ok(None) => {}
                        Err(e) => {
                            let p = self.nodes[i].pending_out.remove(&link).expect("present");
                            work.push_back((
                                i,
                                DaemonInput::Plugin(PluginEvent::ConnectResult {
                                    attempt: p.attempt,
                                    result: Err(e.to_string()),
                                }),
                            ));
                        }
                    },
                    Err(_) => {
                        let p = self.nodes[i].pending_out.remove(&link).expect("present");
                        work.push_back((
                            i,
                            DaemonInput::Plugin(PluginEvent::ConnectResult {
                                attempt: p.attempt,
                                result: Err("socket error during setup".into()),
                            }),
                        ));
                    }
                }
            }

            // Progress established links.
            let link_ids: Vec<LinkId> = self.nodes[i].links.keys().copied().collect();
            for link in link_ids {
                let Some(sock) = self.nodes[i].links.get_mut(&link) else {
                    continue;
                };
                match sock.pump() {
                    Ok(eof) => {
                        let mut framing_err = false;
                        loop {
                            match sock.pop_frame() {
                                Ok(Some(frame)) => work.push_back((
                                    i,
                                    DaemonInput::Plugin(PluginEvent::Frame {
                                        link,
                                        payload: Bytes::from(frame),
                                    }),
                                )),
                                Ok(None) => break,
                                Err(_) => {
                                    framing_err = true;
                                    break;
                                }
                            }
                        }
                        if framing_err {
                            self.nodes[i].links.remove(&link);
                            work.push_back((
                                i,
                                DaemonInput::Plugin(PluginEvent::LinkDown { link }),
                            ));
                        } else if eof {
                            self.nodes[i].links.remove(&link);
                            work.push_back((
                                i,
                                DaemonInput::Plugin(PluginEvent::PeerClosed { link }),
                            ));
                        }
                    }
                    Err(_) => {
                        self.nodes[i].links.remove(&link);
                        work.push_back((i, DaemonInput::Plugin(PluginEvent::LinkDown { link })));
                    }
                }
            }

            // Daemon wake due?
            if self.nodes[i].wake_at.is_some_and(|t| now >= t) {
                self.nodes[i].wake_at = None;
                work.push_back((i, DaemonInput::Tick));
            }
        }

        activity |= !work.is_empty();
        let mut hit = self.drain_watch(&mut work, watch);

        // Application timers (drained after daemon work so freshly set
        // timers with zero delay run next round).
        let mut timer_work = VecDeque::new();
        for i in 0..self.nodes.len() {
            let due: Vec<u64> = {
                let node = &mut self.nodes[i];
                let (fire, keep): (Vec<_>, Vec<_>) =
                    node.timers.drain(..).partition(|(at, _)| now >= *at);
                node.timers = keep;
                fire.into_iter().map(|(_, tok)| tok).collect()
            };
            activity |= !due.is_empty();
            for token in due {
                self.app_callback(i, &mut timer_work, |app, ctx| app.on_timer(token, ctx));
            }
        }
        activity |= !timer_work.is_empty();
        hit |= self.drain_watch(&mut timer_work, watch);
        (activity, hit)
    }

    /// Processes daemon inputs until quiescent.
    fn drain(&mut self, work: &mut VecDeque<(usize, DaemonInput)>) {
        self.drain_watch(work, &mut |_| false);
    }

    /// Processes daemon inputs until quiescent, evaluating `watch` after
    /// each one; returns whether it ever held. Always drains fully — a hit
    /// is latched, not an early exit, so no queued input is lost.
    fn drain_watch(
        &mut self,
        work: &mut VecDeque<(usize, DaemonInput)>,
        watch: &mut dyn FnMut(&Self) -> bool,
    ) -> bool {
        let mut hit = false;
        while let Some((i, input)) = work.pop_front() {
            let now = self.now();
            let mut outs = Vec::new();
            self.nodes[i].daemon.handle(now, input, &mut outs);
            for out in outs {
                match out {
                    DaemonOutput::Plugin(cmd) => self.exec(i, cmd, work),
                    DaemonOutput::App(ev) => {
                        self.app_callback(i, work, |app, ctx| app.on_event(ev, ctx));
                    }
                    DaemonOutput::WakeAt(t) => {
                        let node = &mut self.nodes[i];
                        node.wake_at = Some(node.wake_at.map_or(t, |w| w.min(t)));
                    }
                }
            }
            if !hit && watch(self) {
                hit = true;
            }
        }
        hit
    }

    fn app_callback<R>(
        &mut self,
        i: usize,
        work: &mut VecDeque<(usize, DaemonInput)>,
        f: impl FnOnce(&mut A, &mut AppCtx<'_>) -> R,
    ) -> R {
        let now = self.now();
        let mut timers = Vec::new();
        let r = {
            let node = &mut self.nodes[i];
            let mut ctx = AppCtx::new(
                now,
                &node.name,
                &mut node.lib,
                &mut timers,
                Some(&mut self.trace),
            );
            f(&mut node.app, &mut ctx)
        };
        self.nodes[i].timers.extend(timers);
        for req in self.nodes[i].lib.drain() {
            work.push_back((i, DaemonInput::App(req)));
        }
        r
    }

    fn exec(&mut self, i: usize, cmd: PluginCommand, work: &mut VecDeque<(usize, DaemonInput)>) {
        match cmd {
            PluginCommand::StartInquiry { technology } => {
                // Everyone on loopback is "in range": answer instantly.
                for j in 0..self.nodes.len() {
                    if j == i {
                        continue;
                    }
                    let device = DeviceInfo::new(
                        DeviceId::new(j as u64),
                        self.nodes[j].name.clone(),
                        [Technology::Wlan],
                    );
                    work.push_back((
                        i,
                        DaemonInput::Plugin(PluginEvent::InquiryResponse { technology, device }),
                    ));
                }
                work.push_back((
                    i,
                    DaemonInput::Plugin(PluginEvent::InquiryComplete { technology }),
                ));
            }
            PluginCommand::QueryServices { device, .. } => {
                let j = device.raw() as usize;
                if j < self.nodes.len() {
                    work.push_back((
                        j,
                        DaemonInput::Plugin(PluginEvent::ServiceQuery {
                            device: DeviceId::new(i as u64),
                        }),
                    ));
                }
            }
            PluginCommand::ServiceQueryReply { device, services } => {
                let j = device.raw() as usize;
                if j < self.nodes.len() {
                    work.push_back((
                        j,
                        DaemonInput::Plugin(PluginEvent::ServiceReply {
                            device: DeviceId::new(i as u64),
                            services,
                        }),
                    ));
                }
            }
            PluginCommand::OpenConnection {
                attempt,
                device,
                service,
                resume,
                ..
            } => {
                let j = device.raw() as usize;
                let fail = |reason: String, work: &mut VecDeque<(usize, DaemonInput)>| {
                    work.push_back((
                        i,
                        DaemonInput::Plugin(PluginEvent::ConnectResult {
                            attempt,
                            result: Err(reason),
                        }),
                    ));
                };
                if j >= self.nodes.len() {
                    fail("unknown device".into(), work);
                    return;
                }
                let addr = self.nodes[j].addr;
                match TcpStream::connect(addr).and_then(Sock::new) {
                    Ok(mut sock) => {
                        let hs = Handshake {
                            from: DeviceId::new(i as u64),
                            service,
                            resume,
                        };
                        if sock.write_frame(&hs.encode()).is_err() {
                            fail("handshake write failed".into(), work);
                            return;
                        }
                        let link = self.nodes[i].alloc_link();
                        self.nodes[i]
                            .pending_out
                            .insert(link, OutPending { sock, attempt });
                    }
                    Err(e) => fail(format!("tcp connect failed: {e}"), work),
                }
            }
            PluginCommand::AcceptConnection { link } => {
                if let Some(mut sock) = self.nodes[i].pending_in.remove(&link) {
                    if sock.write_frame(&[VERDICT_ACCEPT]).is_ok() {
                        self.nodes[i].links.insert(link, sock);
                    } else {
                        work.push_back((i, DaemonInput::Plugin(PluginEvent::LinkDown { link })));
                    }
                }
            }
            PluginCommand::RejectConnection { link, reason } => {
                if let Some(mut sock) = self.nodes[i].pending_in.remove(&link) {
                    let mut frame = vec![VERDICT_REJECT];
                    frame.extend_from_slice(reason.as_bytes());
                    let _ = sock.write_frame(&frame);
                }
            }
            PluginCommand::SendFrame { link, payload } => {
                let failed = match self.nodes[i].links.get_mut(&link) {
                    Some(sock) => sock.write_frame(&payload).is_err(),
                    None => false,
                };
                if failed {
                    self.nodes[i].links.remove(&link);
                    work.push_back((i, DaemonInput::Plugin(PluginEvent::LinkDown { link })));
                }
            }
            PluginCommand::CloseLink { link } => {
                if let Some(sock) = self.nodes[i].links.remove(&link) {
                    let _ = sock.stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
    }
}

impl<A: Application> Default for LiveNet<A> {
    fn default() -> Self {
        Self::with_config(LiveConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AppEvent;
    use crate::service::ServiceInfo;
    use crate::types::ConnId;

    #[derive(Default)]
    struct Echo {
        serve: bool,
        peers: Vec<DeviceId>,
        conn: Option<ConnId>,
        received: Vec<Bytes>,
        closed: usize,
    }

    impl Application for Echo {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            if self.serve {
                ctx.peerhood().register_service(ServiceInfo::new("echo"));
            }
        }

        fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
            match event {
                AppEvent::DeviceAppeared(info) => self.peers.push(info.id),
                AppEvent::Connected { conn, .. } => self.conn = Some(conn),
                AppEvent::Data { conn, payload } => {
                    self.received.push(payload.clone());
                    if self.serve {
                        // Echo it back.
                        ctx.peerhood().send(conn, payload);
                    }
                }
                AppEvent::Closed { .. } => self.closed += 1,
                _ => {}
            }
        }
    }

    #[test]
    fn live_round_trip_over_real_tcp() {
        let mut net = LiveConfig::default().network();
        let client = net.spawn("client", Echo::default()).unwrap();
        let server = net
            .spawn(
                "server",
                Echo {
                    serve: true,
                    ..Echo::default()
                },
            )
            .unwrap();
        net.start();

        // Discovery happens within the 200 ms inquiry cadence.
        assert!(
            net.run_until(Duration::from_secs(5), |n| {
                n.app(client).peers.contains(&server)
            }),
            "server never discovered"
        );

        net.with_app(client, |_, ctx| ctx.peerhood().connect(server, "echo"));
        assert!(
            net.run_until(Duration::from_secs(5), |n| n.app(client).conn.is_some()),
            "connect never completed"
        );
        let conn = net.app(client).conn.unwrap();
        net.with_app(client, |_, ctx| {
            ctx.peerhood()
                .send(conn, Bytes::from_static(b"over real tcp"))
        });
        assert!(
            net.run_until(Duration::from_secs(5), |n| !n
                .app(client)
                .received
                .is_empty()),
            "echo never arrived"
        );
        assert_eq!(
            net.app(client).received[0],
            Bytes::from_static(b"over real tcp")
        );
        // Orderly close propagates.
        net.with_app(client, |_, ctx| ctx.peerhood().close(conn));
        assert!(
            net.run_until(Duration::from_secs(5), |n| n.app(server).closed > 0),
            "server never saw the close"
        );
    }

    #[test]
    fn connect_to_unknown_service_is_rejected_over_tcp() {
        let mut net = LiveConfig::default().network();
        let client = net.spawn("client", Echo::default()).unwrap();
        let server = net.spawn("server", Echo::default()).unwrap();
        net.start();
        assert!(net.run_until(Duration::from_secs(5), |n| {
            n.app(client).peers.contains(&server)
        }));
        net.with_app(client, |_, ctx| ctx.peerhood().connect(server, "nope"));
        net.run_for(Duration::from_millis(300));
        assert!(net.app(client).conn.is_none());
    }

    #[test]
    fn run_until_satisfied_at_entry_returns_without_polling() {
        let mut net: LiveNet<Echo> = LiveConfig::default().network();
        let t0 = Instant::now();
        assert!(net.run_until(Duration::from_secs(5), |_| true));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "pre-satisfied predicate must not wait for a poll round"
        );
    }

    #[test]
    fn default_config_network_builds_and_spawns() {
        // The LiveConfig builder is the only construction path now that
        // the 0.6 deprecation shims are gone.
        let mut net: LiveNet<Echo> = LiveConfig::default().network();
        assert_eq!(net.config(), &LiveConfig::default());
        let id = net.spawn("modern", Echo::default()).unwrap();
        assert_eq!(net.name(id), "modern");
    }
}
