//! Configuration of the live TCP drivers.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use crate::config::RecoveryPolicy;
use crate::gossip::GossipConfig;

/// Configuration of a live TCP driver, shared by the in-process demo
/// network ([`LiveNet`](super::LiveNet)) and the production serving reactor
/// ([`LiveServer`](super::LiveServer)).
///
/// Mirrors the builder conventions of
/// [`DaemonConfig`](crate::config::DaemonConfig) and `netsim::RadioEnv`:
/// `LiveConfig::default()` gives live-appropriate defaults, `with_*`
/// methods override one knob each.
///
/// # Example
///
/// ```rust
/// use ph_peerhood::live::LiveConfig;
/// use std::time::Duration;
///
/// let cfg = LiveConfig::default()
///     .with_listen_shards(2)
///     .with_queue_cap(64 * 1024)
///     .with_idle_timeout(Duration::from_secs(30));
/// assert_eq!(cfg.listen_shards, 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LiveConfig {
    /// Address the reactor listens on (`LiveNet` nodes always bind
    /// ephemeral loopback ports and ignore this). Port 0 picks an
    /// ephemeral port; the bound address is reported by
    /// [`LiveServer::addr`](super::LiveServer::addr).
    pub listen: SocketAddr,
    /// Number of reactor I/O shards: each shard is one thread owning a
    /// clone of the listener (so accepts are spread) and a disjoint set of
    /// client connections it polls non-blockingly.
    pub listen_shards: usize,
    /// Per-connection bound on queued outbound bytes. When the peer's
    /// socket stops draining and this many bytes pile up, the connection
    /// is **shed**: the queue is dropped and a farewell frame carrying
    /// [`ErrorKind::Overloaded`](crate::error::ErrorKind::Overloaded) is
    /// sent as soon as the socket accepts it.
    pub queue_cap: usize,
    /// Close connections with no *inbound* traffic for this long, with a
    /// farewell frame carrying
    /// [`ErrorKind::Timeout`](crate::error::ErrorKind::Timeout). The
    /// default reuses the [`RecoveryPolicy`] vocabulary: an idle peer is
    /// treated exactly like an unanswered connect —
    /// `RecoveryPolicy::default().connect_timeout` (8 s).
    pub idle_timeout: Duration,
    /// How long a freshly accepted socket may sit without completing its
    /// handshake frame before it is dropped (also
    /// `RecoveryPolicy::default().connect_timeout` by default).
    pub handshake_timeout: Duration,
    /// How often a daemon starts a discovery round. `LiveNet` answers
    /// rounds in-process (peers are the other in-process nodes);
    /// `LiveServer` completes them immediately (thin clients are not
    /// discoverable), so serving setups want this long.
    pub inquiry_interval: Duration,
    /// How long a neighbor stays known without answering discovery.
    pub neighbor_ttl: Duration,
    /// Automatically query the service lists of appearing devices. Off by
    /// default for the reactor path: thin live clients expose no services.
    pub auto_service_discovery: bool,
    /// Optional daemon timeout/retry/backoff policy, forwarded to
    /// [`DaemonConfig::with_recovery`](crate::config::DaemonConfig::with_recovery).
    pub recovery: Option<RecoveryPolicy>,
    /// Optional epidemic gossip layer, forwarded to
    /// [`DaemonConfig::with_gossip`](crate::config::DaemonConfig::with_gossip)
    /// so live serving runs the same membership/dissemination knobs as the
    /// sim and crowd harnesses.
    pub gossip: Option<GossipConfig>,
    /// Journal file for persistent store snapshots with incremental
    /// append ([`LiveServer`](super::LiveServer) only; drivers pass it to
    /// the persistence hook's owner).
    pub snapshot_path: Option<PathBuf>,
    /// How often the reactor asks its persistence hook for a fresh
    /// checkpoint (compacting the journal). A final checkpoint is always
    /// written on orderly shutdown.
    pub snapshot_cadence: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        let recovery = RecoveryPolicy::default();
        LiveConfig {
            listen: SocketAddr::from(([127, 0, 0, 1], 0)),
            listen_shards: 1,
            queue_cap: 256 * 1024,
            idle_timeout: recovery.connect_timeout,
            handshake_timeout: recovery.connect_timeout,
            inquiry_interval: Duration::from_millis(200),
            neighbor_ttl: Duration::from_secs(5),
            auto_service_discovery: true,
            recovery: None,
            gossip: None,
            snapshot_path: None,
            snapshot_cadence: Duration::from_secs(30),
        }
    }
}

impl LiveConfig {
    /// Overrides the listen address (builder style).
    pub fn with_listen(mut self, addr: SocketAddr) -> Self {
        self.listen = addr;
        self
    }

    /// Overrides the number of reactor I/O shards (builder style). Clamped
    /// to at least one.
    pub fn with_listen_shards(mut self, shards: usize) -> Self {
        self.listen_shards = shards.max(1);
        self
    }

    /// Overrides the per-connection outbound queue cap in bytes (builder
    /// style).
    pub fn with_queue_cap(mut self, bytes: usize) -> Self {
        self.queue_cap = bytes;
        self
    }

    /// Overrides the idle-connection timeout (builder style).
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Overrides the handshake deadline (builder style).
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// Overrides the discovery cadence (builder style).
    pub fn with_inquiry_interval(mut self, interval: Duration) -> Self {
        self.inquiry_interval = interval;
        self
    }

    /// Overrides the neighbor TTL (builder style).
    pub fn with_neighbor_ttl(mut self, ttl: Duration) -> Self {
        self.neighbor_ttl = ttl;
        self
    }

    /// Enables or disables automatic remote service discovery (builder
    /// style).
    pub fn with_auto_service_discovery(mut self, on: bool) -> Self {
        self.auto_service_discovery = on;
        self
    }

    /// Enables daemon fault recovery **and** re-derives the live timeouts
    /// from the policy's vocabulary: `idle_timeout` and
    /// `handshake_timeout` become the policy's `connect_timeout` (builder
    /// style).
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.idle_timeout = policy.connect_timeout;
        self.handshake_timeout = policy.connect_timeout;
        self.recovery = Some(policy);
        self
    }

    /// Enables the epidemic gossip layer, forwarded verbatim to each
    /// node's [`DaemonConfig`](crate::config::DaemonConfig) (builder
    /// style).
    pub fn with_gossip(mut self, gossip: GossipConfig) -> Self {
        self.gossip = Some(gossip);
        self
    }

    /// Persists the served application's store to a journal at `path`
    /// (builder style). See [`LiveServer`](super::LiveServer).
    pub fn with_snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Overrides the checkpoint cadence (builder style).
    pub fn with_snapshot_cadence(mut self, cadence: Duration) -> Self {
        self.snapshot_cadence = cadence;
        self
    }

    /// Creates an empty in-process live network (the only construction
    /// path — build the config first, then the network).
    pub fn network<A: crate::app::Application>(self) -> super::LiveNet<A> {
        super::LiveNet::with_config(self)
    }

    /// Starts a production serving reactor for `app` (no persistence);
    /// see [`LiveServer::spawn_with`](super::LiveServer::spawn_with) for
    /// the persistent variant.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener or spawning threads.
    pub fn serve<A: crate::app::Application + Send + 'static>(
        self,
        name: impl Into<String>,
        app: A,
    ) -> std::io::Result<super::LiveServer<A>> {
        super::LiveServer::spawn(self, name, app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reuse_recovery_vocabulary() {
        let cfg = LiveConfig::default();
        let recovery = RecoveryPolicy::default();
        assert_eq!(cfg.idle_timeout, recovery.connect_timeout);
        assert_eq!(cfg.handshake_timeout, recovery.connect_timeout);
        assert!(cfg.recovery.is_none(), "recovery itself stays opt-in");
        assert_eq!(cfg.listen_shards, 1);
        assert!(cfg.queue_cap > 0);
    }

    #[test]
    fn builders_override_each_knob() {
        let cfg = LiveConfig::default()
            .with_listen(SocketAddr::from(([127, 0, 0, 1], 4411)))
            .with_listen_shards(0)
            .with_queue_cap(1024)
            .with_idle_timeout(Duration::from_secs(1))
            .with_handshake_timeout(Duration::from_secs(2))
            .with_inquiry_interval(Duration::from_secs(60))
            .with_neighbor_ttl(Duration::from_secs(120))
            .with_auto_service_discovery(false)
            .with_snapshot_path("/tmp/x.journal")
            .with_snapshot_cadence(Duration::from_secs(5));
        assert_eq!(cfg.listen.port(), 4411);
        assert_eq!(cfg.listen_shards, 1, "clamped to at least one shard");
        assert_eq!(cfg.queue_cap, 1024);
        assert_eq!(cfg.idle_timeout, Duration::from_secs(1));
        assert_eq!(cfg.handshake_timeout, Duration::from_secs(2));
        assert_eq!(cfg.inquiry_interval, Duration::from_secs(60));
        assert_eq!(cfg.neighbor_ttl, Duration::from_secs(120));
        assert!(!cfg.auto_service_discovery);
        assert_eq!(
            cfg.snapshot_path.as_deref().unwrap().to_str(),
            Some("/tmp/x.journal")
        );
        assert_eq!(cfg.snapshot_cadence, Duration::from_secs(5));
    }

    #[test]
    fn with_recovery_rederives_live_timeouts() {
        let policy = RecoveryPolicy {
            connect_timeout: Duration::from_secs(3),
            ..RecoveryPolicy::default()
        };
        let cfg = LiveConfig::default().with_recovery(policy);
        assert_eq!(cfg.idle_timeout, Duration::from_secs(3));
        assert_eq!(cfg.handshake_timeout, Duration::from_secs(3));
        assert_eq!(cfg.recovery, Some(policy));
    }
}
