//! The production live-serving reactor: a non-blocking multi-client TCP
//! daemon around the sans-IO core.
//!
//! # Architecture
//!
//! [`LiveServer`] splits work across `1 + listen_shards` threads:
//!
//! * **Shard threads** (`ph-live-shard-N`) each own a clone of the
//!   non-blocking listener (accepts spread across shards) plus a disjoint
//!   set of client connections. A shard does *only* socket work: accept,
//!   read, frame-reassemble, write — never application logic — so one
//!   shard round stays short and no client can block another with slow
//!   reads or writes.
//! * The **core thread** (`ph-live-core`) owns the [`Daemon`] state
//!   machine, the served [`Application`], its [`Library`] and timers. It
//!   sleeps on a channel of batched shard messages with a timeout derived
//!   from the next daemon wake / app timer / checkpoint deadline.
//!
//! The split keeps the daemon core single-threaded (exactly like the
//! simulator driver) while socket readiness is handled concurrently — the
//! sans-IO contract is the channel protocol between the two halves.
//!
//! # Backpressure contract
//!
//! Every connection has a bounded outbound byte queue
//! ([`LiveConfig::queue_cap`]). A write that does not fit is never
//! retried synchronously and never blocks the shard: the connection is
//! **shed** — its queue is dropped and a farewell control frame carrying
//! [`ErrorKind::Overloaded`] is sent as soon as the socket drains. Idle
//! connections (no inbound traffic for [`LiveConfig::idle_timeout`]) are
//! closed the same way with [`ErrorKind::Timeout`]. In both cases the
//! daemon observes a plain `LinkDown`, exactly as if the radio had faded.
//!
//! # Persistence
//!
//! The reactor itself is store-agnostic: a [`LivePersist`] hook sees every
//! inbound application frame (for incremental append) and is asked for a
//! checkpoint every [`LiveConfig::snapshot_cadence`] plus once at orderly
//! shutdown. The community layer implements the hook with its journal.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use codec::{Bytes, Wire};

use netsim::{SimTime, Technology};

use crate::app::{AppCtx, Application};
use crate::config::DaemonConfig;
use crate::daemon::{Daemon, DaemonInput, DaemonOutput};
use crate::error::ErrorKind;
use crate::library::Library;
use crate::plugin::{PluginCommand, PluginEvent};
use crate::types::{DeviceId, DeviceInfo, LinkId};

use super::config::LiveConfig;
use super::wire::{farewell, frame, FrameBuf, Handshake, VERDICT_ACCEPT, VERDICT_REJECT};

/// Upper bits of a connection id hold the owning shard index.
const SHARD_SHIFT: u32 = 48;
/// How long a dying connection may linger to flush its farewell frame.
/// Generous on purpose: a shed client's kernel buffers are by definition
/// full, and the farewell is only observable once the client drains them.
const FAREWELL_LINGER: Duration = Duration::from_secs(5);
/// Longest core-thread sleep (bounds shutdown latency).
const CORE_NAP_MAX: Duration = Duration::from_millis(25);
/// Shard sleep while its sockets are quiet.
const SHARD_NAP: Duration = Duration::from_millis(1);

/// Persistence hook driven by the reactor's core thread.
///
/// `record` sees every inbound application frame *before* it reaches the
/// daemon (incremental append: the implementation decides which frames are
/// mutations worth journalling); `checkpoint` is invoked every
/// [`LiveConfig::snapshot_cadence`] and once at orderly shutdown, and
/// typically rewrites the journal as a compact snapshot.
pub trait LivePersist<A>: Send {
    /// Observes one inbound application frame at `now`.
    fn record(&mut self, frame: &[u8], now: SimTime);
    /// Takes a full snapshot of the served application's state.
    fn checkpoint(&mut self, app: &A);
}

/// A point-in-time copy of the reactor's counters (all monotonic except
/// `active`, which is a gauge).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Sockets accepted since start.
    pub accepted: u64,
    /// Currently open connections (any state).
    pub active: u64,
    /// Sockets dropped before completing a valid handshake.
    pub handshake_failures: u64,
    /// Handshakes the daemon rejected (unknown service, …).
    pub rejected: u64,
    /// Application frames received on established connections.
    pub frames_in: u64,
    /// Application frames the daemon sent.
    pub frames_out: u64,
    /// Payload bytes read from sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Connections shed by backpressure ([`ErrorKind::Overloaded`]).
    pub shed: u64,
    /// Connections closed for inbound idleness ([`ErrorKind::Timeout`]).
    pub idle_closed: u64,
}

/// Shared atomic counters behind [`LiveStats`]. SeqCst everywhere: these
/// are low-rate bumps, and the strict ordering keeps `ph-lint` honest.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    active: AtomicU64,
    handshake_failures: AtomicU64,
    rejected: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    shed: AtomicU64,
    idle_closed: AtomicU64,
}

impl Counters {
    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::SeqCst);
    }

    fn snapshot(&self) -> LiveStats {
        LiveStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            active: self.active.load(Ordering::SeqCst),
            handshake_failures: self.handshake_failures.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            frames_in: self.frames_in.load(Ordering::SeqCst),
            frames_out: self.frames_out.load(Ordering::SeqCst),
            bytes_in: self.bytes_in.load(Ordering::SeqCst),
            bytes_out: self.bytes_out.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            idle_closed: self.idle_closed.load(Ordering::SeqCst),
        }
    }
}

/// Shard → core notifications (batched: one `Vec` per shard round).
enum CoreMsg {
    /// A socket completed its handshake frame.
    Hello { conn: u64, hs: Handshake },
    /// An application frame arrived on an established connection.
    Frame { conn: u64, payload: Vec<u8> },
    /// The connection is gone (announced connections only).
    Gone { conn: u64, cause: GoneCause },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GoneCause {
    /// Orderly EOF from the peer.
    Eof,
    /// Socket error.
    Error,
    /// Shed by backpressure.
    Shed,
    /// Closed for inbound idleness.
    Idle,
}

/// Core → shard commands (batched: one `Vec` per core round).
enum ShardCmd {
    /// Answer a pending handshake.
    Verdict {
        conn: u64,
        accept: bool,
        reason: String,
    },
    /// Queue one application frame for the peer.
    Send { conn: u64, payload: Vec<u8> },
    /// Orderly close: flush what is queued, then drop.
    Close { conn: u64 },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Waiting for the handshake frame.
    Greeting,
    /// Handshake forwarded to the core; awaiting the daemon's verdict.
    AwaitingVerdict,
    /// Verdict sent, application traffic flowing.
    Established,
    /// Flushing final bytes (farewell or orderly close), reads ignored.
    Dying { deadline: Instant },
}

struct Conn {
    stream: TcpStream,
    inbuf: FrameBuf,
    /// Outbound frames not yet fully written; `front_off` bytes of the
    /// front one already went out.
    out: VecDeque<Vec<u8>>,
    front_off: usize,
    /// Total unwritten bytes across `out` — the backpressure gauge.
    queued: usize,
    state: ConnState,
    opened: Instant,
    last_in: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let now = Instant::now();
        Ok(Conn {
            stream,
            inbuf: FrameBuf::new(),
            out: VecDeque::new(),
            front_off: 0,
            queued: 0,
            state: ConnState::Greeting,
            opened: now,
            last_in: now,
        })
    }

    fn push(&mut self, msg: Vec<u8>) {
        self.queued += msg.len();
        self.out.push_back(msg);
    }

    /// Reads everything available; `Ok(true)` on orderly EOF.
    fn read_pump(&mut self, counters: &Counters) -> io::Result<bool> {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(true),
                Ok(n) => {
                    self.inbuf.extend(&tmp[..n]);
                    self.last_in = Instant::now();
                    counters.bytes_in.fetch_add(n as u64, Ordering::SeqCst);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes as much queued output as the socket accepts right now.
    fn write_pump(&mut self, counters: &Counters) -> io::Result<()> {
        loop {
            let (len, res) = match self.out.front() {
                None => break,
                Some(front) => (front.len(), self.stream.write(&front[self.front_off..])),
            };
            match res {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.front_off += n;
                    self.queued -= n;
                    counters.bytes_out.fetch_add(n as u64, Ordering::SeqCst);
                    if self.front_off == len {
                        self.out.pop_front();
                        self.front_off = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// True once this connection was announced to the core (it must then
    /// also be told when the connection goes away).
    fn announced(&self) -> bool {
        !matches!(self.state, ConnState::Greeting)
    }
}

/// Everything one shard thread needs.
struct Shard {
    idx: u64,
    listener: TcpListener,
    conns: BTreeMap<u64, Conn>,
    next_id: u64,
    queue_cap: usize,
    idle_timeout: Duration,
    handshake_timeout: Duration,
    counters: Arc<Counters>,
}

impl Shard {
    fn run(
        mut self,
        cmd_rx: Receiver<Vec<ShardCmd>>,
        core_tx: Sender<Vec<CoreMsg>>,
        stop: Arc<AtomicBool>,
    ) {
        while !stop.load(Ordering::SeqCst) {
            let mut msgs = Vec::new();
            let mut active = false;

            // 1. Apply core commands.
            loop {
                match cmd_rx.try_recv() {
                    Ok(batch) => {
                        active = true;
                        for cmd in batch {
                            self.apply(cmd, &mut msgs);
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return,
                }
            }

            // 2. Accept new sockets.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        active = true;
                        if let Ok(conn) = Conn::new(stream) {
                            let id = (self.idx << SHARD_SHIFT) | self.next_id;
                            self.next_id += 1;
                            self.conns.insert(id, conn);
                            Counters::bump(&self.counters.accepted);
                            Counters::bump(&self.counters.active);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }

            // 3. Per-connection socket work.
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                active |= self.service(id, &mut msgs);
            }

            if !msgs.is_empty() {
                active = true;
                if core_tx.send(msgs).is_err() {
                    return;
                }
            }
            if !active {
                std::thread::sleep(SHARD_NAP);
            }
        }
    }

    /// One round of socket work for one connection. Returns whether
    /// anything happened.
    fn service(&mut self, id: u64, msgs: &mut Vec<CoreMsg>) -> bool {
        let idle_timeout = self.idle_timeout;
        let handshake_timeout = self.handshake_timeout;
        let mut active = false;
        let mut drop_it = false;

        {
            let counters = &self.counters;
            let Some(c) = self.conns.get_mut(&id) else {
                return false;
            };

            if let ConnState::Dying { deadline } = c.state {
                // Dying connections only flush; reads are ignored.
                let dead = c.write_pump(counters).is_err();
                if dead || c.out.is_empty() || Instant::now() >= deadline {
                    drop_it = true;
                    active = true;
                }
            } else {
                match c.read_pump(counters) {
                    Ok(eof) => {
                        // Drain complete frames according to state.
                        loop {
                            match c.state {
                                ConnState::Greeting => match c.inbuf.pop() {
                                    Ok(Some(f)) => match Handshake::decode_exact(&f) {
                                        Ok(hs) => {
                                            c.state = ConnState::AwaitingVerdict;
                                            msgs.push(CoreMsg::Hello { conn: id, hs });
                                            active = true;
                                        }
                                        Err(_) => {
                                            Counters::bump(&counters.handshake_failures);
                                            drop_it = true;
                                            active = true;
                                            break;
                                        }
                                    },
                                    Ok(None) => break,
                                    // Oversized length claim before the
                                    // handshake even parsed: hostile peer.
                                    Err(_) => {
                                        Counters::bump(&counters.handshake_failures);
                                        drop_it = true;
                                        active = true;
                                        break;
                                    }
                                },
                                // Early frames stay buffered until the verdict.
                                ConnState::AwaitingVerdict => break,
                                ConnState::Established => match c.inbuf.pop() {
                                    Ok(Some(f)) => {
                                        Counters::bump(&counters.frames_in);
                                        msgs.push(CoreMsg::Frame {
                                            conn: id,
                                            payload: f,
                                        });
                                        active = true;
                                    }
                                    Ok(None) => break,
                                    // A framing violation mid-session: the
                                    // stream offset is unrecoverable, so the
                                    // connection goes down as an error.
                                    Err(_) => {
                                        if c.announced() {
                                            msgs.push(CoreMsg::Gone {
                                                conn: id,
                                                cause: GoneCause::Error,
                                            });
                                        }
                                        drop_it = true;
                                        active = true;
                                        break;
                                    }
                                },
                                ConnState::Dying { .. } => break,
                            }
                        }
                        if !drop_it && eof {
                            if c.announced() {
                                msgs.push(CoreMsg::Gone {
                                    conn: id,
                                    cause: GoneCause::Eof,
                                });
                            }
                            drop_it = true;
                            active = true;
                        }
                    }
                    Err(_) => {
                        if c.announced() {
                            msgs.push(CoreMsg::Gone {
                                conn: id,
                                cause: GoneCause::Error,
                            });
                        }
                        drop_it = true;
                        active = true;
                    }
                }

                // Deadlines.
                if !drop_it {
                    match c.state {
                        ConnState::Greeting | ConnState::AwaitingVerdict
                            if c.opened.elapsed() >= handshake_timeout =>
                        {
                            Counters::bump(&counters.handshake_failures);
                            if c.announced() {
                                msgs.push(CoreMsg::Gone {
                                    conn: id,
                                    cause: GoneCause::Error,
                                });
                            }
                            drop_it = true;
                            active = true;
                        }
                        ConnState::Established if c.last_in.elapsed() >= idle_timeout => {
                            c.out.clear();
                            c.front_off = 0;
                            c.queued = 0;
                            c.push(frame(&farewell(ErrorKind::Timeout)));
                            c.state = ConnState::Dying {
                                deadline: Instant::now() + FAREWELL_LINGER,
                            };
                            Counters::bump(&counters.idle_closed);
                            msgs.push(CoreMsg::Gone {
                                conn: id,
                                cause: GoneCause::Idle,
                            });
                            active = true;
                        }
                        _ => {}
                    }
                }

                // Flush queued output. A failed write is a dead socket.
                if !drop_it {
                    let had_out = !c.out.is_empty();
                    if c.write_pump(counters).is_err() {
                        if c.announced() {
                            msgs.push(CoreMsg::Gone {
                                conn: id,
                                cause: GoneCause::Error,
                            });
                        }
                        drop_it = true;
                    }
                    active |= had_out;
                }
            }
        }

        if drop_it {
            self.drop_conn(id);
        }
        active
    }

    fn apply(&mut self, cmd: ShardCmd, msgs: &mut Vec<CoreMsg>) {
        match cmd {
            ShardCmd::Verdict {
                conn,
                accept,
                reason,
            } => {
                if let Some(c) = self.conns.get_mut(&conn) {
                    if c.state != ConnState::AwaitingVerdict {
                        return;
                    }
                    if accept {
                        c.push(frame(&[VERDICT_ACCEPT]));
                        c.state = ConnState::Established;
                        c.last_in = Instant::now();
                    } else {
                        let mut v = vec![VERDICT_REJECT];
                        v.extend_from_slice(reason.as_bytes());
                        c.push(frame(&v));
                        c.state = ConnState::Dying {
                            deadline: Instant::now() + FAREWELL_LINGER,
                        };
                    }
                }
            }
            ShardCmd::Send { conn, payload } => {
                if let Some(c) = self.conns.get_mut(&conn) {
                    if c.state != ConnState::Established {
                        return; // already dying or mid-handshake: drop silently
                    }
                    let msg = frame(&payload);
                    if self.queue_cap > 0 && c.queued + msg.len() > self.queue_cap {
                        // Backpressure: shed this peer rather than queue
                        // without bound or block the shard.
                        c.out.clear();
                        c.front_off = 0;
                        c.queued = 0;
                        c.push(frame(&farewell(ErrorKind::Overloaded)));
                        c.state = ConnState::Dying {
                            deadline: Instant::now() + FAREWELL_LINGER,
                        };
                        Counters::bump(&self.counters.shed);
                        msgs.push(CoreMsg::Gone {
                            conn,
                            cause: GoneCause::Shed,
                        });
                    } else {
                        c.push(msg);
                    }
                }
            }
            ShardCmd::Close { conn } => {
                if let Some(c) = self.conns.get_mut(&conn) {
                    if !matches!(c.state, ConnState::Dying { .. }) {
                        c.state = ConnState::Dying {
                            deadline: Instant::now() + FAREWELL_LINGER,
                        };
                    }
                }
            }
        }
    }

    fn drop_conn(&mut self, id: u64) {
        if let Some(c) = self.conns.remove(&id) {
            let _ = c.stream.shutdown(Shutdown::Both);
            self.counters.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The core thread's state: daemon, application, library, timers.
struct Core<A> {
    daemon: Daemon,
    app: A,
    lib: Library,
    name: String,
    timers: Vec<(SimTime, u64)>,
    wake_at: Option<SimTime>,
    start: Instant,
    work: VecDeque<DaemonInput>,
    /// Outgoing command batch per shard, flushed once per round.
    cmds: Vec<Vec<ShardCmd>>,
    counters: Arc<Counters>,
    persist: Option<Box<dyn LivePersist<A>>>,
}

impl<A: Application> Core<A> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn run(
        mut self,
        rx: Receiver<Vec<CoreMsg>>,
        txs: Vec<Sender<Vec<ShardCmd>>>,
        cadence: Duration,
        stop: Arc<AtomicBool>,
    ) -> A {
        let mut next_checkpoint = self.persist.as_ref().map(|_| Instant::now() + cadence);

        self.app_callback(|app, ctx| app.on_start(ctx));
        self.run_work();
        self.flush(&txs);

        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match rx.recv_timeout(self.nap(next_checkpoint)) {
                Ok(batch) => {
                    self.ingest(batch);
                    // Soak up anything else already queued before working.
                    while let Ok(batch) = rx.try_recv() {
                        self.ingest(batch);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            let now = self.now();
            if self.wake_at.is_some_and(|w| now >= w) {
                self.wake_at = None;
                self.work.push_back(DaemonInput::Tick);
            }
            self.run_work();
            self.fire_timers();
            self.flush(&txs);

            if let Some(due) = next_checkpoint {
                if Instant::now() >= due {
                    if let Some(p) = self.persist.as_mut() {
                        p.checkpoint(&self.app);
                    }
                    next_checkpoint = Some(Instant::now() + cadence);
                }
            }
        }

        // Final checkpoint on orderly shutdown.
        if let Some(p) = self.persist.as_mut() {
            p.checkpoint(&self.app);
        }
        self.app
    }

    /// How long to sleep on the channel: until the next daemon wake, app
    /// timer or checkpoint, clamped to keep shutdown responsive.
    fn nap(&self, next_checkpoint: Option<Instant>) -> Duration {
        let now = self.now();
        let until =
            |at: SimTime| Duration::from_micros(at.as_micros().saturating_sub(now.as_micros()));
        let mut t = CORE_NAP_MAX;
        if let Some(w) = self.wake_at {
            t = t.min(until(w));
        }
        if let Some(at) = self.timers.iter().map(|(at, _)| *at).min() {
            t = t.min(until(at));
        }
        if let Some(due) = next_checkpoint {
            t = t.min(due.saturating_duration_since(Instant::now()));
        }
        t.max(Duration::from_micros(100))
    }

    fn ingest(&mut self, batch: Vec<CoreMsg>) {
        for msg in batch {
            match msg {
                CoreMsg::Hello { conn, hs } => {
                    let device = DeviceInfo::new(hs.from, hs.from.to_string(), [Technology::Wlan]);
                    self.work
                        .push_back(DaemonInput::Plugin(PluginEvent::IncomingConnection {
                            link: LinkId::new(conn),
                            device,
                            service: hs.service,
                            technology: Technology::Wlan,
                            resume: hs.resume,
                        }));
                }
                CoreMsg::Frame { conn, payload } => {
                    let now = self.now();
                    if let Some(p) = self.persist.as_mut() {
                        p.record(&payload, now);
                    }
                    self.work.push_back(DaemonInput::Plugin(PluginEvent::Frame {
                        link: LinkId::new(conn),
                        payload: Bytes::from(payload),
                    }));
                }
                CoreMsg::Gone { conn, cause } => {
                    let link = LinkId::new(conn);
                    let ev = match cause {
                        GoneCause::Eof => PluginEvent::PeerClosed { link },
                        GoneCause::Error | GoneCause::Shed | GoneCause::Idle => {
                            PluginEvent::LinkDown { link }
                        }
                    };
                    self.work.push_back(DaemonInput::Plugin(ev));
                }
            }
        }
    }

    /// Processes queued daemon inputs to quiescence.
    fn run_work(&mut self) {
        while let Some(input) = self.work.pop_front() {
            let now = self.now();
            let mut outs = Vec::new();
            self.daemon.handle(now, input, &mut outs);
            for out in outs {
                match out {
                    DaemonOutput::Plugin(cmd) => self.exec(cmd),
                    DaemonOutput::App(ev) => {
                        self.app_callback(|app, ctx| app.on_event(ev, ctx));
                    }
                    DaemonOutput::WakeAt(t) => {
                        self.wake_at = Some(self.wake_at.map_or(t, |w| w.min(t)));
                    }
                }
            }
        }
    }

    /// Fires due application timers (and any daemon work they enqueue).
    fn fire_timers(&mut self) {
        loop {
            let now = self.now();
            let (due, keep): (Vec<_>, Vec<_>) =
                self.timers.drain(..).partition(|(at, _)| now >= *at);
            self.timers = keep;
            if due.is_empty() {
                break;
            }
            for (_, token) in due {
                self.app_callback(|app, ctx| app.on_timer(token, ctx));
            }
            self.run_work();
        }
    }

    fn app_callback<R>(&mut self, f: impl FnOnce(&mut A, &mut AppCtx<'_>) -> R) -> R {
        let now = self.now();
        let mut timers = Vec::new();
        let r = {
            let mut ctx = AppCtx::new(now, &self.name, &mut self.lib, &mut timers, None);
            f(&mut self.app, &mut ctx)
        };
        self.timers.extend(timers);
        for req in self.lib.drain() {
            self.work.push_back(DaemonInput::App(req));
        }
        r
    }

    /// Routes one daemon plugin command. Discovery is completed inline
    /// (thin live clients are not discoverable peers); connection commands
    /// become shard commands.
    fn exec(&mut self, cmd: PluginCommand) {
        match cmd {
            PluginCommand::StartInquiry { technology } => {
                self.work
                    .push_back(DaemonInput::Plugin(PluginEvent::InquiryComplete {
                        technology,
                    }));
            }
            PluginCommand::QueryServices { device, .. } => {
                self.work
                    .push_back(DaemonInput::Plugin(PluginEvent::ServiceReply {
                        device,
                        services: Vec::new(),
                    }));
            }
            PluginCommand::ServiceQueryReply { .. } => {}
            PluginCommand::OpenConnection { attempt, .. } => {
                self.work
                    .push_back(DaemonInput::Plugin(PluginEvent::ConnectResult {
                        attempt,
                        result: Err("live server cannot dial thin clients".into()),
                    }));
            }
            PluginCommand::AcceptConnection { link } => self.cmd(
                link,
                ShardCmd::Verdict {
                    conn: link.raw(),
                    accept: true,
                    reason: String::new(),
                },
            ),
            PluginCommand::RejectConnection { link, reason } => {
                Counters::bump(&self.counters.rejected);
                self.cmd(
                    link,
                    ShardCmd::Verdict {
                        conn: link.raw(),
                        accept: false,
                        reason,
                    },
                );
            }
            PluginCommand::SendFrame { link, payload } => {
                Counters::bump(&self.counters.frames_out);
                self.cmd(
                    link,
                    ShardCmd::Send {
                        conn: link.raw(),
                        payload: payload.to_vec(),
                    },
                );
            }
            PluginCommand::CloseLink { link } => {
                self.cmd(link, ShardCmd::Close { conn: link.raw() });
            }
        }
    }

    fn cmd(&mut self, link: LinkId, cmd: ShardCmd) {
        let shard = (link.raw() >> SHARD_SHIFT) as usize;
        if let Some(batch) = self.cmds.get_mut(shard) {
            batch.push(cmd);
        }
    }

    fn flush(&mut self, txs: &[Sender<Vec<ShardCmd>>]) {
        for (i, batch) in self.cmds.iter_mut().enumerate() {
            if !batch.is_empty() {
                let _ = txs[i].send(std::mem::take(batch));
            }
        }
    }
}

/// A running live-serving daemon: `listen_shards` socket threads plus one
/// core thread around the sans-IO [`Daemon`] and the served
/// [`Application`].
///
/// Built from a [`LiveConfig`] via [`LiveServer::spawn`] (or
/// [`LiveConfig::serve`]); stopped with [`LiveServer::shutdown`], which
/// returns the application (with all the state it accumulated).
///
/// See the [module docs](self) for the reactor model and the
/// backpressure/persistence contracts.
pub struct LiveServer<A> {
    addr: SocketAddr,
    stats: Arc<Counters>,
    stop: Arc<AtomicBool>,
    shards: Vec<JoinHandle<()>>,
    core: JoinHandle<A>,
}

impl<A: Application + Send + 'static> LiveServer<A> {
    /// Starts a server for `app` under `config`, with no persistence.
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener or spawning threads.
    pub fn spawn(config: LiveConfig, name: impl Into<String>, app: A) -> io::Result<Self> {
        Self::spawn_with(config, name, app, None)
    }

    /// Starts a server with an optional persistence hook (the hook's
    /// `record` sees every inbound frame; `checkpoint` runs every
    /// [`LiveConfig::snapshot_cadence`] and at shutdown).
    ///
    /// # Errors
    ///
    /// Returns any error from binding the listener or spawning threads.
    pub fn spawn_with(
        config: LiveConfig,
        name: impl Into<String>,
        app: A,
        persist: Option<Box<dyn LivePersist<A>>>,
    ) -> io::Result<Self> {
        let name = name.into();
        let listener = TcpListener::bind(config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let (core_tx, core_rx) = mpsc::channel::<Vec<CoreMsg>>();

        let mut shard_txs = Vec::new();
        let mut shards = Vec::new();
        for idx in 0..config.listen_shards {
            let (tx, rx) = mpsc::channel::<Vec<ShardCmd>>();
            shard_txs.push(tx);
            let shard = Shard {
                idx: idx as u64,
                listener: listener.try_clone()?,
                conns: BTreeMap::new(),
                next_id: 0,
                queue_cap: config.queue_cap,
                idle_timeout: config.idle_timeout,
                handshake_timeout: config.handshake_timeout,
                counters: Arc::clone(&counters),
            };
            let core_tx = core_tx.clone();
            let stop = Arc::clone(&stop);
            shards.push(
                std::thread::Builder::new()
                    .name(format!("ph-live-shard-{idx}"))
                    .spawn(move || shard.run(rx, core_tx, stop))?,
            );
        }
        drop(core_tx);

        let mut daemon_config = DaemonConfig::new(DeviceInfo::new(
            DeviceId::new(0),
            name.clone(),
            [Technology::Wlan],
        ))
        .with_inquiry_interval(Technology::Wlan, config.inquiry_interval)
        .with_neighbor_ttl(config.neighbor_ttl)
        .with_auto_service_discovery(config.auto_service_discovery);
        if let Some(policy) = config.recovery {
            daemon_config = daemon_config.with_recovery(policy);
        }
        if let Some(gossip) = config.gossip.clone() {
            daemon_config = daemon_config.with_gossip(gossip);
        }

        let core = Core {
            daemon: Daemon::new(daemon_config),
            app,
            lib: Library::new(),
            name,
            timers: Vec::new(),
            wake_at: Some(SimTime::ZERO),
            start: Instant::now(),
            work: VecDeque::new(),
            cmds: (0..config.listen_shards).map(|_| Vec::new()).collect(),
            counters: Arc::clone(&counters),
            persist,
        };
        let cadence = config.snapshot_cadence;
        let core_stop = Arc::clone(&stop);
        let core = std::thread::Builder::new()
            .name("ph-live-core".into())
            .spawn(move || core.run(core_rx, shard_txs, cadence, core_stop))?;

        Ok(LiveServer {
            addr,
            stats: counters,
            stop,
            shards,
            core,
        })
    }

    /// The actual bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the serving counters.
    pub fn stats(&self) -> LiveStats {
        self.stats.snapshot()
    }

    /// Stops the reactor (final checkpoint included) and returns the
    /// served application with all its accumulated state.
    pub fn shutdown(self) -> A {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.shards {
            let _ = h.join();
        }
        self.core.join().expect("live core thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::super::wire::parse_farewell;
    use super::*;
    use crate::api::AppEvent;
    use crate::service::ServiceInfo;

    /// Echoes every frame back, prefixed with nothing — a 1:1 responder.
    #[derive(Default)]
    struct EchoApp {
        served: usize,
    }

    impl Application for EchoApp {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.peerhood().register_service(ServiceInfo::new("echo"));
        }

        fn on_event(&mut self, event: AppEvent, ctx: &mut AppCtx<'_>) {
            if let AppEvent::Data { conn, payload } = event {
                self.served += 1;
                ctx.peerhood().send(conn, payload);
            }
        }
    }

    /// A minimal blocking test client speaking the live wire protocol.
    struct TestClient {
        stream: TcpStream,
        buf: FrameBuf,
    }

    impl TestClient {
        fn connect(addr: SocketAddr, from: u64, service: &str) -> TestClient {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).unwrap();
            let mut c = TestClient {
                stream,
                buf: FrameBuf::new(),
            };
            let hs = Handshake {
                from: DeviceId::new(from),
                service: service.into(),
                resume: None,
            };
            c.send_raw(&hs.encode());
            c
        }

        fn send_raw(&mut self, payload: &[u8]) {
            self.stream.write_all(&frame(payload)).expect("write");
        }

        /// Blocks until one frame arrives (or the deadline passes).
        fn recv(&mut self, deadline: Duration) -> Option<Vec<u8>> {
            self.stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            let t0 = Instant::now();
            let mut tmp = [0u8; 4096];
            loop {
                if let Ok(Some(f)) = self.buf.pop() {
                    return Some(f);
                }
                if t0.elapsed() > deadline {
                    return None;
                }
                match self.stream.read(&mut tmp) {
                    Ok(0) => return self.buf.pop().ok().flatten(),
                    Ok(n) => self.buf.extend(&tmp[..n]),
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => return None,
                }
            }
        }
    }

    #[test]
    fn serves_echo_round_trip_and_counts() {
        let server =
            LiveServer::spawn(LiveConfig::default(), "reactor", EchoApp::default()).expect("spawn");
        let mut client = TestClient::connect(server.addr(), 1, "echo");
        let verdict = client.recv(Duration::from_secs(5)).expect("verdict");
        assert_eq!(verdict, vec![VERDICT_ACCEPT]);
        client.send_raw(b"ping over live tcp");
        let echo = client.recv(Duration::from_secs(5)).expect("echo");
        assert_eq!(echo, b"ping over live tcp");
        let stats = server.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.frames_in, 1);
        assert_eq!(stats.frames_out, 1);
        let app = server.shutdown();
        assert_eq!(app.served, 1);
    }

    #[test]
    fn rejects_unknown_service_with_reason() {
        let server =
            LiveServer::spawn(LiveConfig::default(), "reactor", EchoApp::default()).expect("spawn");
        let mut client = TestClient::connect(server.addr(), 1, "no-such-service");
        let verdict = client.recv(Duration::from_secs(5)).expect("verdict");
        assert_eq!(verdict.first(), Some(&VERDICT_REJECT));
        assert!(server.stats().rejected >= 1);
        server.shutdown();
    }

    #[test]
    fn idle_connection_gets_timeout_farewell() {
        let config = LiveConfig::default().with_idle_timeout(Duration::from_millis(200));
        let server = LiveServer::spawn(config, "reactor", EchoApp::default()).expect("spawn");
        let mut client = TestClient::connect(server.addr(), 1, "echo");
        assert_eq!(
            client.recv(Duration::from_secs(5)).expect("verdict"),
            vec![VERDICT_ACCEPT]
        );
        // Send nothing: the reactor must close us with a Timeout farewell.
        let farewell_frame = client.recv(Duration::from_secs(5)).expect("farewell");
        assert_eq!(parse_farewell(&farewell_frame), Some(ErrorKind::Timeout));
        assert_eq!(server.stats().idle_closed, 1);
        server.shutdown();
    }

    #[test]
    fn stalled_reader_is_shed_with_overloaded_farewell() {
        // Tiny queue cap: a client that never reads its echoes overflows
        // the bounded write queue almost immediately.
        let config = LiveConfig::default().with_queue_cap(2 * 1024);
        let server = LiveServer::spawn(config, "reactor", EchoApp::default()).expect("spawn");
        let mut stalled = TestClient::connect(server.addr(), 1, "echo");
        assert_eq!(
            stalled.recv(Duration::from_secs(5)).expect("verdict"),
            vec![VERDICT_ACCEPT]
        );
        // Pump big frames without ever reading: echoes pile up server-side.
        let blob = vec![0x42u8; 1024];
        let t0 = Instant::now();
        while server.stats().shed == 0 && t0.elapsed() < Duration::from_secs(10) {
            stalled.send_raw(&blob);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.stats().shed, 1, "stalled client must be shed");
        // The farewell is still delivered once we finally read.
        let mut last = None;
        while let Some(f) = stalled.recv(Duration::from_millis(500)) {
            last = Some(f);
            if parse_farewell(last.as_ref().unwrap()).is_some() {
                break;
            }
        }
        assert_eq!(
            last.as_deref().and_then(parse_farewell),
            Some(ErrorKind::Overloaded),
            "shed client must observe the Overloaded farewell"
        );
        server.shutdown();
    }
}
