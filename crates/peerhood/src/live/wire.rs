//! The live TCP transport framing, shared by every party on the socket.
//!
//! Both live drivers ([`LiveNet`](super::LiveNet) and
//! [`LiveServer`](super::LiveServer)), the thin clients of the load harness
//! and the regression tests all speak the same byte stream:
//!
//! 1. Every frame is `[u32 big-endian length][payload]`.
//! 2. The **first** frame of a connection is the initiator's [`Handshake`].
//! 3. The responder answers with a one-frame verdict: [`VERDICT_ACCEPT`]
//!    (a single `1` byte) or [`VERDICT_REJECT`] (`0` followed by a UTF-8
//!    reason).
//! 4. After an accepted verdict, frames carry opaque application payloads
//!    (for the community service: `Request`/`Response` wire messages).
//! 5. A responder about to drop the connection *may* send one final
//!    **farewell** control frame — [`FAREWELL_TAG`] followed by a stable
//!    [`ErrorKind`] wire code — so the peer learns *why* it was dropped
//!    ([`ErrorKind::Overloaded`] for backpressure shedding,
//!    [`ErrorKind::Timeout`] for idle-connection expiry). The tag byte
//!    `0xFF` can never open a legitimate application frame: community
//!    frames start with the protocol version (currently `1`) and verdict
//!    frames with `0`/`1`.

use codec::{DecodeError, Wire};

use crate::error::ErrorKind;
use crate::types::{DeviceId, ResumeToken};

/// First byte of an accepting verdict frame.
pub const VERDICT_ACCEPT: u8 = 1;
/// First byte of a rejecting verdict frame (rest is a UTF-8 reason).
pub const VERDICT_REJECT: u8 = 0;
/// First byte of a farewell control frame (second byte: [`ErrorKind`] code).
pub const FAREWELL_TAG: u8 = 0xFF;

/// Handshake sent as the first frame of every live data connection.
#[derive(Clone, Debug, PartialEq)]
pub struct Handshake {
    /// The initiating device.
    pub from: DeviceId,
    /// The target service name.
    pub service: String,
    /// Resume token when re-establishing a logical connection.
    pub resume: Option<ResumeToken>,
}

impl Wire for Handshake {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.from.encode_to(out);
        self.resume.encode_to(out);
        self.service.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Handshake {
            from: DeviceId::decode(input)?,
            resume: Option::<ResumeToken>::decode(input)?,
            service: String::decode(input)?,
        })
    }
}

/// Length-prefixes one payload into a wire-ready byte vector.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(4 + payload.len());
    msg.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    msg.extend_from_slice(payload);
    msg
}

/// Builds the two-byte farewell payload for `kind` (not yet length-prefixed).
pub fn farewell(kind: ErrorKind) -> Vec<u8> {
    vec![FAREWELL_TAG, kind.code()]
}

/// Recognizes a farewell control frame, returning its [`ErrorKind`].
pub fn parse_farewell(payload: &[u8]) -> Option<ErrorKind> {
    match payload {
        [FAREWELL_TAG, code] => ErrorKind::from_code(*code),
        _ => None,
    }
}

/// Largest payload a frame header may claim (1 MiB). Community requests
/// and responses are orders of magnitude smaller; anything bigger is a
/// hostile or corrupt header, and honoring it would let a 4-byte header
/// commit the receiver to a multi-gigabyte buffer.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// A hostile or corrupt length header: the connection must be dropped.
///
/// This is a *hard* protocol violation, distinct from the "not enough
/// bytes yet" case ([`FrameBuf::pop`] returning `Ok(None)`): waiting for
/// more bytes cannot fix a claim that exceeds [`MAX_FRAME_LEN`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameError {
    /// The payload length the 4-byte header claimed.
    pub claimed: usize,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame header claims {} bytes (max {MAX_FRAME_LEN})",
            self.claimed
        )
    }
}

impl std::error::Error for FrameError {}

/// An incremental length-prefixed frame parser over a growing byte buffer.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty parser.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops one complete frame payload. `Ok(None)` means "not enough
    /// bytes yet" — feed more and retry.
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the header claims more than [`MAX_FRAME_LEN`]
    /// bytes. The claim is rejected *before* any buffering or allocation
    /// is sized by it; the caller must drop the connection (the stream
    /// offset is unrecoverable after a bad header).
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError { claimed: len });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }

    /// Bytes currently buffered (incomplete frame tail included).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ConnId;

    #[test]
    fn handshake_encoding_round_trips() {
        for resume in [
            None,
            Some(ResumeToken {
                initiator: DeviceId::new(3),
                conn: ConnId::new(9),
            }),
        ] {
            let hs = Handshake {
                from: DeviceId::new(7),
                service: "PeerHoodCommunity".into(),
                resume,
            };
            assert_eq!(Handshake::decode_exact(&hs.encode()), Ok(hs));
        }
    }

    #[test]
    fn handshake_decode_rejects_garbage() {
        assert!(Handshake::decode_exact(&[1, 2, 3]).is_err());
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut fb = FrameBuf::new();
        let a = frame(b"hello");
        let b = frame(b"");
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        // Feed one byte at a time: frames pop exactly when complete.
        let mut got = Vec::new();
        for byte in stream {
            fb.extend(&[byte]);
            while let Some(f) = fb.pop().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![b"hello".to_vec(), Vec::new()]);
        assert!(fb.is_empty());
    }

    #[test]
    fn hostile_length_header_is_rejected_not_buffered() {
        // A 4-byte header claiming ~4 GiB: the old parser would sit
        // waiting (and let the peer feed it 4 GiB one segment at a time);
        // the claim must be rejected the moment the header is readable.
        let mut fb = FrameBuf::new();
        fb.extend(&u32::MAX.to_be_bytes());
        assert_eq!(
            fb.pop(),
            Err(FrameError {
                claimed: u32::MAX as usize
            })
        );
        // The error is sticky until the caller drops the connection —
        // the stream offset is unrecoverable.
        fb.extend(b"more bytes");
        assert!(fb.pop().is_err());

        // One byte over the cap: rejected; at the cap: accepted.
        let mut fb = FrameBuf::new();
        fb.extend(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes());
        assert_eq!(
            fb.pop(),
            Err(FrameError {
                claimed: MAX_FRAME_LEN + 1
            })
        );
        let mut fb = FrameBuf::new();
        let payload = vec![0xAB; MAX_FRAME_LEN];
        fb.extend(&frame(&payload));
        assert_eq!(fb.pop(), Ok(Some(payload)));
    }

    #[test]
    fn frame_error_display_names_the_claim_and_the_cap() {
        let e = FrameError { claimed: 1 << 30 };
        let msg = e.to_string();
        assert!(msg.contains(&(1usize << 30).to_string()), "{msg}");
        assert!(msg.contains(&MAX_FRAME_LEN.to_string()), "{msg}");
    }

    #[test]
    fn farewell_round_trips_every_kind() {
        for kind in ErrorKind::ALL {
            assert_eq!(parse_farewell(&farewell(kind)), Some(kind));
        }
        assert_eq!(parse_farewell(&[FAREWELL_TAG]), None);
        assert_eq!(parse_farewell(&[FAREWELL_TAG, 0]), None, "0 is no code");
        assert_eq!(parse_farewell(&[1, 2]), None, "version byte, not farewell");
        assert_eq!(parse_farewell(b""), None);
    }
}
