//! Deterministic simulator driver: many daemons + applications in one
//! [`netsim`] world.
//!
//! [`Cluster`] is the executable mobile environment. It owns the world map,
//! the event queue, and one `(Daemon, Application)` pair per device, and it
//! *is* the plugin layer: every [`PluginCommand`] a daemon emits is turned
//! into world queries and timed events using the technology profiles of
//! [`netsim::radio`] — inquiry windows, response offsets, connection setup
//! times, per-frame transfer times, and range checks at both send and
//! delivery time.
//!
//! Everything is driven from a single seeded RNG, so a run is a pure
//! function of `(scenario, seed)`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};

use codec::Bytes;

use netsim::world::{EpochView, NodeBuilder, NodeId};
use netsim::{
    ActorId, BurstState, RadioEnv, RegionLanes, SimRng, SimTime, Technology, Trace, TraceStats,
    World,
};

use crate::api::AppEvent;
use crate::app::{AppCtx, Application, PendingRecord, TraceSink};
use crate::config::DaemonConfig;
use crate::daemon::{Daemon, DaemonInput, DaemonOutput};
use crate::library::Library;
use crate::plugin::{PluginCommand, PluginEvent};
use crate::service::ServiceInfo;
use crate::types::{AttemptId, DeviceId, DeviceInfo, LinkId, ResumeToken};

/// Approximate wire size of a service-discovery query.
const SDP_QUERY_BYTES: usize = 48;
/// Approximate wire size of one service record in a discovery reply.
const SDP_RECORD_BYTES: usize = 72;
/// Approximate wire size of connection-control frames (accept, close).
const CTRL_BYTES: usize = 24;
/// How long after the radios lose each other the transport notices.
const LINK_DOWN_DETECT: Duration = Duration::from_millis(400);
/// How long an unanswered service query takes to give up.
const SDP_TIMEOUT: Duration = Duration::from_millis(1_000);
/// Salt xored into the scenario seed to derive the *fault* RNG lanes.
/// Faults draw from their own per-node streams so an inert [`FaultPlan`]
/// (which draws nothing) leaves the main lanes — and therefore the
/// digest — bit-identical to a fault-free run.
///
/// [`FaultPlan`]: netsim::FaultPlan
const FAULT_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Default number of region event lanes (see [`Cluster::set_region_lanes`]).
const DEFAULT_REGION_LANES: usize = 8;

/// Minimum events per epoch-engine worker: below this, per-spawn overhead
/// outweighs the fan-out, so small batches get fewer (or one) workers. A
/// pure cost knob — worker count never affects results.
const EPOCH_MIN_EVENTS_PER_WORKER: usize = 16;

#[derive(Debug)]
enum Ev {
    Start(NodeId),
    DaemonWake(NodeId),
    AppTimer(NodeId, u64),
    InquiryFound {
        seeker: NodeId,
        tech: Technology,
        found: NodeId,
    },
    InquiryDone {
        node: NodeId,
        tech: Technology,
    },
    ServiceQueryArrive {
        to: NodeId,
        from: NodeId,
        tech: Technology,
    },
    ServiceReplyArrive {
        to: NodeId,
        from: NodeId,
        services: Vec<ServiceInfo>,
        /// Which radio carried the reply; `None` for the synthetic
        /// empty reply a local SDP timeout produces (not a wire frame,
        /// so fault injection never touches it).
        tech: Option<Technology>,
    },
    ConnectSetupDone {
        initiator: NodeId,
        attempt: AttemptId,
        target: NodeId,
        service: String,
        tech: Technology,
        resume: Option<ResumeToken>,
    },
    ConnectResultArrive {
        to: NodeId,
        attempt: AttemptId,
        result: Result<LinkId, String>,
    },
    FrameArrive {
        to: NodeId,
        link: LinkId,
        payload: Bytes,
    },
    PeerClosedArrive {
        to: NodeId,
        link: LinkId,
    },
    LinkDownArrive {
        to: NodeId,
        link: LinkId,
    },
    /// A scheduled daemon outage begins ([`netsim::CrashWindow`]).
    CrashStart(NodeId),
    /// The crashed daemon restarts (with empty soft state).
    CrashEnd(NodeId),
}

#[derive(Debug)]
struct Link {
    a: NodeId,
    b: NodeId,
    tech: Technology,
    /// While the responder has not yet accepted/rejected: the initiator
    /// waiting for the result.
    pending: Option<(NodeId, AttemptId)>,
    /// Latest scheduled arrival toward `a` / toward `b`. The thesis's
    /// BTPlugin "offers ordered and reliable data delivery" (L2CAP), so
    /// frames on one link must not overtake each other even though their
    /// individual transfer times are sampled independently.
    last_arrival_to_a: SimTime,
    last_arrival_to_b: SimTime,
    /// Whether the degradation warning (peer near the edge of range) has
    /// already been raised for this link.
    degraded_notified: bool,
}

impl Link {
    fn other(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Returns the FIFO-corrected arrival time of a message toward `to`
    /// whose raw transfer would land at `raw`, and records it.
    fn fifo_arrival(&mut self, to: NodeId, raw: SimTime) -> SimTime {
        let last = if to == self.a {
            &mut self.last_arrival_to_a
        } else {
            &mut self.last_arrival_to_b
        };
        let at = raw.max(*last + Duration::from_micros(1));
        *last = at;
        at
    }
}

/// The set of pending `DaemonWake` timestamps for one node — a sorted `Vec`
/// rather than a `BTreeSet`: a node rarely has more than a couple of wakes
/// in flight, and at million-node scale the tree's per-node allocation
/// dominated. Empty sets hold no heap at all.
#[derive(Debug, Default)]
struct WakeSet(Vec<SimTime>);

impl WakeSet {
    /// Inserts `t`, returning `false` if it was already pending.
    fn insert(&mut self, t: SimTime) -> bool {
        match self.0.binary_search(&t) {
            Ok(_) => false,
            Err(i) => {
                self.0.insert(i, t);
                true
            }
        }
    }

    fn remove(&mut self, t: SimTime) {
        if let Ok(i) = self.0.binary_search(&t) {
            self.0.remove(i);
        }
    }
}

/// Fault-decision state for one node, allocated lazily on the first draw
/// that can actually fire. Fault-free runs (the common case) never pay for
/// it: the lane derivation [`SimRng::lane`] is stateless, so creating the
/// stream on first use yields exactly the sequence an eagerly-created one
/// would have produced.
#[derive(Debug)]
struct FaultRt {
    /// Dedicated fault-decision lane (see [`FAULT_STREAM_SALT`]): the
    /// Gilbert channel and refusal draws charged to this node.
    rng: SimRng,
    /// Per-technology Gilbert channel state for frames *received* by this
    /// node.
    burst: [BurstState; 3],
}

struct NodeRt<A> {
    daemon: Daemon,
    app: A,
    lib: Library,
    wakes: WakeSet,
    /// This node's main randomness lane: `SimRng::lane(seed, id)`. Every
    /// protocol draw a node's activity causes (discovery misses, transfer
    /// jitter, connect timing) comes from the acting node's own lane, so a
    /// node's stream depends only on `(seed, id)` and its own activity —
    /// never on how many other nodes exist or which lane dispatched it.
    rng: SimRng,
    /// Lazily-initialized fault state (see [`FaultRt`]).
    fault: Option<Box<FaultRt>>,
}

impl<A> NodeRt<A> {
    /// The node's fault state, deriving its lane on first use.
    fn fault(&mut self, seed: u64, node: NodeId) -> &mut FaultRt {
        self.fault.get_or_insert_with(|| {
            Box::new(FaultRt {
                rng: SimRng::lane(seed ^ FAULT_STREAM_SALT, node.index() as u64),
                burst: [BurstState::default(); 3],
            })
        })
    }
}

/// A deterministic simulation of many PeerHood devices and their
/// applications.
///
/// See the [crate-level example](crate) for basic use. The typical
/// experiment loop is: build nodes, [`Cluster::start`], then alternate
/// [`Cluster::run_until`] / [`Cluster::with_app`] to script user actions and
/// observe application state.
pub struct Cluster<A> {
    world: World,
    /// Region-sharded event lanes: every event is scheduled on the lane
    /// owning its target node's home region, and [`RegionLanes`] merges the
    /// lane heads back into the exact serial `(time, seq)` order. Lane
    /// assignment is therefore *unobservable* — any lane count and any
    /// region-to-lane mapping produce a bit-identical run.
    queue: RegionLanes<Ev>,
    nodes: Vec<NodeRt<A>>,
    /// Prebuilt identity snapshots, one per node, cloned (not rebuilt) for
    /// every plugin event that carries a `DeviceInfo`. A shared column —
    /// not a `NodeRt` field — because epoch workers need *cross-node* read
    /// access (an inquiry response carries the found node's identity) while
    /// holding only their own `&mut` node range.
    infos: Vec<DeviceInfo>,
    /// Each node's interned actor handle in `trace`, for the buffered
    /// record path ([`TraceSink::Buffer`]).
    actor_ids: Vec<ActorId>,
    links: BTreeMap<LinkId, Link>,
    next_link: u64,
    /// Scenario seed; per-node RNG lanes derive from it statelessly via
    /// [`SimRng::lane`], so a node's streams never depend on cluster size.
    seed: u64,
    /// Radio profiles + fault plan shared with the world.
    env: RadioEnv,
    /// Nodes whose daemon is inside a crash window: all daemon inputs are
    /// dropped until the matching [`Ev::CrashEnd`].
    down: BTreeSet<NodeId>,
    trace: Trace,
    started: bool,
    /// Worker count for the epoch engine (0 = auto, 1 = one worker).
    threads: usize,
    /// Reused batch buffer for [`RegionLanes::drain_batch`].
    batch_buf: Vec<Ev>,
    /// Accumulated phase breakdown of [`Cluster::run_until`] (counters are
    /// always cheap; wall-clock sampling only when enabled).
    timing: EpochTiming,
    /// Whether [`EpochTiming`] wall-clock fields are sampled.
    collect_timing: bool,
}

/// Wall-clock phase breakdown of [`Cluster::run_until`], accumulated across
/// calls. The event counters are always maintained; the `Duration` fields
/// are sampled only when enabled via [`Cluster::set_collect_timing`] (they
/// read the host clock, which costs a few ns per batch).
#[derive(Copy, Clone, Debug, Default)]
pub struct EpochTiming {
    /// Time spent draining timestamp batches from the region lanes.
    pub drain: Duration,
    /// Time spent partitioning parallel batches by home node.
    pub gather: Duration,
    /// Time spent executing events (worker fan-out for parallel batches,
    /// inline dispatch for serial ones).
    pub execute: Duration,
    /// Time spent replaying worker outboxes in canonical order.
    pub commit: Duration,
    /// Timestamp batches executed through the parallel epoch engine.
    pub par_batches: u64,
    /// Events executed through the parallel epoch engine.
    pub par_events: u64,
    /// Timestamp batches dispatched serially (ineligible or tiny).
    pub serial_batches: u64,
    /// Events dispatched serially.
    pub serial_events: u64,
}

/// Index of a technology in per-technology state arrays (burst channels).
fn tech_slot(tech: Technology) -> usize {
    match tech {
        Technology::Bluetooth => 0,
        Technology::Wlan => 1,
        Technology::Gprs => 2,
    }
}

/// The node an event is addressed to — the event's *owner* for lane
/// routing. Routing is purely a sharding hint (see [`RegionLanes`]); a
/// stale home region after a node crosses a boundary only changes which
/// lane holds the event, never when or in which order it is delivered.
fn ev_target(ev: &Ev) -> NodeId {
    match ev {
        Ev::Start(n) | Ev::DaemonWake(n) | Ev::AppTimer(n, _) => *n,
        Ev::InquiryFound { seeker, .. } => *seeker,
        Ev::InquiryDone { node, .. } => *node,
        Ev::ServiceQueryArrive { to, .. }
        | Ev::ServiceReplyArrive { to, .. }
        | Ev::ConnectResultArrive { to, .. }
        | Ev::FrameArrive { to, .. }
        | Ev::PeerClosedArrive { to, .. }
        | Ev::LinkDownArrive { to, .. } => *to,
        Ev::ConnectSetupDone { target, .. } => *target,
        Ev::CrashStart(n) | Ev::CrashEnd(n) => *n,
    }
}

impl<A: Application> Cluster<A> {
    /// Creates an empty cluster with default radio profiles and no faults;
    /// all randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Cluster::with_env(seed, RadioEnv::default())
    }

    /// Creates an empty cluster running inside the given [`RadioEnv`]:
    /// its technology profiles drive every range/timing computation and its
    /// [`FaultPlan`](netsim::FaultPlan) is injected deterministically.
    ///
    /// An inert fault plan draws no randomness, so
    /// `Cluster::with_env(seed, RadioEnv::default())` is bit-identical to
    /// `Cluster::new(seed)`.
    pub fn with_env(seed: u64, env: RadioEnv) -> Self {
        Cluster {
            world: World::with_env(env.clone()),
            queue: RegionLanes::new(DEFAULT_REGION_LANES),
            nodes: Vec::new(),
            infos: Vec::new(),
            actor_ids: Vec::new(),
            links: BTreeMap::new(),
            next_link: 0,
            seed,
            down: BTreeSet::new(),
            env,
            trace: Trace::new(),
            started: false,
            threads: 1,
            batch_buf: Vec::new(),
            timing: EpochTiming::default(),
            collect_timing: false,
        }
    }

    /// Reconfigures the number of region event lanes. Lane count is a pure
    /// sharding knob: [`RegionLanes`] re-interleaves lane heads into exact
    /// serial order, so any value yields a bit-identical run. Must be
    /// called before [`Cluster::start`] (the queue must be empty).
    pub fn set_region_lanes(&mut self, lanes: usize) {
        assert!(
            !self.started && self.queue.is_empty(),
            "set_region_lanes must be called before start()"
        );
        self.queue = RegionLanes::new(lanes);
    }

    /// The configured number of region event lanes.
    pub fn region_lanes(&self) -> usize {
        self.queue.lane_count()
    }

    /// Sets the spatial region edge (metres) used for world sharding and
    /// lane routing. Pure sharding knob — answers and digests are
    /// independent of it. Panics unless `edge` is finite and positive.
    pub fn set_region_edge(&mut self, edge: f64) {
        self.world.set_region_edge(edge);
    }

    /// Pre-allocates storage for `n` further nodes across the world's
    /// structure-of-arrays columns and the cluster's runtime table, so a
    /// crowd build does one big allocation per column instead of a
    /// doubling cascade.
    pub fn reserve_nodes(&mut self, n: usize) {
        self.world.reserve_nodes(n);
        self.nodes.reserve(n);
        self.infos.reserve(n);
        self.actor_ids.reserve(n);
    }

    /// The radio environment this cluster runs in.
    pub fn env(&self) -> &RadioEnv {
        &self.env
    }

    /// Sets the worker count for the parallel lane-epoch engine: `1` (the
    /// default) runs every epoch inline on one worker, `0` means "one
    /// worker per hardware thread", anything else is taken literally.
    ///
    /// The engine executes node-local timestamp batches concurrently —
    /// partitioned by home node, effects buffered per worker and committed
    /// in canonical batch order — so the trace digest is bit-identical for
    /// every worker count (see the engine comment below). `ph-harness`
    /// enforces this with digest-equality tests and `ci.sh` gates on it.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The configured epoch-engine worker count (see [`Cluster::set_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Adds a device with a default [`DaemonConfig`] and the given
    /// application. When the cluster is already running, the device boots at
    /// the current virtual time (churn arrivals).
    pub fn add_node(&mut self, builder: NodeBuilder, app: A) -> NodeId {
        self.add_node_with(builder, |c| c, app)
    }

    /// Adds a device, letting `configure` adjust its daemon configuration.
    pub fn add_node_with(
        &mut self,
        builder: NodeBuilder,
        configure: impl FnOnce(DaemonConfig) -> DaemonConfig,
        app: A,
    ) -> NodeId {
        let id = self.world.add_node(builder);
        let info = DeviceInfo::new(
            DeviceId::new(id.index() as u64),
            self.world.name(id),
            self.world.technologies(id).iter().copied(),
        );
        let config = configure(DaemonConfig::new(info.clone()));
        let actor_id = self.trace.intern_actor(self.world.name(id));
        let lane_seed = id.index() as u64;
        self.infos.push(info);
        self.actor_ids.push(actor_id);
        self.nodes.push(NodeRt {
            daemon: Daemon::new(config),
            app,
            lib: Library::new(),
            wakes: WakeSet::default(),
            rng: SimRng::lane(self.seed, lane_seed),
            fault: None,
        });
        if self.started {
            let now = self.queue.now();
            self.schedule_ev(now, Ev::Start(id));
        }
        id
    }

    /// Boots every device (schedules their start at the current time).
    /// Call once after adding the initial nodes.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let now = self.queue.now();
        for id in 0..self.nodes.len() {
            self.schedule_ev(now, Ev::Start(NodeId::from_index(id)));
        }
        let crashes = self.env.faults().crashes().to_vec();
        for cw in crashes {
            let node = NodeId::from_index(cw.node as usize);
            let down = cw.down_from.max(now);
            let up = cw.up_at.max(down);
            self.schedule_ev(down, Ev::CrashStart(node));
            self.schedule_ev(up, Ev::CrashEnd(node));
        }
    }

    /// The event lane owning `node`'s home region. Out-of-range ids (crash
    /// windows can name nodes that were never added) fall back to lane 0 —
    /// harmless, since lane choice is unobservable.
    fn home_lane(&self, node: NodeId) -> usize {
        if node.index() < self.world.len() {
            self.queue.route(self.world.region_of(node))
        } else {
            0
        }
    }

    /// Schedules `ev` on the lane owning its target node's region.
    fn schedule_ev(&mut self, at: SimTime, ev: Ev) {
        let lane = self.home_lane(ev_target(&ev));
        self.queue.schedule(lane, at, ev);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The world map (positions, mobility, range queries).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The device name of a node.
    pub fn name(&self, node: NodeId) -> &str {
        &self.infos[node.index()].name
    }

    /// The [`DeviceId`] of a node (stable mapping from the world index).
    pub fn device_id(&self, node: NodeId) -> DeviceId {
        DeviceId::new(node.index() as u64)
    }

    /// The node hosting a [`DeviceId`].
    pub fn node_of(&self, device: DeviceId) -> NodeId {
        NodeId::from_index(device.raw() as usize)
    }

    /// Read access to a node's application.
    pub fn app(&self, node: NodeId) -> &A {
        &self.nodes[node.index()].app
    }

    /// Read access to a node's daemon (neighbor table, registry — for tests
    /// and diagnostics).
    pub fn daemon(&self, node: NodeId) -> &Daemon {
        &self.nodes[node.index()].daemon
    }

    /// The message-sequence trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace, so harnesses can fold app-level
    /// counters (e.g. per-node gossip stats) into [`TraceStats`] before
    /// computing the run digest.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The always-on run counters (trace events, frames, inquiries,
    /// connects, handovers).
    pub fn stats(&self) -> &TraceStats {
        self.trace.stats()
    }

    /// Bounds the trace's event ring to `capacity` retained events; the
    /// [`TraceStats`] counters keep exact aggregate counts regardless.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// Clears the message-sequence trace (e.g. between measured operations),
    /// keeping the configured capacity bound. Counters reset too.
    pub fn clear_trace(&mut self) {
        let cap = self.trace.capacity();
        self.trace = if cap == usize::MAX {
            Trace::new()
        } else {
            Trace::with_capacity(cap)
        };
        // Re-interning in node order reassigns the same handles, but refresh
        // the stored ids anyway so they can never drift from the pool.
        for (info, slot) in self.infos.iter().zip(self.actor_ids.iter_mut()) {
            *slot = self.trace.intern_actor(&info.name);
        }
    }

    /// The accumulated [`run_until`](Cluster::run_until) phase breakdown.
    pub fn timing(&self) -> &EpochTiming {
        &self.timing
    }

    /// Enables (or disables) wall-clock sampling for [`EpochTiming`]. Off
    /// by default; the batch/event counters are maintained regardless.
    pub fn set_collect_timing(&mut self, on: bool) {
        self.collect_timing = on;
    }

    /// Number of scheduled events not yet delivered — the queue's live
    /// footprint, reported so scale benches can watch memory pressure.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Processes events until `stop` returns `true` (checked after each
    /// event) or `deadline` passes. Returns the time at which `stop` first
    /// held, if it did.
    pub fn run_until_condition(
        &mut self,
        deadline: SimTime,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> Option<SimTime> {
        if stop(self) {
            return Some(self.now());
        }
        while self.queue.peek_time().is_some_and(|t| t <= deadline) {
            let (t, ev) = self.queue.pop().expect("peeked");
            self.dispatch(ev);
            if stop(self) {
                return Some(t);
            }
        }
        self.queue.advance_to(deadline);
        None
    }

    /// Runs `f` against a node's application at the current virtual time —
    /// the hook through which scenarios script "user" actions. Any PeerHood
    /// requests or timers the application issues are processed immediately.
    pub fn with_app<R>(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut AppCtx<'_>) -> R) -> R {
        let now = self.queue.now();
        let mut timers = Vec::new();
        let result = {
            let rt = &mut self.nodes[node.index()];
            let mut ctx = AppCtx::new(
                now,
                &self.infos[node.index()].name,
                &mut rt.lib,
                &mut timers,
                Some(&mut self.trace),
            );
            f(&mut rt.app, &mut ctx)
        };
        self.after_app_callback(node, timers);
        result
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------
    // All fault decisions happen here, in serial dispatch order, drawing
    // from the charged node's `fault_rng` lane only. `SimRng::chance`
    // consumes nothing for zero probabilities, so with an inert plan these
    // calls are pure no-ops and the run digest matches a fault-free run
    // bit-for-bit. Attribution: frame loss and link kills charge the
    // *receiver*, connection refusals charge the *initiator*.

    /// Advances the receiving node's per-technology Gilbert channel and
    /// samples one frame. An inert profile draws nothing, so it also skips
    /// materializing the node's lazy fault state.
    fn frame_lost(&mut self, to: NodeId, tech: Technology) -> bool {
        let profile = *self.env.faults().profile(tech);
        if profile.is_inert() {
            return false;
        }
        let f = self.nodes[to.index()].fault(self.seed, to);
        profile.frame_lost(&mut f.burst[tech_slot(tech)], &mut f.rng)
    }

    /// Samples whether the whole link dies under this frame (charged to the
    /// receiver's fault lane).
    fn link_killed(&mut self, to: NodeId, tech: Technology) -> bool {
        let p = self.env.faults().profile(tech).link_kill;
        // `chance(0)` draws nothing — don't materialize fault state for it.
        p > 0.0 && self.nodes[to.index()].fault(self.seed, to).rng.chance(p)
    }

    /// Samples whether a connection attempt is refused outright (charged to
    /// the initiator's fault lane).
    fn connect_refused(&mut self, initiator: NodeId, tech: Technology) -> bool {
        let p = self.env.faults().profile(tech).connect_refuse;
        p > 0.0
            && self.nodes[initiator.index()]
                .fault(self.seed, initiator)
                .rng
                .chance(p)
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Start(node) => {
                let now = self.queue.now();
                let mut timers = Vec::new();
                {
                    let rt = &mut self.nodes[node.index()];
                    let mut ctx = AppCtx::new(
                        now,
                        &self.infos[node.index()].name,
                        &mut rt.lib,
                        &mut timers,
                        Some(&mut self.trace),
                    );
                    rt.app.on_start(&mut ctx);
                }
                self.after_app_callback(node, timers);
                self.feed_daemon(node, DaemonInput::Tick);
            }
            Ev::DaemonWake(node) => {
                let now = self.queue.now();
                self.nodes[node.index()].wakes.remove(now);
                self.feed_daemon(node, DaemonInput::Tick);
            }
            Ev::AppTimer(node, token) => {
                let now = self.queue.now();
                let mut timers = Vec::new();
                {
                    let rt = &mut self.nodes[node.index()];
                    let mut ctx = AppCtx::new(
                        now,
                        &self.infos[node.index()].name,
                        &mut rt.lib,
                        &mut timers,
                        Some(&mut self.trace),
                    );
                    rt.app.on_timer(token, &mut ctx);
                }
                self.after_app_callback(node, timers);
            }
            Ev::InquiryFound {
                seeker,
                tech,
                found,
            } => {
                let now = self.queue.now();
                // The responder must still be in range when its answer lands.
                if self.world.reachable(seeker, found, tech, now) {
                    self.trace.stats_mut().inquiry_responses += 1;
                    let device = self.device_info(found);
                    self.feed_daemon(
                        seeker,
                        DaemonInput::Plugin(PluginEvent::InquiryResponse {
                            technology: tech,
                            device,
                        }),
                    );
                }
            }
            Ev::InquiryDone { node, tech } => {
                self.feed_daemon(
                    node,
                    DaemonInput::Plugin(PluginEvent::InquiryComplete { technology: tech }),
                );
            }
            Ev::ServiceQueryArrive { to, from, tech } => {
                if self.frame_lost(to, tech) {
                    self.trace.stats_mut().frames_dropped += 1;
                    return;
                }
                let device = self.device_id_of(from);
                self.feed_daemon(
                    to,
                    DaemonInput::Plugin(PluginEvent::ServiceQuery { device }),
                );
            }
            Ev::ServiceReplyArrive {
                to,
                from,
                services,
                tech,
            } => {
                if let Some(tech) = tech {
                    if self.frame_lost(to, tech) {
                        self.trace.stats_mut().frames_dropped += 1;
                        return;
                    }
                }
                let device = self.device_id_of(from);
                self.feed_daemon(
                    to,
                    DaemonInput::Plugin(PluginEvent::ServiceReply { device, services }),
                );
            }
            Ev::ConnectSetupDone {
                initiator,
                attempt,
                target,
                service,
                tech,
                resume,
            } => {
                let now = self.queue.now();
                if !self.world.reachable(initiator, target, tech, now) {
                    // The peer moved away while setup was in flight: this is
                    // a failed connect like any other, plus its own counter
                    // so summaries can tell it apart from refusals.
                    let stats = self.trace.stats_mut();
                    stats.connects_failed += 1;
                    stats.connects_lost_setup += 1;
                    self.feed_daemon(
                        initiator,
                        DaemonInput::Plugin(PluginEvent::ConnectResult {
                            attempt,
                            result: Err(format!("{tech} peer out of range during setup")),
                        }),
                    );
                    return;
                }
                if self.down.contains(&target) {
                    // The target's daemon is inside a crash window: nobody
                    // is listening, so the transport reports a refusal.
                    self.trace.stats_mut().connects_failed += 1;
                    self.feed_daemon(
                        initiator,
                        DaemonInput::Plugin(PluginEvent::ConnectResult {
                            attempt,
                            result: Err(format!("{tech} peer daemon not responding")),
                        }),
                    );
                    return;
                }
                let link = LinkId::new(self.next_link);
                self.next_link += 1;
                self.links.insert(
                    link,
                    Link {
                        a: initiator,
                        b: target,
                        tech,
                        pending: Some((initiator, attempt)),
                        last_arrival_to_a: now,
                        last_arrival_to_b: now,
                        degraded_notified: false,
                    },
                );
                let device = self.device_info(initiator);
                self.feed_daemon(
                    target,
                    DaemonInput::Plugin(PluginEvent::IncomingConnection {
                        link,
                        device,
                        service,
                        technology: tech,
                        resume,
                    }),
                );
            }
            Ev::ConnectResultArrive {
                to,
                attempt,
                result,
            } => {
                if result.is_ok() {
                    self.trace.stats_mut().connects_ok += 1;
                } else {
                    self.trace.stats_mut().connects_failed += 1;
                }
                self.feed_daemon(
                    to,
                    DaemonInput::Plugin(PluginEvent::ConnectResult { attempt, result }),
                );
            }
            Ev::FrameArrive { to, link, payload } => {
                let now = self.queue.now();
                let Some(l) = self.links.get(&link) else {
                    // Link torn down while the frame was in flight.
                    self.trace.stats_mut().frames_dropped += 1;
                    return;
                };
                let tech = l.tech;
                if self.down.contains(&to) {
                    // Frames toward a crashed daemon fall on the floor.
                    self.trace.stats_mut().frames_dropped += 1;
                    return;
                }
                if self.frame_lost(to, tech) {
                    self.trace.stats_mut().frames_dropped += 1;
                    return;
                }
                if self.link_killed(to, tech) {
                    self.trace.stats_mut().frames_dropped += 1;
                    self.tear_down_link(link);
                    return;
                }
                let l = self.links.get(&link).expect("checked above");
                if self.world.reachable(l.a, l.b, l.tech, now) {
                    let stats = self.trace.stats_mut();
                    stats.frames_delivered += 1;
                    stats.bytes_delivered += payload.len() as u64;
                    self.feed_daemon(
                        to,
                        DaemonInput::Plugin(PluginEvent::Frame { link, payload }),
                    );
                } else {
                    self.trace.stats_mut().frames_dropped += 1;
                    self.tear_down_link(link);
                }
            }
            Ev::PeerClosedArrive { to, link } => {
                self.feed_daemon(to, DaemonInput::Plugin(PluginEvent::PeerClosed { link }));
            }
            Ev::LinkDownArrive { to, link } => {
                self.feed_daemon(to, DaemonInput::Plugin(PluginEvent::LinkDown { link }));
            }
            Ev::CrashStart(node) => {
                if node.index() >= self.nodes.len() || !self.down.insert(node) {
                    return;
                }
                // Every radio link with an endpoint on the node dies; peers
                // notice after the usual transport detection delay.
                let dead: Vec<LinkId> = self
                    .links
                    .iter()
                    .filter(|(_, l)| l.a == node || l.b == node)
                    .map(|(id, _)| *id)
                    .collect();
                for link in dead {
                    self.tear_down_link(link);
                }
                // The daemon process restarts from empty soft state; the
                // local application sees its connections close. Any requests
                // it issues in response are lost — the daemon is down.
                let now = self.queue.now();
                let mut outs = Vec::new();
                self.nodes[node.index()]
                    .daemon
                    .crash_restart(now, &mut outs);
                let mut discarded = VecDeque::new();
                for out in outs {
                    if let DaemonOutput::App(ev) = out {
                        self.deliver_app_event(node, ev, &mut discarded);
                    }
                }
            }
            Ev::CrashEnd(node) => {
                if node.index() < self.nodes.len() && self.down.remove(&node) {
                    self.feed_daemon(node, DaemonInput::Tick);
                }
            }
        }
    }

    /// Schedules timers produced by an app callback and routes its queued
    /// PeerHood requests into the daemon.
    fn after_app_callback(&mut self, node: NodeId, timers: Vec<(SimTime, u64)>) {
        for (at, token) in timers {
            self.schedule_ev(at, Ev::AppTimer(node, token));
        }
        let requests = self.nodes[node.index()].lib.drain();
        for req in requests {
            self.feed_daemon(node, DaemonInput::App(req));
        }
    }

    /// Runs the daemon input loop: daemon outputs may produce app events,
    /// whose handlers may queue further daemon requests, and so on until
    /// quiescent.
    fn feed_daemon(&mut self, node: NodeId, input: DaemonInput) {
        let mut work: VecDeque<(NodeId, DaemonInput)> = VecDeque::new();
        work.push_back((node, input));
        while let Some((n, input)) = work.pop_front() {
            if self.down.contains(&n) {
                // Crashed daemons consume nothing until their restart.
                continue;
            }
            let now = self.queue.now();
            let mut outs = Vec::new();
            let before = *self.nodes[n.index()].daemon.recovery_stats();
            self.nodes[n.index()].daemon.handle(now, input, &mut outs);
            let after = *self.nodes[n.index()].daemon.recovery_stats();
            if after != before {
                let stats = self.trace.stats_mut();
                stats.retries += after.retries - before.retries;
                stats.timeouts += after.timeouts - before.timeouts;
                stats.gave_up += after.gave_up - before.gave_up;
                stats.resumed += after.resumed - before.resumed;
            }
            for out in outs {
                match out {
                    DaemonOutput::Plugin(cmd) => self.exec_command(n, cmd),
                    DaemonOutput::App(ev) => self.deliver_app_event(n, ev, &mut work),
                    DaemonOutput::WakeAt(t) => self.schedule_wake(n, t),
                }
            }
        }
    }

    fn deliver_app_event(
        &mut self,
        node: NodeId,
        event: AppEvent,
        work: &mut VecDeque<(NodeId, DaemonInput)>,
    ) {
        if matches!(event, AppEvent::Handover { .. }) {
            self.trace.stats_mut().handovers += 1;
        }
        let now = self.queue.now();
        let mut timers = Vec::new();
        {
            let rt = &mut self.nodes[node.index()];
            let mut ctx = AppCtx::new(
                now,
                &self.infos[node.index()].name,
                &mut rt.lib,
                &mut timers,
                Some(&mut self.trace),
            );
            rt.app.on_event(event, &mut ctx);
        }
        for (at, token) in timers {
            self.schedule_ev(at, Ev::AppTimer(node, token));
        }
        for req in self.nodes[node.index()].lib.drain() {
            work.push_back((node, DaemonInput::App(req)));
        }
    }

    fn schedule_wake(&mut self, node: NodeId, at: SimTime) {
        let at = at.max(self.queue.now());
        if self.nodes[node.index()].wakes.insert(at) {
            self.schedule_ev(at, Ev::DaemonWake(node));
        }
    }

    // ------------------------------------------------------------------
    // Plugin command execution (the simulated BT/WLAN/GPRS plugins)
    // ------------------------------------------------------------------

    fn exec_command(&mut self, node: NodeId, cmd: PluginCommand) {
        let now = self.queue.now();
        match cmd {
            PluginCommand::StartInquiry { technology } => {
                self.trace.stats_mut().inquiries += 1;
                // One batched snapshot from the spatial index; every
                // responder is then scheduled off this single range query.
                let neighbors = self.world.neighbors(node, technology, now);
                // Every event below targets the seeker, so its home lane is
                // computed once; all draws come from the seeker's own lane.
                let lane = self.home_lane(node);
                let profile = self.env.profile(technology);
                for nb in neighbors {
                    let rng = &mut self.nodes[node.index()].rng;
                    if profile.discovery_misses(rng) {
                        continue;
                    }
                    let offset = profile.response_offset(rng);
                    self.queue.schedule(
                        lane,
                        now + offset,
                        Ev::InquiryFound {
                            seeker: node,
                            tech: technology,
                            found: nb,
                        },
                    );
                }
                self.queue.schedule(
                    lane,
                    now + profile.inquiry_duration,
                    Ev::InquiryDone {
                        node,
                        tech: technology,
                    },
                );
            }
            PluginCommand::QueryServices { device, technology } => {
                self.trace.stats_mut().service_queries += 1;
                let target = self.node_of(device);
                if self.world.reachable(node, target, technology, now) {
                    let delay = self
                        .env
                        .profile(technology)
                        .transfer_time(SDP_QUERY_BYTES, &mut self.nodes[node.index()].rng);
                    self.schedule_ev(
                        now + delay,
                        Ev::ServiceQueryArrive {
                            to: target,
                            from: node,
                            tech: technology,
                        },
                    );
                } else {
                    // Unanswerable: deliver an empty reply after a timeout so
                    // pending application requests resolve.
                    self.schedule_ev(
                        now + SDP_TIMEOUT,
                        Ev::ServiceReplyArrive {
                            to: node,
                            from: target,
                            services: Vec::new(),
                            tech: None,
                        },
                    );
                }
            }
            PluginCommand::ServiceQueryReply { device, services } => {
                let target = self.node_of(device);
                // Route the reply back over the cheapest shared technology.
                let tech = Technology::ALL
                    .into_iter()
                    .find(|&t| self.world.reachable(node, target, t, now));
                if let Some(tech) = tech {
                    let bytes = SDP_QUERY_BYTES + SDP_RECORD_BYTES * services.len();
                    let delay = self
                        .env
                        .profile(tech)
                        .transfer_time(bytes, &mut self.nodes[node.index()].rng);
                    self.schedule_ev(
                        now + delay,
                        Ev::ServiceReplyArrive {
                            to: target,
                            from: node,
                            services,
                            tech: Some(tech),
                        },
                    );
                }
            }
            PluginCommand::OpenConnection {
                attempt,
                device,
                service,
                technology,
                resume,
            } => {
                self.trace.stats_mut().connects_attempted += 1;
                let target = self.node_of(device);
                // The setup delay is drawn from the main stream *before* the
                // refusal decision, so an inert fault plan leaves the main
                // stream untouched.
                let delay = self
                    .env
                    .profile(technology)
                    .connect_time(&mut self.nodes[node.index()].rng);
                if self.connect_refused(node, technology) {
                    self.schedule_ev(
                        now + delay,
                        Ev::ConnectResultArrive {
                            to: node,
                            attempt,
                            result: Err(format!("{technology} connection refused")),
                        },
                    );
                } else if self.world.reachable(node, target, technology, now) {
                    self.schedule_ev(
                        now + delay,
                        Ev::ConnectSetupDone {
                            initiator: node,
                            attempt,
                            target,
                            service,
                            tech: technology,
                            resume,
                        },
                    );
                } else {
                    // A failed paging attempt costs about the setup time.
                    self.schedule_ev(
                        now + delay,
                        Ev::ConnectResultArrive {
                            to: node,
                            attempt,
                            result: Err(format!("{technology} peer out of range")),
                        },
                    );
                }
            }
            PluginCommand::AcceptConnection { link } => {
                if let Some(l) = self.links.get_mut(&link) {
                    if let Some((initiator, attempt)) = l.pending.take() {
                        let tech = l.tech;
                        let delay = self
                            .env
                            .profile(tech)
                            .transfer_time(CTRL_BYTES, &mut self.nodes[node.index()].rng);
                        self.schedule_ev(
                            now + delay,
                            Ev::ConnectResultArrive {
                                to: initiator,
                                attempt,
                                result: Ok(link),
                            },
                        );
                    }
                }
            }
            PluginCommand::RejectConnection { link, reason } => {
                if let Some(l) = self.links.remove(&link) {
                    if let Some((initiator, attempt)) = l.pending {
                        let delay = self
                            .env
                            .profile(l.tech)
                            .transfer_time(CTRL_BYTES, &mut self.nodes[node.index()].rng);
                        self.schedule_ev(
                            now + delay,
                            Ev::ConnectResultArrive {
                                to: initiator,
                                attempt,
                                result: Err(reason),
                            },
                        );
                    }
                }
            }
            PluginCommand::SendFrame { link, payload } => {
                let Some(l) = self.links.get_mut(&link) else {
                    return;
                };
                let (a, b, tech) = (l.a, l.b, l.tech);
                let peer = l.other(node);
                let delay = self
                    .env
                    .profile(tech)
                    .transfer_time(payload.len(), &mut self.nodes[node.index()].rng);
                let at = l.fifo_arrival(peer, now + delay);
                let stats = self.trace.stats_mut();
                stats.frames_sent += 1;
                stats.bytes_sent += payload.len() as u64;
                if self.world.reachable(a, b, tech, now) {
                    self.schedule_ev(
                        at,
                        Ev::FrameArrive {
                            to: peer,
                            link,
                            payload,
                        },
                    );
                    // Edge-of-range warning: past 90 % of the radio range
                    // the plugin reports a weakening link (once), letting
                    // the daemon hand over make-before-break.
                    let range = self.env.profile(tech).range_m;
                    if range.is_finite() {
                        let distance = self.world.distance(a, b, now);
                        let l = self.links.get_mut(&link).expect("checked above");
                        if distance > 0.9 * range {
                            if !l.degraded_notified {
                                l.degraded_notified = true;
                                self.feed_daemon(
                                    node,
                                    DaemonInput::Plugin(PluginEvent::LinkDegraded { link }),
                                );
                            }
                        } else {
                            l.degraded_notified = false;
                        }
                    }
                } else {
                    self.trace.stats_mut().frames_dropped += 1;
                    self.tear_down_link(link);
                }
            }
            PluginCommand::CloseLink { link } => {
                if let Some(mut l) = self.links.remove(&link) {
                    let peer = l.other(node);
                    let delay = self
                        .env
                        .profile(l.tech)
                        .transfer_time(CTRL_BYTES, &mut self.nodes[node.index()].rng);
                    // The orderly close must not overtake in-flight frames.
                    let at = l.fifo_arrival(peer, now + delay);
                    self.schedule_ev(at, Ev::PeerClosedArrive { to: peer, link });
                }
            }
        }
    }

    /// Reports a lost radio link to both endpoints after the transport's
    /// detection delay and forgets it.
    fn tear_down_link(&mut self, link: LinkId) {
        if let Some(l) = self.links.remove(&link) {
            let at = self.queue.now() + LINK_DOWN_DETECT;
            self.schedule_ev(at, Ev::LinkDownArrive { to: l.a, link });
            self.schedule_ev(at, Ev::LinkDownArrive { to: l.b, link });
        }
    }

    fn device_info(&self, node: NodeId) -> DeviceInfo {
        self.infos[node.index()].clone()
    }

    fn device_id_of(&self, node: NodeId) -> DeviceId {
        self.device_id(node)
    }
}

// ----------------------------------------------------------------------
// The parallel lane-epoch engine
// ----------------------------------------------------------------------
//
// One timestamp batch from `RegionLanes::drain_batch` is one *epoch*: every
// event in it was already pending when the batch was staged, so nothing a
// handler does during the epoch can inject work into it (same-timestamp
// reschedules land in a *later* batch by global sequence number — the
// queue's documented contract). That boundary is the entire lookahead-safety
// argument: within an epoch, handlers only read frozen shared state (world
// positions pinned by `EpochView`, the `down` set, identity snapshots, the
// trace's string pool) and mutate *their own node's* state, so nodes can
// execute concurrently.
//
// The engine partitions the batch by home node, hands each scoped worker a
// disjoint `&mut` range of per-node runtimes plus that range's events (in
// batch order, so per-node RNG/daemon streams evolve exactly as serial),
// and buffers every externally-visible effect — event schedules, trace
// records, stat bumps — in a per-worker outbox. The commit phase replays
// outboxes serially in canonical `(time, seq)` batch order, reproducing the
// exact global sequence numbers, pool intern order, ring eviction and
// counters a serial run produces. The trace digest is therefore
// bit-identical for any worker count, lane count and fault plan; `ci.sh`
// and the differential tests below enforce that.
//
// Only batches whose every event is node-local *under an empty link table*
// are eligible (discovery, timers, service discovery). Link-touching events
// — connects completing, frames, teardowns, crash windows — mutate shared
// tables and fall back to serial dispatch, which is bit-identical by
// construction.

/// Buffered effects of one epoch worker, replayed serially at commit.
#[derive(Default)]
struct EpochOutbox {
    /// Events to schedule, in execution order. Consumed back-to-front after
    /// a `reverse()` at commit.
    schedules: Vec<(SimTime, Ev)>,
    /// Trace records against the frozen pool, in execution order.
    records: Vec<PendingRecord>,
    /// One entry per executed event: `(batch_idx, schedules-end,
    /// records-end)` — cumulative ends delimiting that event's effects.
    spans: Vec<(u32, u32, u32)>,
    /// Commutative counter deltas. The record-owned counters
    /// (`events_recorded`/`events_dropped`/`messages`/`local_events`) stay
    /// zero here — the record replay accounts them.
    stats: TraceStats,
}

/// One worker's execution context: a disjoint `&mut` range of node
/// runtimes, shared frozen state, and the outbox collecting effects.
struct EpochWorker<'a, A> {
    view: EpochView<'a>,
    env: &'a RadioEnv,
    down: &'a BTreeSet<NodeId>,
    infos: &'a [DeviceInfo],
    actor_ids: &'a [ActorId],
    trace: &'a Trace,
    seed: u64,
    now: SimTime,
    /// First node index of this worker's chunk.
    base: usize,
    nodes: &'a mut [NodeRt<A>],
    out: EpochOutbox,
    /// Reused gather buffer for [`EpochView::neighbors`].
    scratch: Vec<u32>,
}

impl<'a, A: Application> EpochWorker<'a, A> {
    fn rt(&mut self, node: NodeId) -> &mut NodeRt<A> {
        &mut self.nodes[node.index() - self.base]
    }

    /// Executes one eligible event and closes its effect span.
    fn run_ev(&mut self, batch_idx: u32, ev: Ev) {
        match ev {
            Ev::Start(node) => {
                self.app_callback(node, |app, ctx| app.on_start(ctx));
                self.feed_daemon(node, DaemonInput::Tick);
            }
            Ev::DaemonWake(node) => {
                let now = self.now;
                self.rt(node).wakes.remove(now);
                self.feed_daemon(node, DaemonInput::Tick);
            }
            Ev::AppTimer(node, token) => {
                self.app_callback(node, |app, ctx| app.on_timer(token, ctx));
            }
            Ev::InquiryFound {
                seeker,
                tech,
                found,
            } => {
                if self.view.reachable(seeker, found, tech) {
                    self.out.stats.inquiry_responses += 1;
                    let device = self.infos[found.index()].clone();
                    self.feed_daemon(
                        seeker,
                        DaemonInput::Plugin(PluginEvent::InquiryResponse {
                            technology: tech,
                            device,
                        }),
                    );
                }
            }
            Ev::InquiryDone { node, tech } => {
                self.feed_daemon(
                    node,
                    DaemonInput::Plugin(PluginEvent::InquiryComplete { technology: tech }),
                );
            }
            Ev::ServiceQueryArrive { to, from, tech } => {
                if self.frame_lost(to, tech) {
                    self.out.stats.frames_dropped += 1;
                } else {
                    let device = DeviceId::new(from.index() as u64);
                    self.feed_daemon(
                        to,
                        DaemonInput::Plugin(PluginEvent::ServiceQuery { device }),
                    );
                }
            }
            Ev::ServiceReplyArrive {
                to,
                from,
                services,
                tech,
            } => {
                if tech.is_some_and(|tech| self.frame_lost(to, tech)) {
                    self.out.stats.frames_dropped += 1;
                } else {
                    let device = DeviceId::new(from.index() as u64);
                    self.feed_daemon(
                        to,
                        DaemonInput::Plugin(PluginEvent::ServiceReply { device, services }),
                    );
                }
            }
            _ => unreachable!("ineligible event reached the epoch engine"),
        }
        self.out.spans.push((
            batch_idx,
            self.out.schedules.len() as u32,
            self.out.records.len() as u32,
        ));
    }

    /// Runs an application callback with a buffered trace sink, then
    /// processes its timers and queued requests (mirrors the serial
    /// `Start`/`AppTimer` arms).
    fn app_callback(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut AppCtx<'_>)) {
        let mut timers = Vec::new();
        {
            let rt = &mut self.nodes[node.index() - self.base];
            let mut ctx = AppCtx::with_sink(
                self.now,
                &self.infos[node.index()].name,
                &mut rt.lib,
                &mut timers,
                TraceSink::Buffer {
                    trace: self.trace,
                    actor_id: self.actor_ids[node.index()],
                    out: &mut self.out.records,
                },
            );
            f(&mut rt.app, &mut ctx);
        }
        self.after_app_callback(node, timers);
    }

    fn after_app_callback(&mut self, node: NodeId, timers: Vec<(SimTime, u64)>) {
        for (at, token) in timers {
            self.out.schedules.push((at, Ev::AppTimer(node, token)));
        }
        let requests = self.rt(node).lib.drain();
        for req in requests {
            self.feed_daemon(node, DaemonInput::App(req));
        }
    }

    fn feed_daemon(&mut self, node: NodeId, input: DaemonInput) {
        let mut work: VecDeque<(NodeId, DaemonInput)> = VecDeque::new();
        work.push_back((node, input));
        while let Some((n, input)) = work.pop_front() {
            if self.down.contains(&n) {
                continue;
            }
            let mut outs = Vec::new();
            let now = self.now;
            let rt = &mut self.nodes[n.index() - self.base];
            let before = *rt.daemon.recovery_stats();
            rt.daemon.handle(now, input, &mut outs);
            let after = *rt.daemon.recovery_stats();
            if after != before {
                let stats = &mut self.out.stats;
                stats.retries += after.retries - before.retries;
                stats.timeouts += after.timeouts - before.timeouts;
                stats.gave_up += after.gave_up - before.gave_up;
                stats.resumed += after.resumed - before.resumed;
            }
            for out in outs {
                match out {
                    DaemonOutput::Plugin(cmd) => self.exec_command(n, cmd),
                    DaemonOutput::App(ev) => self.deliver_app_event(n, ev, &mut work),
                    DaemonOutput::WakeAt(t) => self.schedule_wake(n, t),
                }
            }
        }
    }

    fn deliver_app_event(
        &mut self,
        node: NodeId,
        event: AppEvent,
        work: &mut VecDeque<(NodeId, DaemonInput)>,
    ) {
        if matches!(event, AppEvent::Handover { .. }) {
            self.out.stats.handovers += 1;
        }
        let mut timers = Vec::new();
        {
            let rt = &mut self.nodes[node.index() - self.base];
            let mut ctx = AppCtx::with_sink(
                self.now,
                &self.infos[node.index()].name,
                &mut rt.lib,
                &mut timers,
                TraceSink::Buffer {
                    trace: self.trace,
                    actor_id: self.actor_ids[node.index()],
                    out: &mut self.out.records,
                },
            );
            rt.app.on_event(event, &mut ctx);
        }
        for (at, token) in timers {
            self.out.schedules.push((at, Ev::AppTimer(node, token)));
        }
        for req in self.rt(node).lib.drain() {
            work.push_back((node, DaemonInput::App(req)));
        }
    }

    fn schedule_wake(&mut self, node: NodeId, at: SimTime) {
        let at = at.max(self.now);
        if self.rt(node).wakes.insert(at) {
            self.out.schedules.push((at, Ev::DaemonWake(node)));
        }
    }

    fn frame_lost(&mut self, to: NodeId, tech: Technology) -> bool {
        let profile = *self.env.faults().profile(tech);
        if profile.is_inert() {
            return false;
        }
        let seed = self.seed;
        let f = self.rt(to).fault(seed, to);
        profile.frame_lost(&mut f.burst[tech_slot(tech)], &mut f.rng)
    }

    fn connect_refused(&mut self, initiator: NodeId, tech: Technology) -> bool {
        let p = self.env.faults().profile(tech).connect_refuse;
        let seed = self.seed;
        p > 0.0 && self.rt(initiator).fault(seed, initiator).rng.chance(p)
    }

    /// Worker-side plugin execution for the eligible command subset. The
    /// link-table commands (`Accept`/`Reject`/`SendFrame`/`CloseLink`) are
    /// provable no-ops here: the eligibility gate guarantees the link table
    /// is empty and no eligible event can create a link, so the serial arms
    /// would fall through their `links.get(..)` misses without any effect.
    fn exec_command(&mut self, node: NodeId, cmd: PluginCommand) {
        let now = self.now;
        match cmd {
            PluginCommand::StartInquiry { technology } => {
                self.out.stats.inquiries += 1;
                let mut scratch = std::mem::take(&mut self.scratch);
                let neighbors = self.view.neighbors(node, technology, &mut scratch);
                self.scratch = scratch;
                let profile = self.env.profile(technology);
                for nb in neighbors {
                    let rng = &mut self.rt(node).rng;
                    if profile.discovery_misses(rng) {
                        continue;
                    }
                    let offset = profile.response_offset(rng);
                    self.out.schedules.push((
                        now + offset,
                        Ev::InquiryFound {
                            seeker: node,
                            tech: technology,
                            found: nb,
                        },
                    ));
                }
                self.out.schedules.push((
                    now + profile.inquiry_duration,
                    Ev::InquiryDone {
                        node,
                        tech: technology,
                    },
                ));
            }
            PluginCommand::QueryServices { device, technology } => {
                self.out.stats.service_queries += 1;
                let target = NodeId::from_index(device.raw() as usize);
                if self.view.reachable(node, target, technology) {
                    let delay = self
                        .env
                        .profile(technology)
                        .transfer_time(SDP_QUERY_BYTES, &mut self.rt(node).rng);
                    self.out.schedules.push((
                        now + delay,
                        Ev::ServiceQueryArrive {
                            to: target,
                            from: node,
                            tech: technology,
                        },
                    ));
                } else {
                    self.out.schedules.push((
                        now + SDP_TIMEOUT,
                        Ev::ServiceReplyArrive {
                            to: node,
                            from: target,
                            services: Vec::new(),
                            tech: None,
                        },
                    ));
                }
            }
            PluginCommand::ServiceQueryReply { device, services } => {
                let target = NodeId::from_index(device.raw() as usize);
                let tech = Technology::ALL
                    .into_iter()
                    .find(|&t| self.view.reachable(node, target, t));
                if let Some(tech) = tech {
                    let bytes = SDP_QUERY_BYTES + SDP_RECORD_BYTES * services.len();
                    let delay = self
                        .env
                        .profile(tech)
                        .transfer_time(bytes, &mut self.rt(node).rng);
                    self.out.schedules.push((
                        now + delay,
                        Ev::ServiceReplyArrive {
                            to: target,
                            from: node,
                            services,
                            tech: Some(tech),
                        },
                    ));
                }
            }
            PluginCommand::OpenConnection {
                attempt,
                device,
                service,
                technology,
                resume,
            } => {
                self.out.stats.connects_attempted += 1;
                let target = NodeId::from_index(device.raw() as usize);
                // Setup delay drawn from the main stream *before* the
                // refusal decision, exactly as the serial arm does.
                let delay = self
                    .env
                    .profile(technology)
                    .connect_time(&mut self.rt(node).rng);
                if self.connect_refused(node, technology) {
                    self.out.schedules.push((
                        now + delay,
                        Ev::ConnectResultArrive {
                            to: node,
                            attempt,
                            result: Err(format!("{technology} connection refused")),
                        },
                    ));
                } else if self.view.reachable(node, target, technology) {
                    self.out.schedules.push((
                        now + delay,
                        Ev::ConnectSetupDone {
                            initiator: node,
                            attempt,
                            target,
                            service,
                            tech: technology,
                            resume,
                        },
                    ));
                } else {
                    self.out.schedules.push((
                        now + delay,
                        Ev::ConnectResultArrive {
                            to: node,
                            attempt,
                            result: Err(format!("{technology} peer out of range")),
                        },
                    ));
                }
            }
            PluginCommand::AcceptConnection { .. }
            | PluginCommand::RejectConnection { .. }
            | PluginCommand::SendFrame { .. }
            | PluginCommand::CloseLink { .. } => {
                // Empty link table (eligibility invariant): the serial arms
                // are no-ops for unknown links.
            }
        }
    }
}

impl<A: Application + Send> Cluster<A> {
    /// Processes events until the queue is exhausted or the next event is
    /// after `deadline`; the clock then stands at `deadline`.
    ///
    /// Events are drained one timestamp batch at a time. Batches whose
    /// events are all node-local (see the engine comment above) execute
    /// through the parallel lane-epoch engine — with one worker they run
    /// inline on the same code path — and everything else dispatches
    /// serially. Both paths produce bit-identical traces, so the digest is
    /// independent of [`Cluster::set_threads`].
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut batch = std::mem::take(&mut self.batch_buf);
        loop {
            let t0 = self.collect_timing.then(Instant::now);
            let drained = self.queue.drain_batch(deadline, &mut batch);
            if let Some(t0) = t0 {
                self.timing.drain += t0.elapsed();
            }
            let Some(t) = drained else {
                break;
            };
            if batch.len() >= 2 && self.batch_eligible(&batch) {
                self.run_epoch(t, &mut batch);
            } else {
                self.timing.serial_batches += 1;
                self.timing.serial_events += batch.len() as u64;
                let t0 = self.collect_timing.then(Instant::now);
                for ev in batch.drain(..) {
                    self.dispatch(ev);
                }
                if let Some(t0) = t0 {
                    self.timing.execute += t0.elapsed();
                }
            }
        }
        self.batch_buf = batch;
        self.queue.advance_to(deadline);
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Whether every event in the batch is node-local under an empty link
    /// table — the precondition for concurrent execution.
    fn batch_eligible(&self, batch: &[Ev]) -> bool {
        self.links.is_empty()
            && batch.iter().all(|ev| {
                matches!(
                    ev,
                    Ev::Start(_)
                        | Ev::DaemonWake(_)
                        | Ev::AppTimer(..)
                        | Ev::InquiryFound { .. }
                        | Ev::InquiryDone { .. }
                        | Ev::ServiceQueryArrive { .. }
                        | Ev::ServiceReplyArrive { .. }
                )
            })
    }

    /// Executes one eligible timestamp batch through the lane-epoch engine:
    /// partition by home node → concurrent lane-local execution → serial
    /// outbox commit in canonical batch order.
    fn run_epoch(&mut self, t: SimTime, batch: &mut Vec<Ev>) {
        self.timing.par_batches += 1;
        self.timing.par_events += batch.len() as u64;

        // ---- gather: partition the batch by home node ----
        let tg = self.collect_timing.then(Instant::now);
        self.world.prepare_epoch(t);
        // Tag each event with (home node, batch position); sorting by that
        // key groups events per node while preserving per-node batch order,
        // which is what keeps each node's RNG/daemon stream serial-exact.
        let mut tagged: Vec<(u32, u32, Ev)> = batch
            .drain(..)
            .enumerate()
            .map(|(i, ev)| (ev_target(&ev).index() as u32, i as u32, ev))
            .collect();
        tagged.sort_unstable_by_key(|e| (e.0, e.1));
        let threads = netsim::par::effective_threads(self.threads);
        let workers = threads
            .min(tagged.len().div_ceil(EPOCH_MIN_EVENTS_PER_WORKER))
            .max(1);
        // Node-aligned cuts balancing the event count per worker. `bounds`
        // partitions the node table, `ev_cuts` the tagged event list.
        let mut bounds: Vec<usize> = vec![0];
        let mut ev_cuts: Vec<usize> = vec![0];
        let per = tagged.len().div_ceil(workers);
        let mut next_cut = per;
        for j in 1..tagged.len() {
            if j >= next_cut && tagged[j].0 != tagged[j - 1].0 && bounds.len() < workers {
                bounds.push(tagged[j].0 as usize);
                ev_cuts.push(j);
                next_cut = j + per;
            }
        }
        bounds.push(self.nodes.len());
        ev_cuts.push(tagged.len());
        // Split the tagged events into per-worker owned parts (the events
        // must move — their payloads are consumed by the handlers).
        let mut parts: Vec<Vec<(u32, u32, Ev)>> = Vec::with_capacity(bounds.len() - 1);
        for w in (1..ev_cuts.len() - 1).rev() {
            parts.push(tagged.split_off(ev_cuts[w]));
        }
        parts.push(tagged);
        parts.reverse();
        if let Some(tg) = tg {
            self.timing.gather += tg.elapsed();
        }

        // ---- execute: one scoped worker per node range ----
        let te = self.collect_timing.then(Instant::now);
        let view = self.world.epoch_view(t);
        let env = &self.env;
        let down = &self.down;
        let infos = &self.infos;
        let actor_ids = &self.actor_ids;
        let trace = &self.trace;
        let seed = self.seed;
        let mut boxes = netsim::par::map_chunks_mut_with(
            &mut self.nodes,
            &bounds,
            parts,
            |_ci, base, chunk, mut part| {
                // Execute in original batch order, not the node-grouped
                // order the partitioning sort left behind: batch indices
                // are unique and per-node ascending, so this preserves
                // every node's serial-exact stream while making the
                // worker's outbox spans ascend in batch index — the
                // invariant the commit merge below relies on.
                part.sort_unstable_by_key(|e| e.1);
                let mut w = EpochWorker {
                    view,
                    env,
                    down,
                    infos,
                    actor_ids,
                    trace,
                    seed,
                    now: t,
                    base,
                    nodes: chunk,
                    out: EpochOutbox::default(),
                    scratch: Vec::new(),
                };
                for (_, batch_idx, ev) in part {
                    w.run_ev(batch_idx, ev);
                }
                w.out
            },
        );
        if let Some(te) = te {
            self.timing.execute += te.elapsed();
        }

        // ---- commit: replay outboxes in canonical batch order ----
        // Each worker's spans carry ascending batch indices, so a k-way
        // merge over the workers visits events in exactly the order the
        // serial engine would have dispatched them. Replaying schedules
        // reproduces the global sequence numbers; replaying records
        // reproduces pool interning and ring eviction; the stat deltas are
        // commutative sums folded at the end.
        let tc = self.collect_timing.then(Instant::now);
        for b in &mut boxes {
            b.schedules.reverse();
            b.records.reverse();
        }
        let mut span_cur = vec![0usize; boxes.len()];
        let mut sched_done = vec![0u32; boxes.len()];
        let mut rec_done = vec![0u32; boxes.len()];
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (w, &c) in span_cur.iter().enumerate() {
                if c < boxes[w].spans.len() {
                    let bi = boxes[w].spans[c].0;
                    if best.is_none_or(|(bb, _)| bi < bb) {
                        best = Some((bi, w));
                    }
                }
            }
            let Some((_, w)) = best else {
                break;
            };
            let (_, s_end, r_end) = boxes[w].spans[span_cur[w]];
            span_cur[w] += 1;
            while sched_done[w] < s_end {
                let (at, ev) = boxes[w].schedules.pop().expect("span bookkeeping");
                self.schedule_ev(at, ev);
                sched_done[w] += 1;
            }
            while rec_done[w] < r_end {
                boxes[w]
                    .records
                    .pop()
                    .expect("span bookkeeping")
                    .replay(&mut self.trace);
                rec_done[w] += 1;
            }
        }
        for b in &boxes {
            self.trace.stats_mut().add(&b.stats);
        }
        if let Some(tc) = tc {
            self.timing.commit += tc.elapsed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geometry::Point2;
    use netsim::mobility::ScriptedPath;

    /// Records everything that happens to it; scripts nothing.
    #[derive(Default)]
    struct Recorder {
        appeared: Vec<String>,
        disappeared: Vec<String>,
        service_lists: Vec<(DeviceId, Vec<String>)>,
        connected: Vec<crate::types::ConnId>,
        incoming: Vec<crate::types::ConnId>,
        data: Vec<Bytes>,
        closed: Vec<crate::types::CloseReason>,
        handover: Vec<(Technology, Technology)>,
        register_community: bool,
    }

    impl Application for Recorder {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            if self.register_community {
                ctx.peerhood()
                    .register_service(ServiceInfo::new("PeerHoodCommunity"));
            }
        }

        fn on_event(&mut self, event: AppEvent, _ctx: &mut AppCtx<'_>) {
            match event {
                AppEvent::DeviceAppeared(i) => self.appeared.push(i.name.to_string()),
                AppEvent::DeviceDisappeared(i) => self.disappeared.push(i.name.to_string()),
                AppEvent::ServiceList {
                    device, services, ..
                } => self.service_lists.push((
                    device,
                    services.iter().map(|s| s.name().to_owned()).collect(),
                )),
                AppEvent::Connected { conn, .. } => self.connected.push(conn),
                AppEvent::Incoming { conn, .. } => self.incoming.push(conn),
                AppEvent::Data { payload, .. } => self.data.push(payload),
                AppEvent::Closed { reason, .. } => self.closed.push(reason),
                AppEvent::Handover { from, to, .. } => self.handover.push((from, to)),
                _ => {}
            }
        }
    }

    fn recorder(register: bool) -> Recorder {
        Recorder {
            register_community: register,
            ..Recorder::default()
        }
    }

    #[test]
    fn discovery_within_one_bluetooth_inquiry() {
        let mut c = Cluster::new(1);
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob").at(Point2::new(4.0, 0.0)),
            recorder(false),
        );
        c.start();
        c.run_until(SimTime::from_secs(12));
        assert!(c.app(a).appeared.contains(&"bob".to_owned()));
        assert!(c.app(b).appeared.contains(&"alice".to_owned()));
        assert!(c.daemon(a).neighbors().contains(c.device_id(b)));
    }

    #[test]
    fn out_of_range_devices_are_not_discovered_over_bluetooth() {
        let mut c = Cluster::new(1);
        let a = c.add_node(
            NodeBuilder::new("alice")
                .at(Point2::new(0.0, 0.0))
                .with_technologies([Technology::Bluetooth]),
            recorder(false),
        );
        let _b = c.add_node(
            NodeBuilder::new("bob")
                .at(Point2::new(500.0, 0.0))
                .with_technologies([Technology::Bluetooth]),
            recorder(false),
        );
        c.start();
        c.run_until(SimTime::from_secs(60));
        assert!(c.app(a).appeared.is_empty());
    }

    #[test]
    fn auto_service_discovery_populates_cache() {
        let mut c = Cluster::new(2);
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob").at(Point2::new(4.0, 0.0)),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(15));
        let entry = c
            .daemon(a)
            .neighbors()
            .get(c.device_id(b))
            .expect("bob known");
        let (_, services) = entry.services.as_ref().expect("services cached");
        assert_eq!(services[0].name(), "PeerHoodCommunity");
    }

    #[test]
    fn connect_send_receive_close_round_trip() {
        let mut c = Cluster::new(3);
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob").at(Point2::new(4.0, 0.0)),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(15));

        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        c.run_until(SimTime::from_secs(20));
        assert_eq!(c.app(a).connected.len(), 1, "connect should succeed");
        assert_eq!(c.app(b).incoming.len(), 1);

        let conn = c.app(a).connected[0];
        c.with_app(a, |_, ctx| {
            ctx.peerhood().send(conn, Bytes::from_static(b"ping"))
        });
        c.run_until(SimTime::from_secs(21));
        assert_eq!(c.app(b).data, vec![Bytes::from_static(b"ping")]);

        c.with_app(a, |_, ctx| ctx.peerhood().close(conn));
        c.run_until(SimTime::from_secs(22));
        assert!(c
            .app(b)
            .closed
            .contains(&crate::types::CloseReason::PeerClose));
    }

    #[test]
    fn connect_to_unregistered_service_fails() {
        let mut c = Cluster::new(4);
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob").at(Point2::new(4.0, 0.0)),
            recorder(false),
        );
        c.start();
        c.run_until(SimTime::from_secs(15));
        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "Nothing"));
        c.run_until(SimTime::from_secs(25));
        assert!(c.app(a).connected.is_empty());
    }

    #[test]
    fn departure_is_noticed_after_ttl() {
        let mut c = Cluster::new(5);
        let ttl = Duration::from_secs(30);
        let a = c.add_node_with(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            |cfg| cfg.with_neighbor_ttl(ttl),
            recorder(false),
        );
        // Bob walks away after 40 s (Bluetooth-only so he truly vanishes).
        let _b = c.add_node(
            NodeBuilder::new("bob")
                .moving(ScriptedPath::new(vec![
                    (SimTime::from_secs(0), Point2::new(4.0, 0.0)),
                    (SimTime::from_secs(40), Point2::new(4.0, 0.0)),
                    (SimTime::from_secs(60), Point2::new(800.0, 0.0)),
                ]))
                .with_technologies([Technology::Bluetooth]),
            recorder(false),
        );
        c.start();
        c.run_until(SimTime::from_secs(40));
        assert!(c.app(a).appeared.contains(&"bob".to_owned()));
        c.run_until(SimTime::from_secs(120));
        assert!(
            c.app(a).disappeared.contains(&"bob".to_owned()),
            "disappearance must be reported after TTL"
        );
    }

    #[test]
    fn seamless_handover_from_bluetooth_to_wlan() {
        let mut c = Cluster::new(6);
        let a = c.add_node(
            NodeBuilder::new("alice")
                .at(Point2::new(0.0, 0.0))
                .with_technologies([Technology::Bluetooth, Technology::Wlan]),
            recorder(false),
        );
        // Bob starts 4 m away (BT range) and at t=30 s walks to 40 m
        // (outside BT, inside WLAN).
        let b = c.add_node(
            NodeBuilder::new("bob")
                .moving(ScriptedPath::new(vec![
                    (SimTime::from_secs(0), Point2::new(4.0, 0.0)),
                    (SimTime::from_secs(30), Point2::new(4.0, 0.0)),
                    (SimTime::from_secs(45), Point2::new(40.0, 0.0)),
                ]))
                .with_technologies([Technology::Bluetooth, Technology::Wlan]),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(20));
        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        c.run_until(SimTime::from_secs(25));
        assert_eq!(c.app(a).connected.len(), 1, "initial BT connect");
        let conn = c.app(a).connected[0];

        // Keep the connection chatty so the link loss is noticed: send a
        // frame every 2 s from t=26 on.
        for t in (26..70).step_by(2) {
            c.run_until(SimTime::from_secs(t));
            c.with_app(a, |_, ctx| {
                ctx.peerhood().send(conn, Bytes::from_static(b"chunk"))
            });
        }
        c.run_until(SimTime::from_secs(80));
        assert!(
            c.app(a)
                .handover
                .contains(&(Technology::Bluetooth, Technology::Wlan)),
            "initiator should hand over: {:?}",
            c.app(a).handover
        );
        assert!(
            c.app(b)
                .handover
                .contains(&(Technology::Bluetooth, Technology::Wlan)),
            "responder should rebind: {:?}",
            c.app(b).handover
        );
        assert!(c.app(a).closed.is_empty(), "connection must survive");
        // Frames kept flowing after the handover.
        assert!(c.app(b).data.len() >= 20, "got {}", c.app(b).data.len());
    }

    #[test]
    fn proactive_handover_fires_before_the_link_breaks() {
        // Bob walks slowly from 4 m to 14 m: the link degrades past 9 m
        // (90 % of Bluetooth range) well before it breaks at 10 m, so the
        // connection migrates to WLAN with zero frame loss and no
        // LinkDown-induced closure.
        let mut c = Cluster::new(33);
        let a = c.add_node(
            NodeBuilder::new("alice")
                .at(Point2::new(0.0, 0.0))
                .with_technologies([Technology::Bluetooth, Technology::Wlan]),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob")
                .moving(ScriptedPath::new(vec![
                    (SimTime::from_secs(0), Point2::new(4.0, 0.0)),
                    (SimTime::from_secs(30), Point2::new(4.0, 0.0)),
                    (SimTime::from_secs(130), Point2::new(14.0, 0.0)),
                ]))
                .with_technologies([Technology::Bluetooth, Technology::Wlan]),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(20));
        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        c.run_until(SimTime::from_secs(25));
        assert_eq!(c.app(a).connected.len(), 1);
        let conn = c.app(a).connected[0];

        const CHUNKS: usize = 50;
        for i in 0..CHUNKS {
            c.run_until(SimTime::from_secs(26 + 2 * i as u64));
            c.with_app(a, |_, ctx| {
                ctx.peerhood().send(conn, Bytes::from_static(b"chunk"))
            });
        }
        c.run_until(SimTime::from_secs(140));
        assert!(
            c.app(a)
                .handover
                .contains(&(Technology::Bluetooth, Technology::Wlan)),
            "handover should have happened: {:?}",
            c.app(a).handover
        );
        assert!(c.app(a).closed.is_empty(), "connection never closed");
        assert_eq!(
            c.app(b).data.len(),
            CHUNKS,
            "make-before-break loses no frames"
        );
    }

    #[test]
    fn connections_prefer_bluetooth_over_wlan_over_gprs() {
        // Both peers carry all three radios and sit 3 m apart: the daemon
        // must pick Bluetooth (the cheapest) for the connection.
        let mut c = Cluster::new(21);
        let a = c.add_node(
            NodeBuilder::new("a").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("b").at(Point2::new(3.0, 0.0)),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(15));
        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        c.run_until(SimTime::from_secs(20));
        assert_eq!(c.app(a).connected.len(), 1);
        // The neighbor entry confirms Bluetooth visibility was preferred.
        let entry = c.daemon(a).neighbors().get(bob).expect("known");
        assert_eq!(entry.preferred_technology(), Some(Technology::Bluetooth));
    }

    #[test]
    fn distant_peers_connect_over_gprs_only() {
        // 5 km apart: Bluetooth and WLAN are out; GPRS still carries the
        // connection through the operator proxy.
        let mut c = Cluster::new(22);
        let a = c.add_node(
            NodeBuilder::new("a").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("b").at(Point2::new(5_000.0, 0.0)),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(40));
        let bob = c.device_id(b);
        let entry = c.daemon(a).neighbors().get(bob).expect("GPRS-visible");
        assert_eq!(entry.visible_technologies(), vec![Technology::Gprs]);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        c.run_until(SimTime::from_secs(50));
        assert_eq!(c.app(a).connected.len(), 1, "GPRS connection established");
    }

    #[test]
    fn runs_are_deterministic() {
        fn run() -> (Vec<String>, usize) {
            let mut c = Cluster::new(77);
            let a = c.add_node(
                NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
                recorder(false),
            );
            let _b = c.add_node(
                NodeBuilder::new("bob").at(Point2::new(4.0, 0.0)),
                recorder(true),
            );
            let _d = c.add_node(
                NodeBuilder::new("carol").at(Point2::new(0.0, 5.0)),
                recorder(true),
            );
            c.start();
            c.run_until(SimTime::from_secs(30));
            (c.app(a).appeared.clone(), c.trace().len())
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn late_node_boots_when_added_after_start() {
        let mut c = Cluster::new(8);
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        c.start();
        c.run_until(SimTime::from_secs(30));
        assert!(c.app(a).appeared.is_empty());
        let _late = c.add_node(
            NodeBuilder::new("late").at(Point2::new(3.0, 0.0)),
            recorder(false),
        );
        c.run_until(SimTime::from_secs(60));
        assert!(c.app(a).appeared.contains(&"late".to_owned()));
    }

    #[test]
    fn stats_count_discovery_connects_and_frames() {
        let mut c = Cluster::new(3);
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob").at(Point2::new(4.0, 0.0)),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(15));
        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        c.run_until(SimTime::from_secs(20));
        let conn = c.app(a).connected[0];
        c.with_app(a, |_, ctx| {
            ctx.peerhood().send(conn, Bytes::from_static(b"ping"))
        });
        c.run_until(SimTime::from_secs(21));
        let stats = c.stats();
        assert!(stats.inquiries >= 2, "both nodes inquire: {stats}");
        assert!(stats.inquiry_responses >= 2, "{stats}");
        assert!(stats.connects_attempted >= 1, "{stats}");
        assert!(stats.connects_ok >= 1, "{stats}");
        assert!(stats.frames_sent >= 1, "{stats}");
        assert_eq!(stats.frames_dropped, 0, "{stats}");
        assert!(stats.bytes_delivered >= 4, "{stats}");
    }

    #[test]
    fn bounded_trace_keeps_counters_exact() {
        let mut c = Cluster::new(3);
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        c.set_trace_capacity(1);
        c.with_app(a, |_, ctx| {
            ctx.trace_local("ONE");
            ctx.trace_local("TWO");
            ctx.trace_local("THREE");
        });
        assert_eq!(c.trace().len(), 1);
        assert_eq!(c.trace().labels(), vec!["THREE"]);
        assert_eq!(c.stats().events_recorded, 3);
        assert_eq!(c.stats().events_dropped, 2);
        // clear_trace keeps the bound but resets contents.
        c.clear_trace();
        assert!(c.trace().is_empty());
        assert_eq!(c.trace().capacity(), 1);
    }

    #[test]
    fn run_until_condition_reports_first_hit() {
        let mut c = Cluster::new(9);
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let _b = c.add_node(
            NodeBuilder::new("bob").at(Point2::new(4.0, 0.0)),
            recorder(false),
        );
        c.start();
        let hit = c.run_until_condition(SimTime::from_secs(60), |c| !c.app(a).appeared.is_empty());
        let t = hit.expect("bob should appear within a minute");
        assert!(t <= SimTime::from_millis(10_240 + 500), "found at {t}");
    }

    // ------------------------------------------------------------------
    // Fault injection and recovery
    // ------------------------------------------------------------------

    use crate::config::RecoveryPolicy;
    use netsim::{FaultPlan, FaultProfile};

    #[test]
    fn inert_fault_plan_reproduces_fault_free_digest() {
        fn run(env: Option<RadioEnv>) -> (u64, u64) {
            let mut c = match env {
                Some(env) => Cluster::with_env(77, env),
                None => Cluster::new(77),
            };
            for i in 0..6u32 {
                c.add_node(
                    NodeBuilder::new(format!("n{i}")).at(Point2::new(4.0 * f64::from(i), 0.0)),
                    recorder(i % 2 == 0),
                );
            }
            c.start();
            c.run_until(SimTime::from_secs(60));
            (c.trace().digest(), c.stats().digest())
        }
        let plain = run(None);
        // An explicitly attached all-zero plan draws no randomness anywhere.
        let inert = run(Some(RadioEnv::default().with_faults(FaultPlan::none())));
        assert_eq!(plain, inert);
    }

    #[test]
    fn certain_connect_refusal_is_retried_then_given_up() {
        let plan = FaultPlan::none().with_profile(
            Technology::Bluetooth,
            FaultProfile {
                connect_refuse: 1.0,
                ..FaultProfile::NONE
            },
        );
        let mut c = Cluster::with_env(8, RadioEnv::default().with_faults(plan));
        let a = c.add_node_with(
            NodeBuilder::new("alice")
                .at(Point2::new(0.0, 0.0))
                .with_technologies([Technology::Bluetooth]),
            |cfg| cfg.with_recovery(RecoveryPolicy::default()),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob")
                .at(Point2::new(4.0, 0.0))
                .with_technologies([Technology::Bluetooth]),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(15));
        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        // Default policy: 3 retries at 0.5/1/2 s backoff, then give up.
        c.run_until(SimTime::from_secs(60));
        assert!(c.app(a).connected.is_empty(), "every attempt is refused");
        let stats = c.stats();
        assert!(stats.retries >= 1, "refusals must be retried: {stats}");
        assert!(stats.gave_up >= 1, "exhaustion must be recorded: {stats}");
    }

    #[test]
    fn lost_service_queries_time_out_and_answer_empty() {
        let plan = FaultPlan::none().with_profile(
            Technology::Bluetooth,
            FaultProfile {
                frame_loss: 1.0,
                ..FaultProfile::NONE
            },
        );
        let mut c = Cluster::with_env(11, RadioEnv::default().with_faults(plan));
        let a = c.add_node_with(
            NodeBuilder::new("alice")
                .at(Point2::new(0.0, 0.0))
                .with_technologies([Technology::Bluetooth]),
            |cfg| cfg.with_recovery(RecoveryPolicy::default()),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob")
                .at(Point2::new(4.0, 0.0))
                .with_technologies([Technology::Bluetooth]),
            recorder(true),
        );
        c.start();
        // Inquiry is radio-level, so bob is still discovered; every SDP
        // frame is lost, so his services can never be learned.
        c.run_until(SimTime::from_secs(15));
        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().request_service_list(bob));
        c.run_until(SimTime::from_secs(60));
        let lists = &c.app(a).service_lists;
        assert!(
            lists.iter().any(|(d, s)| *d == bob && s.is_empty()),
            "the query must resolve (empty) instead of hanging: {lists:?}"
        );
        let stats = c.stats();
        assert!(stats.timeouts >= 1, "query deadlines must fire: {stats}");
        assert!(stats.gave_up >= 1, "query retries must exhaust: {stats}");
    }

    #[test]
    fn crash_window_tears_links_and_restart_heals() {
        let plan = FaultPlan::none().with_crash(
            1, // bob, the second node added below
            Duration::from_secs(20),
            Duration::from_secs(10),
        );
        let mut c = Cluster::with_env(12, RadioEnv::default().with_faults(plan));
        let a = c.add_node(
            NodeBuilder::new("alice").at(Point2::new(0.0, 0.0)),
            recorder(false),
        );
        let b = c.add_node(
            NodeBuilder::new("bob").at(Point2::new(4.0, 0.0)),
            recorder(true),
        );
        c.start();
        c.run_until(SimTime::from_secs(15));
        let bob = c.device_id(b);
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        c.run_until(SimTime::from_secs(18));
        assert_eq!(c.app(a).connected.len(), 1, "pre-crash connect works");
        // Bob's daemon dies at t=20 s; the connection cannot survive (the
        // handover target is the same dead daemon).
        c.run_until(SimTime::from_secs(29));
        assert!(
            !c.app(a).closed.is_empty(),
            "the crash must close alice's connection"
        );
        // After the restart at t=30 s the service registry survives and a
        // fresh connect succeeds.
        c.run_until(SimTime::from_secs(55));
        c.with_app(a, |_, ctx| ctx.peerhood().connect(bob, "PeerHoodCommunity"));
        c.run_until(SimTime::from_secs(70));
        assert_eq!(c.app(a).connected.len(), 2, "post-restart connect works");
    }
}
