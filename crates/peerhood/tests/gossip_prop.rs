//! Property tests for the gossip layer's partial-view invariants: view
//! bounds hold, the views stay disjoint and self-free under arbitrary
//! churn/message interleavings, and a post-churn clique converges (every
//! node delivers every published payload).

use std::collections::BTreeSet;
use std::time::Duration;

use codec::prop::{check, Config, Gen};
use codec::Bytes;
use netsim::SimTime;
use ph_peerhood::gossip::{message_id, Gossip, GossipConfig};

const NAMES: [&str; 6] = ["n0", "n1", "n2", "n3", "n4", "n5"];

/// A tiny in-memory transport: N gossip machines plus a symmetric
/// connectivity matrix. Messages are relayed only while both ends stay
/// connected, mirroring the radio-link contract of the real harness.
struct Mesh {
    nodes: Vec<Gossip>,
    linked: Vec<Vec<bool>>,
    now: SimTime,
}

impl Mesh {
    fn new(cfg: &GossipConfig) -> Mesh {
        let nodes = NAMES
            .iter()
            .map(|name| Gossip::new(*name, cfg.clone()))
            .collect();
        Mesh {
            nodes,
            linked: vec![vec![false; NAMES.len()]; NAMES.len()],
            now: SimTime::ZERO,
        }
    }

    fn index_of(name: &str) -> usize {
        NAMES.iter().position(|n| *n == name).expect("known name")
    }

    fn link(&mut self, a: usize, b: usize) {
        if a == b || self.linked[a][b] {
            return;
        }
        self.linked[a][b] = true;
        self.linked[b][a] = true;
        let now = self.now;
        self.nodes[a].neighbor_up(NAMES[b], now);
        self.nodes[b].neighbor_up(NAMES[a], now);
    }

    fn unlink(&mut self, a: usize, b: usize) {
        if a == b || !self.linked[a][b] {
            return;
        }
        self.linked[a][b] = false;
        self.linked[b][a] = false;
        let now = self.now;
        self.nodes[a].neighbor_down(NAMES[b], now);
        self.nodes[b].neighbor_down(NAMES[a], now);
    }

    /// Drains every outbox once, delivering only over live links.
    /// Returns how many messages moved.
    // Indexing: the loop takes `nodes[i]`'s outbox and delivers into
    // `nodes[j]`, which an iterator borrow cannot express.
    #[allow(clippy::needless_range_loop)]
    fn relay_once(&mut self) -> usize {
        let mut moved = 0;
        for i in 0..self.nodes.len() {
            let out = self.nodes[i].take_outbox();
            for (dest, msg) in out {
                let j = Mesh::index_of(&dest);
                if self.linked[i][j] {
                    moved += 1;
                    let now = self.now;
                    self.nodes[j].on_msg(NAMES[i], msg, now);
                }
            }
        }
        moved
    }

    fn relay_until_quiet(&mut self) {
        // Bounded: each relay round can only shrink the outstanding work in
        // a static topology; the cap guards against a protocol livelock.
        for _ in 0..64 {
            if self.relay_once() == 0 {
                return;
            }
        }
        panic!("gossip mesh failed to quiesce in 64 relay rounds");
    }

    fn assert_view_invariants(&self, cfg: &GossipConfig) {
        for (i, node) in self.nodes.iter().enumerate() {
            let active = node.active_view();
            let passive = node.passive_view();
            assert!(
                active.len() <= cfg.active_limit(),
                "{}: active view over bound: {active:?}",
                NAMES[i]
            );
            assert!(
                passive.len() <= cfg.passive_limit(),
                "{}: passive view over bound: {passive:?}",
                NAMES[i]
            );
            assert!(
                !active.contains(NAMES[i]) && !passive.contains(NAMES[i]),
                "{}: view contains self",
                NAMES[i]
            );
            let overlap: BTreeSet<_> = active.intersection(passive).collect();
            assert!(
                overlap.is_empty(),
                "{}: views overlap: {overlap:?}",
                NAMES[i]
            );
        }
    }
}

fn small_cfg(g: &mut Gen) -> GossipConfig {
    GossipConfig::default()
        .active_view(g.usize_in(1, 4))
        .passive_view(g.usize_in(0, 5))
        // The dedup cache must outlive the in-flight id set (≤ 49 distinct
        // ids under gen_ops: 6 origins × 8 seqs + the converge payload) or
        // Plumtree's seen-check forgets circulating ids and re-forwards
        // them forever — see `GossipConfig::cache_capacity`.
        .cache_capacity(g.usize_in(50, 96))
        .shuffle_every(Duration::from_secs(5))
        .graft_timeout(Duration::from_secs(1))
        .rng_salt(g.any_u64())
}

#[derive(Debug, Clone)]
enum Op {
    Link(usize, usize),
    Unlink(usize, usize),
    Publish(usize, u64),
    Tick(u64),
    Relay,
}

fn gen_ops(g: &mut Gen) -> (GossipConfig, Vec<Op>) {
    let cfg = small_cfg(g);
    let n = NAMES.len();
    let ops = g.vec_of(60, |g| match g.u64(5) {
        0 => Op::Link(g.usize(n), g.usize(n)),
        1 => Op::Unlink(g.usize(n), g.usize(n)),
        2 => Op::Publish(g.usize(n), g.u64(8)),
        3 => Op::Tick(g.u64_in(1, 10)),
        _ => Op::Relay,
    });
    (cfg, ops)
}

fn run_ops(mesh: &mut Mesh, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Link(a, b) => mesh.link(a, b),
            Op::Unlink(a, b) => mesh.unlink(a, b),
            Op::Publish(i, seq) => {
                let id = message_id(NAMES[i], seq);
                let now = mesh.now;
                mesh.nodes[i].publish(id, Bytes::from(vec![seq as u8]), now);
            }
            Op::Tick(secs) => {
                mesh.now += Duration::from_secs(secs);
                let now = mesh.now;
                for node in &mut mesh.nodes {
                    node.on_tick(now);
                }
            }
            Op::Relay => {
                mesh.relay_once();
            }
        }
    }
}

#[test]
fn partial_views_hold_invariants_under_churn() {
    check(
        &Config::with_cases(200),
        "gossip_view_invariants",
        gen_ops,
        |(cfg, ops)| {
            let mut mesh = Mesh::new(cfg);
            run_ops(&mut mesh, ops);
            mesh.assert_view_invariants(cfg);
        },
    );
}

#[test]
fn post_churn_clique_converges() {
    check(
        &Config::with_cases(60),
        "gossip_churn_convergence",
        gen_ops,
        |(cfg, ops)| {
            let mut mesh = Mesh::new(cfg);
            run_ops(&mut mesh, ops);
            // Churn over: bring the whole mesh into one clique, publish a
            // fresh payload, and let it settle.
            let n = mesh.nodes.len();
            for a in 0..n {
                for b in (a + 1)..n {
                    mesh.link(a, b);
                }
            }
            mesh.relay_until_quiet();
            let id = message_id(NAMES[0], 0xdead);
            let now = mesh.now;
            mesh.nodes[0].publish(id, Bytes::from(b"converge".to_vec()), now);
            mesh.relay_until_quiet();
            for (i, node) in mesh.nodes.iter().enumerate() {
                assert!(node.has_seen(id), "{} missed the payload", NAMES[i]);
            }
            mesh.assert_view_invariants(cfg);
        },
    );
}

#[test]
fn view_bounds_are_plain_assertions_not_lint_rules() {
    // ci.sh advertises a `gossip-view-bound` check; the bound is a runtime
    // property of the state machine (not a syntactic pattern), so it lives
    // here as a direct assertion instead of a ph-lint rule. Saturate one
    // node far past both bounds and check the caps directly.
    let cfg = GossipConfig::default().active_view(3).passive_view(7);
    let mut g = Gossip::new("me", cfg.clone());
    let now = SimTime::ZERO;
    for i in 0..50 {
        g.neighbor_up(&format!("peer{i:02}"), now);
    }
    assert_eq!(g.active_view().len(), 3);
    assert!(g.passive_view().len() <= 7);
    for i in 0..50 {
        g.neighbor_down(&format!("peer{i:02}"), now);
    }
    assert!(g.active_view().is_empty());
    assert!(g.passive_view().len() <= 7);
}
