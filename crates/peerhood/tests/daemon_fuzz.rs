//! Property test: the daemon state machine survives arbitrary input
//! sequences without panicking, and its outputs stay causally sane.

use bytes::Bytes;
use proptest::prelude::*;

use netsim::{SimTime, Technology};
use ph_peerhood::api::AppRequest;
use ph_peerhood::config::DaemonConfig;
use ph_peerhood::daemon::{Daemon, DaemonInput, DaemonOutput};
use ph_peerhood::plugin::PluginEvent;
use ph_peerhood::service::ServiceInfo;
use ph_peerhood::types::{AttemptId, ConnId, DeviceId, DeviceInfo, LinkId, ResumeToken};

fn arb_tech() -> impl Strategy<Value = Technology> {
    prop_oneof![
        Just(Technology::Bluetooth),
        Just(Technology::Wlan),
        Just(Technology::Gprs),
    ]
}

fn arb_device() -> impl Strategy<Value = DeviceInfo> {
    (0u64..6).prop_map(|id| DeviceInfo::new(DeviceId::new(id), format!("d{id}"), Technology::ALL))
}

fn arb_input() -> impl Strategy<Value = DaemonInput> {
    prop_oneof![
        Just(DaemonInput::Tick),
        // App requests with small id spaces so they sometimes collide with
        // real state.
        (0u64..6).prop_map(|d| DaemonInput::App(AppRequest::GetServiceList {
            device: DeviceId::new(d)
        })),
        Just(DaemonInput::App(AppRequest::GetDeviceList)),
        (0u64..6, "[a-c]{1,4}").prop_map(|(d, s)| DaemonInput::App(AppRequest::Connect {
            device: DeviceId::new(d),
            service: s
        })),
        (0u64..8).prop_map(|c| DaemonInput::App(AppRequest::Send {
            conn: ConnId::new(c),
            payload: Bytes::from_static(b"x")
        })),
        (0u64..8).prop_map(|c| DaemonInput::App(AppRequest::Close { conn: ConnId::new(c) })),
        (0u64..6).prop_map(|d| DaemonInput::App(AppRequest::Monitor {
            device: DeviceId::new(d)
        })),
        "[a-c]{1,4}".prop_map(|s| DaemonInput::App(AppRequest::RegisterService(
            ServiceInfo::new(s)
        ))),
        "[a-c]{1,4}".prop_map(|s| DaemonInput::App(AppRequest::UnregisterService(s))),
        // Plugin events, including ones referencing unknown state.
        (arb_tech(), arb_device()).prop_map(|(technology, device)| DaemonInput::Plugin(
            PluginEvent::InquiryResponse { technology, device }
        )),
        arb_tech().prop_map(|technology| DaemonInput::Plugin(PluginEvent::InquiryComplete {
            technology
        })),
        (0u64..6).prop_map(|d| DaemonInput::Plugin(PluginEvent::ServiceQuery {
            device: DeviceId::new(d)
        })),
        (0u64..6).prop_map(|d| DaemonInput::Plugin(PluginEvent::ServiceReply {
            device: DeviceId::new(d),
            services: vec![ServiceInfo::new("a")]
        })),
        (0u64..8, 0u64..8, any::<bool>()).prop_map(|(a, l, ok)| DaemonInput::Plugin(
            PluginEvent::ConnectResult {
                attempt: AttemptId::new(a),
                result: if ok { Ok(LinkId::new(l)) } else { Err("no".into()) },
            }
        )),
        (0u64..8, arb_device(), "[a-c]{1,4}", arb_tech(), proptest::option::of((0u64..6, 0u64..8)))
            .prop_map(|(l, device, service, technology, resume)| DaemonInput::Plugin(
                PluginEvent::IncomingConnection {
                    link: LinkId::new(l),
                    device,
                    service,
                    technology,
                    resume: resume.map(|(d, c)| ResumeToken {
                        initiator: DeviceId::new(d),
                        conn: ConnId::new(c),
                    }),
                }
            )),
        (0u64..8).prop_map(|l| DaemonInput::Plugin(PluginEvent::Frame {
            link: LinkId::new(l),
            payload: Bytes::from_static(b"y")
        })),
        (0u64..8).prop_map(|l| DaemonInput::Plugin(PluginEvent::PeerClosed {
            link: LinkId::new(l)
        })),
        (0u64..8).prop_map(|l| DaemonInput::Plugin(PluginEvent::LinkDown {
            link: LinkId::new(l)
        })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn daemon_survives_arbitrary_input_sequences(
        inputs in proptest::collection::vec((arb_input(), 0u64..5_000_000), 0..80)
    ) {
        let me = DeviceInfo::new(DeviceId::new(0), "me", Technology::ALL);
        let mut daemon = Daemon::new(DaemonConfig::new(me));
        let mut now = SimTime::ZERO;
        for (input, advance_micros) in inputs {
            now += std::time::Duration::from_micros(advance_micros);
            let mut out = Vec::new();
            daemon.handle(now, input, &mut out);
            // Causal sanity: any requested wake-up is strictly in the
            // future.
            for o in &out {
                if let DaemonOutput::WakeAt(t) = o {
                    prop_assert!(*t > now, "wake at {t:?} not after {now:?}");
                }
            }
        }
    }
}
