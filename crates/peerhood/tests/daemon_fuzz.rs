//! Property test: the daemon state machine survives arbitrary input
//! sequences without panicking, and its outputs stay causally sane.

use codec::prop::{check, Config, Gen};
use codec::Bytes;

use netsim::{SimTime, Technology};
use ph_peerhood::api::AppRequest;
use ph_peerhood::config::DaemonConfig;
use ph_peerhood::daemon::{Daemon, DaemonInput, DaemonOutput};
use ph_peerhood::plugin::PluginEvent;
use ph_peerhood::service::ServiceInfo;
use ph_peerhood::types::{AttemptId, ConnId, DeviceId, DeviceInfo, LinkId, ResumeToken};

fn gen_tech(g: &mut Gen) -> Technology {
    *g.pick(&Technology::ALL)
}

fn gen_device(g: &mut Gen) -> DeviceInfo {
    let id = g.u64(6);
    DeviceInfo::new(DeviceId::new(id), format!("d{id}"), Technology::ALL)
}

fn gen_name(g: &mut Gen) -> String {
    g.string_from("abc", 1, 4)
}

fn gen_input(g: &mut Gen) -> DaemonInput {
    // Small id spaces so generated ids sometimes collide with real state.
    match g.u64(17) {
        0 => DaemonInput::Tick,
        1 => DaemonInput::App(AppRequest::GetServiceList {
            device: DeviceId::new(g.u64(6)),
        }),
        2 => DaemonInput::App(AppRequest::GetDeviceList),
        3 => DaemonInput::App(AppRequest::Connect {
            device: DeviceId::new(g.u64(6)),
            service: gen_name(g),
        }),
        4 => DaemonInput::App(AppRequest::Send {
            conn: ConnId::new(g.u64(8)),
            payload: Bytes::from_static(b"x"),
        }),
        5 => DaemonInput::App(AppRequest::Close {
            conn: ConnId::new(g.u64(8)),
        }),
        6 => DaemonInput::App(AppRequest::Monitor {
            device: DeviceId::new(g.u64(6)),
        }),
        7 => DaemonInput::App(AppRequest::RegisterService(ServiceInfo::new(gen_name(g)))),
        8 => DaemonInput::App(AppRequest::UnregisterService(gen_name(g))),
        // Plugin events, including ones referencing unknown state.
        9 => DaemonInput::Plugin(PluginEvent::InquiryResponse {
            technology: gen_tech(g),
            device: gen_device(g),
        }),
        10 => DaemonInput::Plugin(PluginEvent::InquiryComplete {
            technology: gen_tech(g),
        }),
        11 => DaemonInput::Plugin(PluginEvent::ServiceQuery {
            device: DeviceId::new(g.u64(6)),
        }),
        12 => DaemonInput::Plugin(PluginEvent::ServiceReply {
            device: DeviceId::new(g.u64(6)),
            services: vec![ServiceInfo::new("a")],
        }),
        13 => DaemonInput::Plugin(PluginEvent::ConnectResult {
            attempt: AttemptId::new(g.u64(8)),
            result: if g.bool() {
                Ok(LinkId::new(g.u64(8)))
            } else {
                Err("no".into())
            },
        }),
        14 => DaemonInput::Plugin(PluginEvent::IncomingConnection {
            link: LinkId::new(g.u64(8)),
            device: gen_device(g),
            service: gen_name(g),
            technology: gen_tech(g),
            resume: if g.bool() {
                Some(ResumeToken {
                    initiator: DeviceId::new(g.u64(6)),
                    conn: ConnId::new(g.u64(8)),
                })
            } else {
                None
            },
        }),
        15 => DaemonInput::Plugin(PluginEvent::Frame {
            link: LinkId::new(g.u64(8)),
            payload: Bytes::from_static(b"y"),
        }),
        16 => DaemonInput::Plugin(PluginEvent::PeerClosed {
            link: LinkId::new(g.u64(8)),
        }),
        _ => DaemonInput::Plugin(PluginEvent::LinkDown {
            link: LinkId::new(g.u64(8)),
        }),
    }
}

#[test]
fn daemon_survives_arbitrary_input_sequences() {
    check(
        &Config::with_cases(256),
        "daemon survives arbitrary input sequences",
        |g| g.vec_of(80, |g| (gen_input(g), g.u64(5_000_000))),
        |inputs| {
            let me = DeviceInfo::new(DeviceId::new(0), "me", Technology::ALL);
            let mut daemon = Daemon::new(DaemonConfig::new(me));
            let mut now = SimTime::ZERO;
            for (input, advance_micros) in inputs {
                now += std::time::Duration::from_micros(*advance_micros);
                let mut out = Vec::new();
                daemon.handle(now, input.clone(), &mut out);
                // Causal sanity: any requested wake-up is strictly in the
                // future.
                for o in &out {
                    if let DaemonOutput::WakeAt(t) = o {
                        assert!(*t > now, "wake at {t:?} not after {now:?}");
                    }
                }
            }
        },
    );
}
