//! End-to-end tests for the epidemic gossip layer: multi-hop membership,
//! blob dissemination, the group-event trace vocabulary, and determinism.

use netsim::geometry::Point2;
use netsim::mobility::ScriptedPath;
use netsim::world::NodeBuilder;
use netsim::{SimTime, Technology};

use peerhood::gossip::GossipConfig;
use peerhood::sim::Cluster;
use ph_community::node::CommunityApp;
use ph_community::profile::Profile;

fn member_app(name: &str, interests: &[&str]) -> CommunityApp {
    CommunityApp::with_member(
        name,
        "pw",
        Profile::new(name).with_interests(interests.iter().copied()),
    )
}

fn gossip_app(name: &str, interests: &[&str]) -> CommunityApp {
    member_app(name, interests).with_gossip(GossipConfig::default().rng_salt(5))
}

/// A static Bluetooth chain: alice — bob — carol, where alice and carol are
/// *never* in radio range of each other (16 m apart, 10 m radio). With the
/// gossip layer on, bob relays membership and content epidemically.
fn chain_cluster(seed: u64) -> (Cluster<CommunityApp>, [netsim::world::NodeId; 3]) {
    let mut c = Cluster::new(seed);
    let a = c.add_node(
        NodeBuilder::new("alice-pc")
            .at(Point2::new(0.0, 0.0))
            .with_technologies([Technology::Bluetooth]),
        gossip_app("alice", &["Football"]),
    );
    let b = c.add_node(
        NodeBuilder::new("bob-pc")
            .at(Point2::new(8.0, 0.0))
            .with_technologies([Technology::Bluetooth]),
        gossip_app("bob", &["chess"]),
    );
    let n = c.add_node(
        NodeBuilder::new("carol-pc")
            .at(Point2::new(16.0, 0.0))
            .with_technologies([Technology::Bluetooth]),
        gossip_app("carol", &["football"]),
    );
    c.start();
    (c, [a, b, n])
}

#[test]
fn gossip_bridges_members_beyond_radio_range() {
    let (mut c, [a, _b, n]) = chain_cluster(21);
    c.run_until(SimTime::from_secs(90));
    // alice and carol share "football" but never meet: only the gossip
    // relay through bob can group them.
    let groups = c.app(a).groups();
    let football = groups
        .iter()
        .find(|g| g.key == "football")
        .unwrap_or_else(|| panic!("no football group at alice: {groups:?}"));
    assert_eq!(football.members, vec!["alice", "carol"]);
    let carol_groups = c.app(n).groups();
    assert!(
        carol_groups
            .iter()
            .any(|g| g.key == "football" && g.members == vec!["alice", "carol"]),
        "carol's view: {carol_groups:?}"
    );
    // The membership traveled two radio hops.
    let rt = c.app(a).gossip().expect("gossip enabled");
    assert!(rt.remote_members().contains_key("carol"));
}

#[test]
fn gossip_disseminates_blobs_multi_hop() {
    let (mut c, [a, b, n]) = chain_cluster(22);
    c.run_until(SimTime::from_secs(60));
    let payload = codec::Bytes::from(vec![0xAB; 256]);
    c.with_app(a, |app, ctx| {
        app.publish_blob("match-photo.jpg", payload, ctx).unwrap()
    });
    c.run_until(SimTime::from_secs(120));
    for (node, min_hops) in [(a, 0), (b, 1), (n, 2)] {
        let log = c.app(node).gossip().expect("gossip enabled").blob_log();
        let hit = log
            .iter()
            .find(|d| d.name == "match-photo.jpg")
            .unwrap_or_else(|| panic!("blob missing at {:?}: {log:?}", c.name(node)));
        assert_eq!(hit.origin, "alice");
        assert_eq!(hit.size, 256);
        assert!(
            hit.hops >= min_hops,
            "expected >= {min_hops} hops at {:?}, got {}",
            c.name(node),
            hit.hops
        );
    }
    assert!(c
        .trace()
        .labels()
        .iter()
        .any(|l| l.starts_with("BLOB_RECV match-photo.jpg")));
}

#[test]
fn group_event_trace_covers_joins_and_leaves() {
    // Three chess players in range; carol walks away at t=60. The trace must
    // record the full event vocabulary, not just formation.
    fn run() -> (Vec<String>, u64) {
        let mut c = Cluster::new(23);
        let _a = c.add_node(
            NodeBuilder::new("alice-pc").at(Point2::new(0.0, 0.0)),
            member_app("alice", &["chess"]),
        );
        let _b = c.add_node(
            NodeBuilder::new("bob-pc").at(Point2::new(4.0, 0.0)),
            member_app("bob", &["chess"]),
        );
        let _n = c.add_node(
            NodeBuilder::new("carol-n810")
                .moving(ScriptedPath::new(vec![
                    (SimTime::from_secs(0), Point2::new(2.0, 3.0)),
                    (SimTime::from_secs(60), Point2::new(2.0, 3.0)),
                    (SimTime::from_secs(90), Point2::new(900.0, 3.0)),
                ]))
                .with_technologies([Technology::Bluetooth]),
            member_app("carol", &["chess"]),
        );
        c.start();
        c.run_until(SimTime::from_secs(240));
        let labels: Vec<String> = c.trace().labels().iter().map(|l| l.to_string()).collect();
        (labels, c.trace().digest())
    }
    let (labels, digest) = run();
    assert!(
        labels.iter().any(|l| l.starts_with("GROUP_FORMED chess")),
        "no formation event"
    );
    let joined = labels.iter().any(|l| l.starts_with("MEMBER_JOINED chess"));
    let left = labels
        .iter()
        .any(|l| l == "MEMBER_LEFT chess carol" || l == "GROUP_DISSOLVED chess");
    assert!(
        joined
            || labels
                .iter()
                .filter(|l| l.starts_with("GROUP_FORMED chess"))
                .count()
                > 0,
        "membership growth must be visible: {labels:?}"
    );
    assert!(left, "carol's departure must be traced: {labels:?}");
    // The events are part of the digest: identical runs agree bit-for-bit.
    let (_, digest2) = run();
    assert_eq!(digest, digest2);
}

#[test]
fn gossip_runs_are_deterministic() {
    fn run(seed: u64) -> (u64, u64, u64) {
        let (mut c, [a, _, _]) = chain_cluster(seed);
        c.run_until(SimTime::from_secs(45));
        c.with_app(a, |app, ctx| {
            app.publish_blob("x", codec::Bytes::from(vec![1, 2, 3]), ctx)
                .unwrap()
        });
        c.run_until(SimTime::from_secs(100));
        let stats = c.app(a).gossip().unwrap().stats();
        (c.trace().digest(), stats.eager, stats.lazy)
    }
    assert_eq!(run(31), run(31));
    // Different seeds shift radio timing, so the digest must move too.
    assert_ne!(run(31).0, run(32).0);
}

#[test]
fn gossip_stats_count_protocol_traffic() {
    let (mut c, [a, b, n]) = chain_cluster(24);
    c.run_until(SimTime::from_secs(90));
    let total: u64 = [a, b, n]
        .iter()
        .map(|&node| {
            let s = c.app(node).gossip().unwrap().stats();
            s.eager + s.lazy
        })
        .sum();
    assert!(total > 0, "membership exchange must produce gossip traffic");
}
