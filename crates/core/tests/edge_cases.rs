//! Edge-case integration tests: operations racing mobility, partial
//! results, profile switching, and other unhappy paths.

use std::time::Duration;

use netsim::geometry::Point2;
use netsim::mobility::ScriptedPath;
use netsim::world::NodeBuilder;
use netsim::{SimTime, Technology};

use peerhood::sim::Cluster;
use ph_community::node::{CommunityApp, OpMode};
use ph_community::profile::Profile;
use ph_community::{OpResult, SharedOutcome};

fn member(name: &str, interests: &[&str]) -> CommunityApp {
    CommunityApp::with_member(
        name,
        "pw",
        Profile::new(name).with_interests(interests.iter().copied()),
    )
}

#[test]
fn fan_out_completes_with_partial_results_when_a_peer_departs() {
    // Observer + two peers; one peer walks away right as the member-list
    // operation runs. The operation must still complete with the survivor.
    let mut c = Cluster::new(101);
    let a = c.add_node(
        NodeBuilder::new("a-pc")
            .at(Point2::ORIGIN)
            .with_technologies([Technology::Bluetooth]),
        member("alice", &["x"]),
    );
    let _stay = c.add_node(
        NodeBuilder::new("stay-pc")
            .at(Point2::new(3.0, 0.0))
            .with_technologies([Technology::Bluetooth]),
        member("stayer", &["x"]),
    );
    let _leave = c.add_node(
        NodeBuilder::new("leave-pc")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(0.0, 3.0)),
                (SimTime::from_secs(59), Point2::new(0.0, 3.0)),
                (SimTime::from_secs(62), Point2::new(0.0, 500.0)),
            ]))
            .with_technologies([Technology::Bluetooth]),
        member("leaver", &["x"]),
    );
    c.start();
    c.run_until(SimTime::from_secs(58));
    assert_eq!(
        c.app(a).known_members().len(),
        2,
        "both known before the walk"
    );

    // Start the op moments before the leaver vanishes.
    let op = c.with_app(a, |app, ctx| app.get_member_list(ctx));
    c.run_until(SimTime::from_secs(240));
    let outcome = c.app(a).outcome(op).expect("must complete, not hang");
    match &outcome.result {
        OpResult::Members(names) => {
            assert!(
                names.contains(&"stayer".to_owned()),
                "survivor always answers: {names:?}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn per_operation_plan_skips_unreachable_devices() {
    // In per-operation mode, a device that left between discovery and the
    // operation is skipped (connect fails), and the op completes.
    let mut c = Cluster::new(102);
    let a = c.add_node(
        NodeBuilder::new("a-pc")
            .at(Point2::ORIGIN)
            .with_technologies([Technology::Bluetooth]),
        member("alice", &["x"]).with_op_mode(OpMode::PerOperation),
    );
    let _stay = c.add_node(
        NodeBuilder::new("stay-pc")
            .at(Point2::new(3.0, 0.0))
            .with_technologies([Technology::Bluetooth]),
        member("stayer", &["x"]).with_op_mode(OpMode::PerOperation),
    );
    let _leave = c.add_node(
        NodeBuilder::new("leave-pc")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(0.0, 3.0)),
                (SimTime::from_secs(40), Point2::new(0.0, 3.0)),
                (SimTime::from_secs(43), Point2::new(0.0, 500.0)),
            ]))
            .with_technologies([Technology::Bluetooth]),
        member("leaver", &["x"]).with_op_mode(OpMode::PerOperation),
    );
    c.start();
    c.run_until(SimTime::from_secs(41));

    let op = c.with_app(a, |app, ctx| app.get_member_list(ctx));
    c.run_until(SimTime::from_secs(200));
    let outcome = c
        .app(a)
        .outcome(op)
        .expect("plan must not hang on the leaver");
    match &outcome.result {
        OpResult::Members(names) => assert!(names.contains(&"stayer".to_owned())),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn switching_profiles_changes_served_interests_and_groups() {
    let mut c = Cluster::new(103);
    let a = c.add_node(
        NodeBuilder::new("a-pc").at(Point2::ORIGIN),
        member("alice", &["chess"]),
    );
    let b = c.add_node(
        NodeBuilder::new("b-pc").at(Point2::new(3.0, 0.0)),
        member("bob", &["chess", "databases"]),
    );
    c.start();
    c.run_until(SimTime::from_secs(40));
    assert_eq!(
        c.app(a).groups().len(),
        1,
        "chess group from the hobby profile"
    );

    // Bob switches to his work profile (databases only). Alice's refresh
    // re-fetches his interests; the chess group dissolves for her.
    c.with_app(b, |app, _| {
        let account = app.store_mut().require_active().expect("logged in");
        let idx = account.add_profile(Profile::new("Work Bob").with_interests(["databases"]));
        account.select_profile(idx).expect("fresh profile");
    });
    c.run_until(SimTime::from_secs(140));
    assert!(
        c.app(a).groups().is_empty(),
        "work profile shares no interests: {:?}",
        c.app(a).groups()
    );
}

#[test]
fn trust_revocation_takes_effect_immediately() {
    let mut c = Cluster::new(104);
    let a = c.add_node(
        NodeBuilder::new("a").at(Point2::ORIGIN),
        member("alice", &["x"]),
    );
    let b = c.add_node(
        NodeBuilder::new("b").at(Point2::new(3.0, 0.0)),
        member("bob", &["x"]),
    );
    c.start();
    c.run_until(SimTime::from_secs(40));

    c.with_app(b, |app, _| {
        app.add_trusted("alice").expect("logged in");
        app.store_mut()
            .require_active()
            .expect("logged in")
            .shared
            .share("f.txt", "text", vec![1]);
    });
    let op = c.with_app(a, |app, ctx| app.view_shared_content("bob", ctx));
    c.run_for(Duration::from_secs(10));
    assert!(matches!(
        &c.app(a).outcome(op).expect("done").result,
        OpResult::SharedContent(SharedOutcome::Listing(_))
    ));

    c.with_app(b, |app, _| app.remove_trusted("alice").expect("logged in"));
    let op = c.with_app(a, |app, ctx| app.view_shared_content("bob", ctx));
    c.run_for(Duration::from_secs(10));
    assert_eq!(
        c.app(a).outcome(op).expect("done").result,
        OpResult::SharedContent(SharedOutcome::NotTrusted)
    );
}

#[test]
fn duplicate_member_names_on_two_devices_do_not_crash() {
    // Two devices both logged in as "bob" (the thesis has no global
    // account authority). Operations must stay well-defined: fan-outs
    // dedup by name, direct ops pick one host.
    let mut c = Cluster::new(105);
    let a = c.add_node(
        NodeBuilder::new("a").at(Point2::ORIGIN),
        member("alice", &["x"]),
    );
    let _b1 = c.add_node(
        NodeBuilder::new("b1").at(Point2::new(3.0, 0.0)),
        member("bob", &["x"]),
    );
    let _b2 = c.add_node(
        NodeBuilder::new("b2").at(Point2::new(0.0, 3.0)),
        member("bob", &["x"]),
    );
    c.start();
    c.run_until(SimTime::from_secs(40));

    let op = c.with_app(a, |app, ctx| app.get_member_list(ctx));
    c.run_for(Duration::from_secs(10));
    match &c.app(a).outcome(op).expect("done").result {
        OpResult::Members(names) => assert_eq!(names, &["bob"], "dedup by name"),
        other => panic!("unexpected {other:?}"),
    }
    // The group contains "bob" once.
    let groups = c.app(a).groups();
    assert_eq!(groups[0].members, vec!["alice", "bob"]);
    // Messaging "bob" reaches exactly one of the two devices.
    let op = c.with_app(a, |app, ctx| app.send_message("bob", "s", "b", ctx));
    c.run_for(Duration::from_secs(10));
    assert!(matches!(
        c.app(a).outcome(op).expect("done").result,
        OpResult::MessageResult { written: true }
    ));
}

#[test]
fn empty_interest_profiles_form_no_groups_but_everything_else_works() {
    let mut c = Cluster::new(106);
    let a = c.add_node(
        NodeBuilder::new("a").at(Point2::ORIGIN),
        member("alice", &[]),
    );
    let _b = c.add_node(
        NodeBuilder::new("b").at(Point2::new(3.0, 0.0)),
        member("bob", &[]),
    );
    c.start();
    c.run_until(SimTime::from_secs(40));
    assert!(c.app(a).groups().is_empty());
    assert_eq!(c.app(a).known_members(), vec!["bob"]);

    let op = c.with_app(a, |app, ctx| app.view_profile("bob", ctx));
    c.run_for(Duration::from_secs(10));
    match &c.app(a).outcome(op).expect("done").result {
        OpResult::Profile(Some(view)) => assert!(view.interests.is_empty()),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn comment_on_logged_out_device_reports_not_written() {
    let mut store = ph_community::MemberStore::new();
    store
        .create_account("ghost", "pw", Profile::new("Ghost"))
        .expect("fresh");
    let mut c = Cluster::new(107);
    let a = c.add_node(
        NodeBuilder::new("a").at(Point2::ORIGIN),
        member("alice", &["x"]),
    );
    let _g = c.add_node(
        NodeBuilder::new("g").at(Point2::new(3.0, 0.0)),
        CommunityApp::new(store),
    );
    c.start();
    c.run_until(SimTime::from_secs(40));

    let op = c.with_app(a, |app, ctx| app.put_comment("ghost", "hello?", ctx));
    c.run_for(Duration::from_secs(10));
    assert_eq!(
        c.app(a).outcome(op).expect("done").result,
        OpResult::CommentResult { written: false },
        "logged-out devices answer NO_MEMBERS_YET"
    );
}

#[test]
fn reappearing_member_rejoins_groups() {
    let mut c = Cluster::new(108);
    let ttl_fast = |cfg: peerhood::DaemonConfig| cfg.with_neighbor_ttl(Duration::from_secs(30));
    let a = c.add_node_with(
        NodeBuilder::new("a")
            .at(Point2::ORIGIN)
            .with_technologies([Technology::Bluetooth]),
        ttl_fast,
        member("alice", &["x"]),
    );
    // Bob leaves for two minutes and comes back.
    let _b = c.add_node_with(
        NodeBuilder::new("b")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(3.0, 0.0)),
                (SimTime::from_secs(60), Point2::new(3.0, 0.0)),
                (SimTime::from_secs(65), Point2::new(500.0, 0.0)),
                (SimTime::from_secs(180), Point2::new(500.0, 0.0)),
                (SimTime::from_secs(185), Point2::new(3.0, 0.0)),
            ]))
            .with_technologies([Technology::Bluetooth]),
        ttl_fast,
        member("bob", &["x"]),
    );
    c.start();
    c.run_until(SimTime::from_secs(50));
    assert_eq!(c.app(a).groups().len(), 1, "group while together");
    c.run_until(SimTime::from_secs(170));
    assert!(c.app(a).groups().is_empty(), "group gone while apart");
    c.run_until(SimTime::from_secs(300));
    assert_eq!(
        c.app(a).groups().len(),
        1,
        "group re-forms on return: {:?}",
        c.app(a).groups()
    );
}
