//! End-to-end tests: PeerHood Community nodes living in a simulated mobile
//! environment, exercising every feature of Table 7 over the full stack
//! (radio models → PeerHood daemon → community protocol).

use std::time::Duration;

use netsim::geometry::Point2;
use netsim::mobility::ScriptedPath;
use netsim::world::{NodeBuilder, NodeId};
use netsim::{SimTime, Technology};

use peerhood::sim::Cluster;
use ph_community::node::{CommunityApp, OpMode};
use ph_community::profile::Profile;
use ph_community::{GroupEvent, OpResult, SharedOutcome};

fn member_app(name: &str, interests: &[&str]) -> CommunityApp {
    CommunityApp::with_member(
        name,
        "pw",
        Profile::new(name).with_interests(interests.iter().copied()),
    )
}

/// The thesis's lab setup: a few stationary PCs within Bluetooth range.
fn lab_cluster(
    seed: u64,
    members: &[(&str, &[&str])],
    mode: OpMode,
) -> (Cluster<CommunityApp>, Vec<NodeId>) {
    let mut cluster = Cluster::new(seed);
    let mut nodes = Vec::new();
    for (i, (name, interests)) in members.iter().enumerate() {
        let angle = i as f64 / members.len() as f64 * std::f64::consts::TAU;
        let pos = Point2::new(3.0 * angle.cos(), 3.0 * angle.sin());
        let app = member_app(name, interests).with_op_mode(mode);
        nodes.push(cluster.add_node(NodeBuilder::new(format!("{name}-pc")).at(pos), app));
    }
    cluster.start();
    (cluster, nodes)
}

#[test]
fn groups_form_dynamically_within_seconds_of_startup() {
    let (mut c, n) = lab_cluster(
        1,
        &[
            ("bishal", &["Football", "Mobile P2P"]),
            ("arto", &["football", "sauna"]),
            ("jari", &["Sauna", "Mobile P2P"]),
        ],
        OpMode::Persistent,
    );
    c.run_until(SimTime::from_secs(40));
    // bishal: football group with arto, mobile p2p with jari.
    let groups = c.app(n[0]).groups();
    assert_eq!(groups.len(), 2, "{groups:?}");
    let football = groups.iter().find(|g| g.key == "football").unwrap();
    assert_eq!(football.members, vec!["arto", "bishal"]);
    let p2p = groups.iter().find(|g| g.key == "mobile p2p").unwrap();
    assert_eq!(p2p.members, vec!["bishal", "jari"]);
    // arto sees his own view: football with bishal, sauna with jari.
    let arto_groups = c.app(n[1]).groups();
    assert_eq!(arto_groups.len(), 2);
    // Group search time (Table 8): around one Bluetooth inquiry.
    let app = c.app(n[0]);
    let search = app.first_group_at().unwrap() - app.started_at().unwrap();
    assert!(
        search >= Duration::from_secs(1) && search <= Duration::from_secs(20),
        "search took {search:?}"
    );
}

#[test]
fn member_list_interest_list_and_dedup() {
    let (mut c, n) = lab_cluster(
        2,
        &[
            ("alice", &["chess"]),
            ("bob", &["chess", "poker"]),
            ("carol", &["poker"]),
        ],
        OpMode::Persistent,
    );
    c.run_until(SimTime::from_secs(40));

    let op = c.with_app(n[0], |app, ctx| app.get_member_list(ctx));
    c.run_until(SimTime::from_secs(45));
    match &c.app(n[0]).outcome(op).expect("completed").result {
        OpResult::Members(names) => assert_eq!(names, &["bob", "carol"]),
        other => panic!("unexpected {other:?}"),
    }

    // Figure 12: interests are deduplicated across devices.
    let op = c.with_app(n[0], |app, ctx| app.get_interest_list(ctx));
    c.run_until(SimTime::from_secs(50));
    match &c.app(n[0]).outcome(op).expect("completed").result {
        OpResult::Interests(items) => assert_eq!(items, &["chess", "poker"]),
        other => panic!("unexpected {other:?}"),
    }

    let op = c.with_app(n[0], |app, ctx| app.get_interested_members("poker", ctx));
    c.run_until(SimTime::from_secs(55));
    match &c.app(n[0]).outcome(op).expect("completed").result {
        OpResult::InterestedMembers(names) => assert_eq!(names, &["bob", "carol"]),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn profile_view_logs_visitor_and_comment_is_written() {
    let (mut c, n) = lab_cluster(
        3,
        &[("alice", &["x"]), ("bob", &["x"]), ("carol", &["x"])],
        OpMode::Persistent,
    );
    c.run_until(SimTime::from_secs(40));

    // Figure 13: alice views bob's profile.
    let op = c.with_app(n[0], |app, ctx| app.view_profile("bob", ctx));
    c.run_until(SimTime::from_secs(45));
    match &c.app(n[0]).outcome(op).expect("completed").result {
        OpResult::Profile(Some(view)) => {
            assert_eq!(view.member, "bob");
            assert_eq!(view.display_name, "bob");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The server logged the visit.
    let visitors = &c
        .app(n[1])
        .store()
        .active_account()
        .unwrap()
        .profile()
        .visitors;
    assert_eq!(&*visitors[0].visitor, "alice");

    // Figure 14: alice comments on bob's profile.
    let op = c.with_app(n[0], |app, ctx| app.put_comment("bob", "hi bob!", ctx));
    c.run_until(SimTime::from_secs(50));
    assert_eq!(
        c.app(n[0]).outcome(op).unwrap().result,
        OpResult::CommentResult { written: true }
    );
    let comments = &c
        .app(n[1])
        .store()
        .active_account()
        .unwrap()
        .profile()
        .comments;
    assert_eq!(comments.len(), 1);
    assert_eq!(&*comments[0].author, "alice");
    assert_eq!(comments[0].text, "hi bob!");

    // Viewing a nonexistent member: everyone answers NO_MEMBERS_YET.
    let op = c.with_app(n[0], |app, ctx| app.view_profile("nobody", ctx));
    c.run_until(SimTime::from_secs(55));
    assert_eq!(
        c.app(n[0]).outcome(op).unwrap().result,
        OpResult::Profile(None)
    );
}

#[test]
fn trusted_friends_and_shared_content_flow() {
    let (mut c, n) = lab_cluster(4, &[("alice", &["x"]), ("bob", &["x"])], OpMode::Persistent);
    c.run_until(SimTime::from_secs(40));

    // Bob shares a file and trusts carol (not alice yet).
    c.with_app(n[1], |app, _| {
        app.store_mut()
            .require_active()
            .unwrap()
            .shared
            .share("song.mp3", "music", vec![7; 2048]);
        app.add_trusted("carol").unwrap();
    });

    // Figure 15: alice views bob's trusted friends.
    let op = c.with_app(n[0], |app, ctx| app.view_trusted_friends("bob", ctx));
    c.run_until(SimTime::from_secs(45));
    assert_eq!(
        c.app(n[0]).outcome(op).unwrap().result,
        OpResult::TrustedFriends(Some(vec!["carol".into()]))
    );

    // Figure 16, untrusted phase: NOT_TRUSTED_YET.
    let op = c.with_app(n[0], |app, ctx| app.view_shared_content("bob", ctx));
    c.run_until(SimTime::from_secs(50));
    assert_eq!(
        c.app(n[0]).outcome(op).unwrap().result,
        OpResult::SharedContent(SharedOutcome::NotTrusted)
    );

    // Bob accepts alice; now the listing and the bytes flow.
    c.with_app(n[1], |app, _| app.add_trusted("alice").unwrap());
    let op = c.with_app(n[0], |app, ctx| app.view_shared_content("bob", ctx));
    c.run_until(SimTime::from_secs(55));
    match &c.app(n[0]).outcome(op).unwrap().result {
        OpResult::SharedContent(SharedOutcome::Listing(items)) => {
            assert_eq!(items.len(), 1);
            assert_eq!(items[0].name, "song.mp3");
            assert_eq!(items[0].size, 2048);
        }
        other => panic!("unexpected {other:?}"),
    }
    let op = c.with_app(n[0], |app, ctx| app.fetch_content("bob", "song.mp3", ctx));
    c.run_until(SimTime::from_secs(60));
    match &c.app(n[0]).outcome(op).unwrap().result {
        OpResult::Content(Some((name, data))) => {
            assert_eq!(name, "song.mp3");
            assert_eq!(data.len(), 2048);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn messages_reach_the_inbox() {
    let (mut c, n) = lab_cluster(5, &[("alice", &["x"]), ("bob", &["x"])], OpMode::Persistent);
    c.run_until(SimTime::from_secs(40));

    let op = c.with_app(n[0], |app, ctx| {
        app.send_message("bob", "pub tonight?", "see you at 8", ctx)
    });
    c.run_until(SimTime::from_secs(45));
    assert_eq!(
        c.app(n[0]).outcome(op).unwrap().result,
        OpResult::MessageResult { written: true }
    );
    let inbox = c
        .app(n[1])
        .store()
        .active_account()
        .unwrap()
        .mailbox
        .inbox()
        .to_vec();
    assert_eq!(inbox.len(), 1);
    assert_eq!(&*inbox[0].from, "alice");
    assert_eq!(inbox[0].subject, "pub tonight?");

    // Messaging an unknown member fails fast.
    let op = c.with_app(n[0], |app, ctx| app.send_message("ghost", "s", "b", ctx));
    c.run_until(SimTime::from_secs(50));
    assert!(matches!(
        c.app(n[0]).outcome(op).unwrap().result,
        OpResult::Failed(_)
    ));
}

#[test]
fn departure_removes_member_from_groups() {
    let mut c = Cluster::new(6);
    let a = c.add_node(
        NodeBuilder::new("alice-pc").at(Point2::new(0.0, 0.0)),
        member_app("alice", &["chess"]),
    );
    // Bob is Bluetooth-only and walks away at t=60.
    let _b = c.add_node(
        NodeBuilder::new("bob-n810")
            .moving(ScriptedPath::new(vec![
                (SimTime::from_secs(0), Point2::new(4.0, 0.0)),
                (SimTime::from_secs(60), Point2::new(4.0, 0.0)),
                (SimTime::from_secs(90), Point2::new(900.0, 0.0)),
            ]))
            .with_technologies([Technology::Bluetooth]),
        member_app("bob", &["chess"]),
    );
    c.start();
    c.run_until(SimTime::from_secs(40));
    assert_eq!(c.app(a).groups().len(), 1, "group should have formed");

    c.run_until(SimTime::from_secs(240));
    assert!(
        c.app(a).groups().is_empty(),
        "bob left; the chess group must dissolve: {:?}",
        c.app(a).groups()
    );
    let dissolved = c
        .app(a)
        .group_events()
        .iter()
        .any(|(_, e)| matches!(e, GroupEvent::GroupDissolved { key } if key == "chess"));
    assert!(dissolved, "{:?}", c.app(a).group_events());
}

#[test]
fn semantics_teaching_merges_fragmented_groups() {
    let (mut c, n) = lab_cluster(
        7,
        &[("alice", &["biking"]), ("bob", &["cycling"])],
        OpMode::Persistent,
    );
    c.run_until(SimTime::from_secs(40));
    // The §5.2.6 limitation: no group forms under exact matching.
    assert!(c.app(n[0]).groups().is_empty());

    // Alice teaches the synonym; the group forms immediately.
    c.with_app(n[0], |app, ctx| app.teach_synonym("biking", "cycling", ctx));
    let groups = c.app(n[0]).groups();
    assert_eq!(groups.len(), 1, "{groups:?}");
    assert_eq!(groups[0].members, vec!["alice", "bob"]);
}

#[test]
fn manual_join_and_leave() {
    let (mut c, n) = lab_cluster(
        8,
        &[("alice", &["chess", "poker"]), ("bob", &["chess", "poker"])],
        OpMode::Persistent,
    );
    c.run_until(SimTime::from_secs(40));
    assert_eq!(c.app(n[0]).my_groups().len(), 2);
    c.with_app(n[0], |app, _| assert!(app.leave_group("poker")));
    assert_eq!(c.app(n[0]).my_groups().len(), 1);
    c.with_app(n[0], |app, _| assert!(app.join_group("poker")));
    assert_eq!(c.app(n[0]).my_groups().len(), 2);
    c.with_app(n[0], |app, _| assert!(!app.join_group("no-such-group")));
}

#[test]
fn interest_edits_propagate_via_refresh() {
    let (mut c, n) = lab_cluster(
        9,
        &[("alice", &["chess"]), ("bob", &["poker"])],
        OpMode::Persistent,
    );
    c.run_until(SimTime::from_secs(40));
    assert!(c.app(n[0]).groups().is_empty());

    // Bob picks up chess; alice learns it on her next periodic refresh.
    c.with_app(n[1], |app, ctx| app.add_interest("chess", ctx).unwrap());
    c.run_until(SimTime::from_secs(120));
    let groups = c.app(n[0]).groups();
    assert_eq!(groups.len(), 1, "{groups:?}");
    assert_eq!(groups[0].key, "chess");
}

#[test]
fn per_operation_mode_forms_groups_and_serves_ops() {
    let (mut c, n) = lab_cluster(
        10,
        &[
            ("bishal", &["Football"]),
            ("arto", &["football"]),
            ("jari", &["football"]),
        ],
        OpMode::PerOperation,
    );
    c.run_until(SimTime::from_secs(60));
    let groups = c.app(n[0]).groups();
    assert_eq!(groups.len(), 1, "{groups:?}");
    assert_eq!(groups[0].members, vec!["arto", "bishal", "jari"]);

    // A member-list operation opens fresh sequential connections — it
    // works, and costs Bluetooth connection setup per peer.
    let op = c.with_app(n[0], |app, ctx| app.get_member_list(ctx));
    c.run_until(SimTime::from_secs(90));
    let outcome = c.app(n[0]).outcome(op).expect("completed").clone();
    match &outcome.result {
        OpResult::Members(names) => assert_eq!(names, &["arto", "jari"]),
        other => panic!("unexpected {other:?}"),
    }
    assert!(
        outcome.duration() >= Duration::from_millis(1_000),
        "two sequential Bluetooth connects must cost seconds, took {:?}",
        outcome.duration()
    );

    // Profile view in per-operation mode.
    let op = c.with_app(n[0], |app, ctx| app.view_profile("arto", ctx));
    c.run_until(SimTime::from_secs(120));
    match &c.app(n[0]).outcome(op).expect("completed").result {
        OpResult::Profile(Some(view)) => assert_eq!(view.member, "arto"),
        other => panic!("unexpected {other:?}"),
    }

    // Direct op (message) in per-operation mode.
    let op = c.with_app(n[0], |app, ctx| app.send_message("jari", "hei", "moi", ctx));
    c.run_until(SimTime::from_secs(150));
    assert_eq!(
        c.app(n[0]).outcome(op).unwrap().result,
        OpResult::MessageResult { written: true }
    );
}

#[test]
fn scenario_runs_are_deterministic() {
    fn run() -> (Vec<String>, usize, u64) {
        let (mut c, n) = lab_cluster(
            42,
            &[
                ("a", &["x", "y"]),
                ("b", &["x"]),
                ("c", &["y"]),
                ("d", &["x", "y"]),
            ],
            OpMode::Persistent,
        );
        c.run_until(SimTime::from_secs(60));
        let op = c.with_app(n[0], |app, ctx| app.get_member_list(ctx));
        c.run_until(SimTime::from_secs(70));
        let names = match &c.app(n[0]).outcome(op).unwrap().result {
            OpResult::Members(m) => m.clone(),
            _ => vec![],
        };
        let first_group = c.app(n[0]).first_group_at().unwrap().as_micros();
        (names, c.app(n[0]).groups().len(), first_group)
    }
    assert_eq!(run(), run());
}

#[test]
fn trace_records_msc_vocabulary() {
    let (mut c, n) = lab_cluster(
        11,
        &[("alice", &["x"]), ("bob", &["x"])],
        OpMode::Persistent,
    );
    c.run_until(SimTime::from_secs(40));
    c.clear_trace();
    let _op = c.with_app(n[0], |app, ctx| app.view_profile("bob", ctx));
    c.run_until(SimTime::from_secs(45));
    let trace = c.trace();
    assert!(
        trace.contains_subsequence(&["PS_GETPROFILE", "PROFILE_INFO", "DISPLAY PROFILE"]),
        "labels: {:?}",
        trace.labels()
    );
}

#[test]
fn convenience_accessors_reflect_session_state() {
    let (mut c, n) = lab_cluster(
        12,
        &[("alice", &["x"]), ("bob", &["x"])],
        OpMode::Persistent,
    );
    c.run_until(SimTime::from_secs(40));
    assert!(c.app(n[1]).my_visitors().is_empty());
    assert!(c.app(n[1]).inbox().is_empty());

    c.with_app(n[0], |app, ctx| {
        app.view_profile("bob", ctx);
        app.put_comment("bob", "moi", ctx);
        app.send_message("bob", "subj", "body", ctx);
    });
    c.run_until(SimTime::from_secs(50));
    let bob = c.app(n[1]);
    assert_eq!(&*bob.my_visitors()[0].visitor, "alice");
    assert_eq!(bob.my_comments()[0].text, "moi");
    assert_eq!(bob.inbox()[0].subject, "subj");
}

#[test]
fn community_works_over_every_single_technology() {
    // The middleware promise: the application is agnostic to which of the
    // three technologies carries it.
    for tech in Technology::ALL {
        let mut c = Cluster::new(13 ^ tech as u64);
        let a = c.add_node(
            NodeBuilder::new("a")
                .at(Point2::ORIGIN)
                .with_technologies([tech]),
            member_app("alice", &["x"]),
        );
        let _b = c.add_node(
            NodeBuilder::new("b")
                .at(Point2::new(2.0, 0.0))
                .with_technologies([tech]),
            member_app("bob", &["x"]),
        );
        c.start();
        c.run_until(SimTime::from_secs(60));
        assert_eq!(c.app(a).groups().len(), 1, "group over {tech}");
        let op = c.with_app(a, |app, ctx| app.send_message("bob", "s", "b", ctx));
        c.run_until(SimTime::from_secs(90));
        assert_eq!(
            c.app(a)
                .outcome(op)
                .unwrap_or_else(|| panic!("op over {tech}"))
                .result,
            OpResult::MessageResult { written: true },
            "message over {tech}"
        );
    }
}
